"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series.  Trace replays are expensive but
deterministic, while the analytic scoring step is cheap and is what model
changes actually perturb — so benchmarks time the *scoring path*:

* the first (untimed) pass fills both cache tiers — replay measurements and
  scored stats;
* the timed rounds (:func:`run_scoring`, multiple rounds so regressions are
  statistically detectable) drop the scored-stats layers before each round
  and re-derive every result from the warm measurement tier.  A slowdown in
  :class:`~repro.sim.performance_model.PerformanceModel` or the cache's JSON
  plumbing therefore shows up directly, without replay noise;
* every simulation flows through one session-wide
  :class:`~repro.runner.runner.ExperimentRunner`, whose content-addressed
  on-disk cache is shared between figures that overlap (Fig. 12
  top/bottom, Table 3, §7.4) *and* between benchmark sessions.  Because
  the timed rounds prune the scored-stats tier, the benchmark cache lives
  in its own directory (``.repro_cache-bench/`` by default,
  ``REPRO_BENCH_CACHE_DIR`` to move it) so a user's warm cache — the
  default ``.repro_cache/`` or wherever ``REPRO_CACHE_DIR`` points — is
  never touched;
* by default a representative subset of applications is used.  Set
  ``REPRO_BENCH_FULL=1`` to sweep all 17 applications (slower).
"""

from __future__ import annotations

import os

import pytest

from repro.runner import ExperimentRunner, active_runner, set_active_runner
from repro.systems.fidelity import Fidelity
from repro.workloads.applications import COMPUTE_BOUND_APPS, MEMORY_BOUND_APPS

#: Timed rounds per benchmark (after the untimed cache-warming pass).
BENCH_ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))

#: Benchmark-owned cache directory (the timed rounds prune its stats tier,
#: so it must never resolve to the user's shared cache — deliberately NOT
#: ``REPRO_CACHE_DIR``, which users export for normal runs).
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR", ".repro_cache-bench")

#: Fidelity used by the benchmark harness (kept modest so the whole suite
#: completes in minutes; raise for higher-precision reproductions).
BENCH_FIDELITY = Fidelity(
    capacity_scale=1.0 / 32.0,
    trace_accesses=8_000,
    warmup_accesses=3_000,
    search_trace_accesses=4_000,
    search_warmup_accesses=1_500,
)

FULL_SWEEP = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Representative subset: saturating, thrashing and compute-bound workloads.
SUBSET_MEMORY_BOUND = ["p-bfs", "cfd", "sgem", "kmeans", "spmv", "page-r"]
SUBSET_COMPUTE_BOUND = ["mri-q"]

BENCH_MEMORY_BOUND = MEMORY_BOUND_APPS if FULL_SWEEP else SUBSET_MEMORY_BOUND
BENCH_COMPUTE_BOUND = COMPUTE_BOUND_APPS if FULL_SWEEP else SUBSET_COMPUTE_BOUND
BENCH_ALL_APPS = BENCH_MEMORY_BOUND + BENCH_COMPUTE_BOUND


@pytest.fixture(scope="session", autouse=True)
def bench_runner():
    """Session-wide runner: disk-cached, parallel where plans allow it."""
    runner = ExperimentRunner(
        cache_dir=BENCH_CACHE_DIR,
        max_workers=int(
            os.environ.get("REPRO_RUNNER_WORKERS", str(os.cpu_count() or 1))
        ),
    )
    previous = set_active_runner(runner)
    yield runner
    set_active_runner(previous)


@pytest.fixture(scope="session")
def bench_fidelity() -> Fidelity:
    """Fidelity preset shared by all benchmarks."""
    return BENCH_FIDELITY


def run_scoring(benchmark, func, rounds: int = BENCH_ROUNDS):
    """Warm the measurement tier once, then time ``func``'s scoring path.

    The first call runs ``func`` untimed, filling both cache tiers (this is
    where any trace replays happen).  Each timed round then drops the
    scored-stats layers — the in-process stats dict and the on-disk
    ``stats/`` tier — so ``func`` re-derives every result from cached
    measurements:
    pure analytic scoring plus cache plumbing, no replays.  Rounds run
    serially (workers restored afterwards) so process-pool startup noise
    cannot mask a model-speed regression.  Returns the warm-up pass result.
    """
    result = func()
    runner = active_runner()
    saved_workers = runner.max_workers
    try:
        runner.max_workers = 0
        benchmark.pedantic(
            func,
            # Keeps measurements (in memory and on disk) so the timed call
            # never replays — it re-scores, even with REPRO_DISK_CACHE=0.
            setup=runner.clear_scored_stats,
            rounds=rounds,
            iterations=1,
            warmup_rounds=0,
        )
    finally:
        runner.max_workers = saved_workers
    return result
