"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series.  Simulations are expensive, so:

* benchmarks run each measurement exactly once (``benchmark.pedantic`` with a
  single round);
* every simulation flows through one session-wide
  :class:`~repro.runner.runner.ExperimentRunner`, whose content-addressed
  on-disk cache (``.repro_cache/`` by default, ``REPRO_CACHE_DIR`` to move
  it) is shared between figures that overlap (Fig. 12 top/bottom, Table 3,
  §7.4) *and* between benchmark sessions — a warm re-run of the suite costs
  only JSON loads;
* by default a representative subset of applications is used.  Set
  ``REPRO_BENCH_FULL=1`` to sweep all 17 applications (slower).
"""

from __future__ import annotations

import os

import pytest

from repro.runner import ExperimentRunner, set_active_runner
from repro.systems.fidelity import Fidelity
from repro.workloads.applications import COMPUTE_BOUND_APPS, MEMORY_BOUND_APPS

#: Fidelity used by the benchmark harness (kept modest so the whole suite
#: completes in minutes; raise for higher-precision reproductions).
BENCH_FIDELITY = Fidelity(
    capacity_scale=1.0 / 32.0,
    trace_accesses=8_000,
    warmup_accesses=3_000,
    search_trace_accesses=4_000,
    search_warmup_accesses=1_500,
)

FULL_SWEEP = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Representative subset: saturating, thrashing and compute-bound workloads.
SUBSET_MEMORY_BOUND = ["p-bfs", "cfd", "sgem", "kmeans", "spmv", "page-r"]
SUBSET_COMPUTE_BOUND = ["mri-q"]

BENCH_MEMORY_BOUND = MEMORY_BOUND_APPS if FULL_SWEEP else SUBSET_MEMORY_BOUND
BENCH_COMPUTE_BOUND = COMPUTE_BOUND_APPS if FULL_SWEEP else SUBSET_COMPUTE_BOUND
BENCH_ALL_APPS = BENCH_MEMORY_BOUND + BENCH_COMPUTE_BOUND


@pytest.fixture(scope="session", autouse=True)
def bench_runner():
    """Session-wide runner: disk-cached, parallel where plans allow it."""
    runner = ExperimentRunner(max_workers=int(
        os.environ.get("REPRO_RUNNER_WORKERS", str(os.cpu_count() or 1))
    ))
    previous = set_active_runner(runner)
    yield runner
    set_active_runner(previous)


@pytest.fixture(scope="session")
def bench_fidelity() -> Fidelity:
    """Fidelity preset shared by all benchmarks."""
    return BENCH_FIDELITY


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
