"""Figure 11: characterization of the extended LLC kernel on the real GPU (§5)."""

from conftest import run_scoring

from repro.analysis.report import format_table
from repro.characterization.extended_llc_kernel import (
    ExtendedLLCCharacterization,
    WARP_COUNTS,
    combined_configuration,
)


def test_fig11_characterization(benchmark):
    """Regenerate Figure 11(a-d): capacity, latency, bandwidth and energy/byte."""
    model = ExtendedLLCCharacterization()
    points = run_scoring(benchmark, model.figure11)

    rows = [
        [p.store, p.num_warps, p.capacity_kib, p.latency_ns, p.bandwidth_gbps, p.energy_pj_per_byte]
        for p in points
    ]
    print("\n" + format_table(
        ["store", "warps", "capacity_KiB", "latency_ns", "bandwidth_GBps", "energy_pJ_per_B"],
        rows,
        title="[Figure 11] Extended LLC kernel characterization",
    ))

    ideal = model.ideal_interconnect_bandwidths(48)
    print(f"  ideal-interconnect bandwidth @48 warps: {ideal}")
    combined = combined_configuration(model)
    print(f"  combined RF(32)+L1(16) configuration: {combined}")

    rf = {p.num_warps: p for p in points if p.store == "register_file"}
    # Capacity peaks at 8 warps; 48 warps lay out 192 KiB (Figure 8).
    assert max(rf, key=lambda w: rf[w].capacity_kib) == 8
    assert rf[48].capacity_kib == 192.0
    # Latency grows and energy/byte falls as warp count grows.
    assert rf[48].latency_ns > rf[8].latency_ns
    assert rf[48].energy_pj_per_byte < rf[1].energy_pj_per_byte
    # Bandwidth is interconnect-limited below 40 GB/s.
    assert rf[48].bandwidth_gbps <= 40.0
    assert combined["capacity_kib"] > 300.0


def test_fig11_ideal_interconnect(benchmark):
    """The paper's ideal-interconnect study: 290/106/97 GB/s at 48 warps."""
    model = ExtendedLLCCharacterization()
    ideal = run_scoring(benchmark, lambda: model.ideal_interconnect_bandwidths(48))
    assert ideal["register_file"] > ideal["shared_memory"] > ideal["l1"]
    assert ideal["register_file"] / model.bandwidth_gbps("register_file", 48) > 5.0
