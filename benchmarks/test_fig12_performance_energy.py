"""Figure 12: execution time (top) and performance/watt (bottom) of the evaluated systems."""

from conftest import BENCH_ALL_APPS, BENCH_FIDELITY, BENCH_MEMORY_BOUND, run_scoring

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.systems.registry import evaluate_application

SYSTEMS = [
    "BL",
    "IBL",
    "IBL-4X-LLC",
    "Unified-SM-Mem",
    "Frequency-Boost",
    "Morpheus-Basic",
    "Morpheus-Compression",
    "Morpheus-Indirect-MOV",
    "Morpheus-ALL",
]


def _collect():
    results = {}
    for app in BENCH_ALL_APPS:
        results[app] = {
            system: evaluate_application(system, app, fidelity=BENCH_FIDELITY)
            for system in SYSTEMS
        }
    return results


def test_fig12_execution_time_and_perf_per_watt(benchmark):
    """Regenerate Figure 12: Morpheus improves memory-bound apps, matches 4x-LLC."""
    results = run_scoring(benchmark, _collect)

    time_rows, power_rows = [], []
    norm_time = {system: [] for system in SYSTEMS}
    norm_ppw = {system: [] for system in SYSTEMS}
    for app, by_system in results.items():
        base = by_system["BL"]
        time_row, power_row = [app], [app]
        for system in SYSTEMS:
            stats = by_system[system]
            time_ratio = stats.normalized_execution_time(base)
            ppw_ratio = stats.normalized_perf_per_watt(base)
            time_row.append(time_ratio)
            power_row.append(ppw_ratio)
            if app in BENCH_MEMORY_BOUND:
                norm_time[system].append(time_ratio)
                norm_ppw[system].append(ppw_ratio)
        time_rows.append(time_row)
        power_rows.append(power_row)

    gmean_time = ["gmean(mem-bound)"] + [geometric_mean(norm_time[s]) for s in SYSTEMS]
    gmean_ppw = ["gmean(mem-bound)"] + [geometric_mean(norm_ppw[s]) for s in SYSTEMS]
    time_rows.append(gmean_time)
    power_rows.append(gmean_ppw)

    print("\n" + format_table(
        ["app", *SYSTEMS], time_rows,
        title="[Figure 12 top] Normalized execution time (lower is better)",
    ))
    print("\n" + format_table(
        ["app", *SYSTEMS], power_rows,
        title="[Figure 12 bottom] Normalized performance/watt (higher is better)",
    ))

    gmean_by_system = dict(zip(SYSTEMS, gmean_time[1:]))
    ppw_by_system = dict(zip(SYSTEMS, gmean_ppw[1:]))

    # Morpheus-ALL beats every real baseline on memory-bound applications.
    assert gmean_by_system["Morpheus-ALL"] < gmean_by_system["BL"]
    assert gmean_by_system["Morpheus-ALL"] < gmean_by_system["IBL"]
    assert gmean_by_system["Morpheus-ALL"] <= gmean_by_system["Morpheus-Basic"]
    # Morpheus-ALL lands close to the idealized IBL-4X-LLC design.
    assert gmean_by_system["Morpheus-ALL"] <= gmean_by_system["IBL-4X-LLC"] * 1.15
    # Energy efficiency improves over BL.
    assert ppw_by_system["Morpheus-ALL"] > ppw_by_system["BL"]

    # Compute-bound applications are unaffected by Morpheus.
    for app, by_system in results.items():
        if app not in BENCH_MEMORY_BOUND:
            ratio = by_system["Morpheus-ALL"].normalized_execution_time(by_system["BL"])
            assert 0.9 <= ratio <= 1.1
