"""Figure 13: effect of hit/miss prediction on Morpheus-Basic execution time."""

from conftest import BENCH_FIDELITY, BENCH_MEMORY_BOUND, run_scoring

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.systems.registry import evaluate_application

PREDICTORS = ["none", "bloom", "perfect"]
LABELS = {"none": "No-Prediction", "bloom": "Bloom-Filter", "perfect": "Perfect-Prediction"}


def test_fig13_hit_miss_prediction(benchmark):
    """Regenerate Figure 13: Bloom-filter prediction is close to perfect prediction."""

    def build():
        rows = {}
        for app in BENCH_MEMORY_BOUND:
            base = evaluate_application("BL", app, fidelity=BENCH_FIDELITY)
            rows[app] = {}
            for predictor in PREDICTORS:
                name = "Morpheus-Basic" if predictor == "bloom" else f"Morpheus-Basic({predictor})"
                stats = evaluate_application(name, app, fidelity=BENCH_FIDELITY)
                rows[app][predictor] = stats.normalized_execution_time(base)
        return rows

    rows = run_scoring(benchmark, build)

    table = [[app, row["none"], row["bloom"], row["perfect"]] for app, row in rows.items()]
    gmeans = {p: geometric_mean([row[p] for row in rows.values()]) for p in PREDICTORS}
    table.append(["gmean", gmeans["none"], gmeans["bloom"], gmeans["perfect"]])
    print("\n" + format_table(
        ["app", LABELS["none"], LABELS["bloom"], LABELS["perfect"]], table,
        title="[Figure 13] Normalized execution time vs hit/miss predictor (lower is better)",
    ))

    # The Bloom-filter design is at least as good as no prediction and within
    # a few percent of perfect prediction (paper: 9 % and 1 %).
    assert gmeans["bloom"] <= gmeans["none"] * 1.02
    assert gmeans["bloom"] <= gmeans["perfect"] * 1.08
