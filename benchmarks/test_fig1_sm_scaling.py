"""Figure 1: normalized IPC as the number of SMs scales from 10 to 68."""

from conftest import BENCH_ALL_APPS, BENCH_FIDELITY, run_scoring

from repro.analysis.report import format_series
from repro.analysis.sweep import normalized_ipc_curve, sm_count_sweep

SM_COUNTS = (10, 20, 34, 50, 68)


def test_fig1_sm_scaling(benchmark):
    """Regenerate the Figure 1 curves: memory-bound apps saturate, compute-bound scale."""

    def build():
        curves = {}
        for app in BENCH_ALL_APPS:
            sweep = sm_count_sweep(app, sm_counts=SM_COUNTS, fidelity=BENCH_FIDELITY)
            curves[app] = normalized_ipc_curve(sweep)
        return curves

    curves = run_scoring(benchmark, build)

    print("\n[Figure 1] Normalized IPC vs number of SMs (normalized to 10 SMs)")
    for app, curve in curves.items():
        print("  " + format_series(app, curve))

    for app, curve in curves.items():
        values = list(curve.values())
        assert values[0] == 1.0
        # Every application benefits from going beyond 10 SMs at least a little.
        assert max(values) >= 1.0
