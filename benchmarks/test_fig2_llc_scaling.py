"""Figure 2: effect of 2x and 4x conventional LLC sizes on memory-bound applications."""

from conftest import BENCH_FIDELITY, BENCH_MEMORY_BOUND, run_scoring

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.analysis.sweep import llc_scaling_speedups, llc_scaling_sweep

SM_CANDIDATES = (10, 20, 34, 50, 68)


def test_fig2_llc_scaling(benchmark):
    """Regenerate Figure 2: every memory-bound app gains from a larger LLC."""

    def build():
        rows = {}
        for app in BENCH_MEMORY_BOUND:
            sweep = llc_scaling_sweep(
                app, scale_factors=(1.0, 2.0, 4.0), fidelity=BENCH_FIDELITY,
                sm_candidates=SM_CANDIDATES,
            )
            rows[app] = llc_scaling_speedups(sweep)
        return rows

    rows = run_scoring(benchmark, build)

    table_rows = [[app, row[1.0], row[2.0], row[4.0]] for app, row in rows.items()]
    gmean_2x = geometric_mean([row[2.0] for row in rows.values()])
    gmean_4x = geometric_mean([row[4.0] for row in rows.values()])
    table_rows.append(["gmean", 1.0, gmean_2x, gmean_4x])
    print("\n" + format_table(
        ["app", "1X-LLC", "2X-LLC", "4X-LLC"], table_rows,
        title="[Figure 2] Normalized IPC with larger conventional LLCs",
    ))

    for app, row in rows.items():
        # A larger LLC never hurts and the 4x configuration helps every app.
        assert row[4.0] >= row[1.0] * 0.99
    assert gmean_4x > 1.1
