"""Figure 5: latency timelines of conventional and extended LLC hits and misses."""

from conftest import run_scoring

from repro.analysis.latency_breakdown import llc_latency_timelines
from repro.analysis.report import format_table


def test_fig5_latency_timelines(benchmark):
    """Regenerate the Figure 5 latency breakdown."""
    timelines = run_scoring(benchmark, llc_latency_timelines)

    rows = [
        [name, breakdown.total_ns, " + ".join(f"{label}:{ns:.0f}" for label, ns in breakdown.segments)]
        for name, breakdown in timelines.items()
    ]
    print("\n" + format_table(
        ["timeline", "total_ns", "segments"], rows,
        title="[Figure 5] LLC hit/miss latency timelines (ns)",
    ))

    conventional_miss = timelines["conventional_miss"].total_ns
    extended_miss = timelines["extended_miss"].total_ns
    predicted_miss = timelines["predicted_extended_miss"].total_ns
    # Paper: 608 ns conventional miss, 773 ns extended miss (~27 % longer),
    # predicted misses as fast as conventional misses.
    assert 0.85 * 608 <= conventional_miss <= 1.15 * 608
    assert 1.15 <= extended_miss / conventional_miss <= 1.40
    assert predicted_miss <= conventional_miss * 1.05
