"""Scenario engine: phase-lowering hot path and warm timeline aggregation.

Unlike the figure benchmarks, the interesting cost here is not the (cached)
leaf simulations but the scenario bookkeeping itself: policy planning plus
config construction (``ScenarioEngine.lower``) runs once per (timeline,
system, policy) and scales with the phase count, so a large fleet of
timeline experiments pays it constantly.  The second benchmark times a full
warm-cache timeline run — lowering plus cache lookups plus aggregation —
which is what a re-scored scenario study costs per timeline.
"""

from __future__ import annotations

import dataclasses

import pytest

from conftest import BENCH_FIDELITY, run_scoring

from repro.analysis.scenarios import time_weighted_ipc, transition_overheads
from repro.runner import active_runner
from repro.scenarios import (
    ContentionModel,
    DynamicCapacityManager,
    ScenarioEngine,
    corun_overlap,
    ramp,
)
from repro.scenarios.contention import solve_phase_contention
from repro.sim.simulator import SimulationConfig
from repro.workloads.applications import get_application

#: A long diurnal timeline (2 * 24 - 1 = 47 phases) stresses per-phase work.
LOWERING_SCENARIO = ramp(application="kmeans", low_sms=10, high_sms=60, steps=24)

#: A short timeline for the end-to-end warm-run benchmark.
RUN_SCENARIO = ramp(application="kmeans", low_sms=24, high_sms=60, steps=3)

#: A contended overlapping co-run for the fixed-point solver benchmark.
CORUN_SCENARIO = corun_overlap(rounds=2)


def test_scenario_phase_lowering(benchmark):
    """Time lowering a 47-phase diurnal timeline to leaf configs (pure)."""
    engine = ScenarioEngine(fidelity=BENCH_FIDELITY)
    policy = DynamicCapacityManager(hysteresis_sms=2)

    lowered = benchmark(lambda: engine.lower(LOWERING_SCENARIO, "Morpheus-ALL", policy))

    assert len(lowered) == len(LOWERING_SCENARIO)
    # The ramp hands capacity back on every ascending step: the dynamic
    # manager must charge at least one non-zero transition.
    assert any(not leaf.decision.transition.is_zero for leaf in lowered)


def test_scenario_warm_timeline_run(benchmark):
    """Time a warm-cache timeline run (lowering + scoring path + aggregation)."""
    engine = ScenarioEngine(fidelity=BENCH_FIDELITY)

    result = run_scoring(
        benchmark, lambda: engine.run(RUN_SCENARIO, "Morpheus-Basic")
    )

    assert len(result) == len(RUN_SCENARIO)
    assert time_weighted_ipc(result) > 0
    assert transition_overheads(result).transitions > 0


def test_corun_contention_solve(benchmark):
    """Time the co-run shared-bandwidth fixed point over warm measurements.

    Each timed round drops the scored-stats layers *and* the persisted
    scenario aggregates, then re-runs the whole contended timeline:
    lowering, the uncontended batch and the proportional-pressure
    fixed-point solve — all pure scoring over the warm measurement tier.
    A regression in the solver's iteration count or per-iteration scoring
    cost shows up directly, with zero replay noise.
    """
    engine = ScenarioEngine(fidelity=BENCH_FIDELITY)

    result = run_scoring(
        benchmark, lambda: engine.run(CORUN_SCENARIO, "Morpheus-ALL")
    )

    assert len(result) == len(CORUN_SCENARIO)
    for execution in result.phases:
        for resident in execution.residents:
            # The solve actually contended the residents.
            assert resident.stats.ipc < resident.uncontended_ipc


def _corun_leaves():
    base = SimulationConfig(
        num_compute_sms=28,
        power_gate_unused=True,
        capacity_scale=BENCH_FIDELITY.capacity_scale,
        trace_accesses=BENCH_FIDELITY.trace_accesses,
        warmup_accesses=BENCH_FIDELITY.warmup_accesses,
        system_name="bench-contention",
        seed=1,
    )
    return [
        (
            get_application(app),
            dataclasses.replace(base, num_compute_sms=sms, system_name=app),
        )
        for app, sms in (("spmv", 28), ("cfd", 24))
    ]


@pytest.mark.parametrize("fast_scoring", (True, False), ids=("fast", "legacy"))
def test_contention_fixed_point_kernel(benchmark, fast_scoring):
    """Time the raw fixed-point solve over warm measurements, both paths.

    ``fast`` hoists the per-measurement invariants into a precomputed
    scorer once per resident (the PR 6 satellite); ``legacy`` rebuilds them
    on every iteration's ``score_measurement`` call.  Solutions are
    bit-identical (asserted by the tier-1 suite) — only the per-iteration
    cost differs, and this pair makes the gap visible.
    """
    runner = active_runner()
    leaves = _corun_leaves()
    uncontended = runner.run_leaves(leaves)
    gpu = leaves[0][1].gpu

    solution = benchmark(
        lambda: solve_phase_contention(
            runner, gpu, leaves, uncontended, ContentionModel(),
            fast_scoring=fast_scoring,
        )
    )

    assert solution.converged
    assert all(stats.ipc > 0 for stats in solution.stats)
