"""Batch vs scalar scoring: the analytic-sweep hot path.

Analytic sweeps (envelope/MLP/peak-IPC/energy grids) and the co-run
contention fixed point spend their time in
:meth:`~repro.sim.performance_model.PerformanceModel.score`.  These
benchmarks time the two implementations of that work over one warm
measurement — the per-point scalar loop and the vectorized
:meth:`~repro.sim.performance_model.PerformanceModel.score_batch` — plus
the full warm-cache sweep (scoring + key derivation + cache plumbing) that
experiment campaigns actually pay.  ``scripts/bench_report.py`` distills
the same comparison into ``BENCH_scoring.json``.
"""

from __future__ import annotations

import dataclasses

from conftest import BENCH_FIDELITY, run_scoring

from repro.analysis.rescoring import envelope_sweep
from repro.runner import active_runner
from repro.sim.performance_model import PerformanceModel, ResourceEnvelope
from repro.sim.simulator import SimulationConfig
from repro.workloads.applications import get_application

#: Sweep width; ISSUE acceptance keys off a >= 64-point grid.
GRID_POINTS = 128

BASE_CONFIG = SimulationConfig(
    num_compute_sms=34,
    power_gate_unused=True,
    capacity_scale=BENCH_FIDELITY.capacity_scale,
    trace_accesses=BENCH_FIDELITY.trace_accesses,
    warmup_accesses=BENCH_FIDELITY.warmup_accesses,
    system_name="bench-scoring",
    seed=1,
)


def _envelopes(count: int = GRID_POINTS):
    """A deterministic spread of contention envelopes (all shares in (0, 1])."""
    return [
        ResourceEnvelope(
            dram_bandwidth_share=0.1 + 0.9 * ((index * 37 % count) + 1) / count,
            llc_bandwidth_share=0.1 + 0.9 * ((index * 59 % count) + 1) / count,
            noc_bandwidth_share=0.1 + 0.9 * ((index * 83 % count) + 1) / count,
        )
        for index in range(count)
    ]


def _variants():
    return [
        dataclasses.replace(BASE_CONFIG, envelope=envelope)
        for envelope in _envelopes()
    ]


def test_scoring_batch_vectorized(benchmark):
    """Time the vectorized pass over a 128-point envelope grid (pure scoring)."""
    runner = active_runner()
    profile = get_application("kmeans")
    measurement = runner.measurement_for(profile, BASE_CONFIG)
    model = PerformanceModel()
    variants = _variants()

    batched = benchmark(
        lambda: model.score_batch(profile, variants, measurement, validate=False)
    )

    assert len(batched) == GRID_POINTS
    # Spot-check bit-identity against the scalar reference path.
    scalar = model.score(profile, variants[0], measurement)
    assert dataclasses.asdict(batched[0]) == dataclasses.asdict(scalar)


def test_scoring_scalar_reference(benchmark):
    """The per-point scalar loop over the same grid — the pre-PR-6 cost."""
    runner = active_runner()
    profile = get_application("kmeans")
    measurement = runner.measurement_for(profile, BASE_CONFIG)
    model = PerformanceModel()
    variants = _variants()

    scored = benchmark(
        lambda: [model.score(profile, config, measurement) for config in variants]
    )

    assert len(scored) == GRID_POINTS


def test_envelope_sweep_warm_cache(benchmark):
    """The full warm-cache envelope sweep: scoring plus keys plus cache I/O."""
    envelopes = _envelopes()

    result = run_scoring(
        benchmark,
        lambda: envelope_sweep("kmeans", BASE_CONFIG, envelopes),
    )

    assert len(result) == GRID_POINTS
    assert all(stats.ipc > 0 for stats in result.values())


def test_analytic_tier_sweep(benchmark):
    """The same sweep at ``fidelity="analytic"`` — no trace ever replayed."""
    analytic_config = dataclasses.replace(
        BASE_CONFIG, replay_mode="analytic", system_name="bench-scoring-analytic"
    )
    envelopes = _envelopes()

    result = run_scoring(
        benchmark,
        lambda: envelope_sweep("kmeans", analytic_config, envelopes),
    )

    assert len(result) == GRID_POINTS
