"""§7.4: LLC throughput, interconnect load and off-chip bandwidth analysis."""

from conftest import BENCH_FIDELITY, BENCH_MEMORY_BOUND, run_scoring

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.systems.registry import evaluate_application


def test_sec74_llc_throughput_noc_and_offchip(benchmark):
    """Regenerate the §7.4 analysis: Morpheus raises LLC throughput and NoC load,
    and cuts off-chip traffic and MPKI relative to IBL."""

    def build():
        rows = {}
        for app in BENCH_MEMORY_BOUND:
            rows[app] = {
                system: evaluate_application(system, app, fidelity=BENCH_FIDELITY)
                for system in ("BL", "IBL", "Morpheus-ALL")
            }
        return rows

    rows = run_scoring(benchmark, build)

    table = []
    llc_gain, noc_gain, dram_reduction, mpki_reduction = [], [], [], []
    for app, stats in rows.items():
        bl, ibl, mor = stats["BL"], stats["IBL"], stats["Morpheus-ALL"]

        def served_throughput(s):
            # Useful LLC throughput: data actually served by (either) LLC per cycle.
            return s.llc_hit_rate * s.llc_apki * s.ipc

        llc_ratio = served_throughput(mor) / max(1e-9, served_throughput(bl))
        noc_ratio = (mor.noc_bytes / mor.execution_cycles) / max(
            1e-12, bl.noc_bytes / bl.execution_cycles
        )
        dram_ratio = mor.dram_bytes / max(1e-9, ibl.dram_bytes)
        mpki_ratio = mor.llc_mpki / max(1e-9, ibl.llc_mpki)
        llc_gain.append(llc_ratio)
        noc_gain.append(noc_ratio)
        dram_reduction.append(dram_ratio)
        mpki_reduction.append(mpki_ratio)
        table.append([app, llc_ratio, noc_ratio, dram_ratio, mpki_ratio])

    table.append([
        "gmean",
        geometric_mean(llc_gain),
        geometric_mean(noc_gain),
        geometric_mean(dram_reduction),
        geometric_mean(mpki_reduction),
    ])
    print("\n" + format_table(
        ["app", "LLC thrpt vs BL", "NoC load vs BL", "DRAM bytes vs IBL", "MPKI vs IBL"],
        table,
        title="[Sec 7.4] Bandwidth analysis (ratios; Morpheus-ALL relative to BL / IBL)",
    ))

    # Morpheus increases LLC throughput and NoC load, and reduces off-chip
    # traffic and LLC MPKI relative to IBL (directions per §7.4).
    assert geometric_mean(llc_gain) > 1.0
    assert geometric_mean(noc_gain) > 1.0
    assert geometric_mean(dram_reduction) < 1.0
    assert geometric_mean(mpki_reduction) < 1.0
