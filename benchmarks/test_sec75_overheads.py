"""§7.5: storage and power overheads of the Morpheus controller."""

from conftest import run_scoring

from repro.analysis.overheads import compute_overheads
from repro.analysis.report import format_table


def test_sec75_storage_and_power_overheads(benchmark):
    """Regenerate the §7.5 overhead accounting (21 KiB per partition, <1 % power)."""
    overheads = run_scoring(benchmark, compute_overheads)

    rows = [
        ["Bloom filters / partition (KiB)", overheads.bloom_filter_bytes_per_partition / 1024],
        ["Query logic / partition (KiB)", overheads.query_logic_bytes_per_partition / 1024],
        ["Total / partition (KiB)", overheads.total_bytes_per_partition / 1024],
        ["Total across partitions (KiB)", overheads.total_bytes / 1024],
        ["Fraction of LLC slice (%)", overheads.storage_fraction_of_llc_slice * 100],
        ["Controller power (W)", overheads.controller_power_watts],
        ["Fraction of GPU power (%)", overheads.power_fraction * 100],
    ]
    print("\n" + format_table(["overhead", "value"], rows, title="[Sec 7.5] Morpheus overheads"))

    assert overheads.total_bytes_per_partition == 21 * 1024
    assert overheads.storage_fraction_of_llc_slice < 0.05
    assert overheads.power_fraction < 0.011
