"""Table 3: number of GPU cores executing application threads per evaluated system."""

from conftest import BENCH_FIDELITY, BENCH_MEMORY_BOUND, run_scoring

from repro.analysis.report import format_table
from repro.systems.registry import evaluate_application


def test_table3_compute_mode_core_counts(benchmark):
    """Regenerate Table 3: IBL, Morpheus-Basic and Morpheus-ALL compute-SM counts."""

    def build():
        rows = {}
        for app in BENCH_MEMORY_BOUND:
            rows[app] = {
                "IBL": evaluate_application("IBL", app, fidelity=BENCH_FIDELITY).num_compute_sms,
                "Morpheus-Basic": evaluate_application(
                    "Morpheus-Basic", app, fidelity=BENCH_FIDELITY
                ).num_compute_sms,
                "Morpheus-ALL": evaluate_application(
                    "Morpheus-ALL", app, fidelity=BENCH_FIDELITY
                ).num_compute_sms,
            }
        return rows

    rows = run_scoring(benchmark, build)

    table = [[app, row["IBL"], row["Morpheus-Basic"], row["Morpheus-ALL"]] for app, row in rows.items()]
    print("\n" + format_table(
        ["app", "IBL", "Morpheus-Basic", "Morpheus-ALL"], table,
        title="[Table 3] GPU cores executing application threads (out of 68)",
    ))

    for app, row in rows.items():
        # Morpheus leaves some cores for the extended LLC on memory-bound apps,
        # so it never uses more compute cores than the GPU has.
        assert 1 <= row["Morpheus-ALL"] <= 68
        assert 1 <= row["Morpheus-Basic"] <= 68
    # Compression enables larger extended LLCs per cache SM, which frees cores
    # for computation: Morpheus-ALL uses at least as many compute SMs on average.
    average_all = sum(row["Morpheus-ALL"] for row in rows.values()) / len(rows)
    average_basic = sum(row["Morpheus-Basic"] for row in rows.values()) / len(rows)
    assert average_all >= average_basic * 0.9
