"""Dynamic scenarios: static-split Morpheus vs the dynamic capacity manager.

Part 1 runs a bursty workload timeline — background kmeans phases
interrupted by high-demand bursts — on Morpheus-ALL under two capacity
policies:

* the **static** split, sized offline for the worst-case burst (never
  reconfigures, never pays a transition, but wastes idle SMs in every lull);
* the **dynamic** capacity manager, which borrows each lull's idle SMs for
  the extended LLC and hands them back at each burst, paying the
  extended-LLC flush/writeback on every handback and a warm-up on every
  re-borrow.

Part 2 runs an **overlapping co-run**: two applications concurrently
resident, splitting the compute SMs, while the policies arbitrate the
pooled idle-SM extended-LLC capacity between them and the contention
solver charges each tenant its share of the DRAM/LLC/NoC bandwidth the
pair actually fights over (the per-tenant table splits the slowdown into
grant vs bandwidth cycles).  Sensitivity-weighted arbitration steers
pooled capacity toward the tenant whose traffic an extended LLC can
actually capture, and the dynamic manager grows the pool whenever one
tenant's demand dips — together they beat the worst-case static split on
weighted speedup.

A steady timeline and the IBL baseline are included for reference.  All
phases execute through the two-phase runner cache, so repeated phases
replay at most once and re-running the script is served from disk.

Usage::

    python examples/dynamic_scenarios.py [application]
"""

from __future__ import annotations

import os
import sys

from repro.analysis.scenarios import (
    compare_runs,
    contention_breakdown,
    corun_table,
    fairness,
    phase_table,
    time_weighted_ipc,
    transition_overheads,
    weighted_speedup,
)
from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import (
    DynamicCapacityManager,
    FixedSplitPolicy,
    ScenarioEngine,
    bursty,
    corun_overlap,
    steady,
)
from repro.systems.fidelity import FAST_FIDELITY


def corun_demo(engine: ScenarioEngine) -> None:
    """Two concurrently resident applications under shared-LLC arbitration."""
    timeline = corun_overlap(
        application_a="kmeans", application_b="spmv",
        sms_a=28, sms_b=24, dip_sms_b=8, rounds=2,
    )
    references = engine.solo_reference_ipcs(timeline, "Morpheus-ALL")
    static = engine.run(timeline, "Morpheus-ALL", FixedSplitPolicy())
    dynamic = engine.run(
        timeline, "Morpheus-ALL", DynamicCapacityManager(arbitration="sensitivity")
    )

    print(phase_table(dynamic))
    print()
    print(corun_table(dynamic, references))
    print()
    breakdown = contention_breakdown(dynamic, references)
    print(
        f"Co-residency cost: {breakdown.capacity_grant_cycles:,.0f} cycles from "
        f"arbitrated extended-LLC grants + {breakdown.bandwidth_interference_cycles:,.0f} "
        f"cycles from shared DRAM/LLC/NoC bandwidth interference."
    )
    static_ws = weighted_speedup(static, references)
    dynamic_ws = weighted_speedup(dynamic, references)
    print(
        f"Weighted speedup: dynamic/sensitivity {dynamic_ws:.3f} vs "
        f"static/proportional {static_ws:.3f} "
        f"({dynamic_ws / max(static_ws, 1e-9):.2f}x); fairness "
        f"{fairness(dynamic, references):.3f} vs {fairness(static, references):.3f}."
    )
    assert dynamic_ws > static_ws, (
        "sensitivity-weighted dynamic arbitration should beat the static "
        "worst-case split on weighted speedup"
    )
    assert breakdown.bandwidth_interference_cycles > 0, (
        "concurrent residents share the memory system; the contention "
        "solver should charge nonzero bandwidth-interference cycles"
    )


def main() -> None:
    application = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    burst_timeline = bursty(application=application, low_sms=24, high_sms=60, bursts=3)
    steady_timeline = steady(application=application, compute_sms=24)

    runner = ExperimentRunner(max_workers=os.cpu_count() or 1)
    engine = ScenarioEngine(runner=runner, fidelity=FAST_FIDELITY)
    with using_runner(runner):
        dynamic = engine.run(burst_timeline, "Morpheus-ALL", DynamicCapacityManager())
        static = engine.run(burst_timeline, "Morpheus-ALL", FixedSplitPolicy())
        steady_run = engine.run(steady_timeline, "Morpheus-ALL")
        baseline = engine.run(burst_timeline, "IBL")

    print(phase_table(dynamic))
    print()
    print(
        compare_runs(
            {
                "bursty/dynamic": dynamic,
                "bursty/static": static,
                "bursty/IBL": baseline,
                "steady/dynamic": steady_run,
            }
        )
    )

    overheads = transition_overheads(dynamic)
    gain = time_weighted_ipc(dynamic) / max(time_weighted_ipc(static), 1e-9)
    print(
        f"\nDynamic manager: {overheads.transitions} reconfigurations, "
        f"{overheads.total_cycles:,.0f} cycles "
        f"({overheads.overhead_fraction:.2%} of the timeline) spent on "
        f"{overheads.flushed_dirty_bytes / 1e6:.1f} MB of flush writebacks and "
        f"{overheads.warmup_fill_bytes / 1e6:.1f} MB of warm-up fills — "
        f"still {gain:.2f}x the static split's time-weighted IPC."
    )
    print(
        f"Steady timeline pays zero transition cycles "
        f"({transition_overheads(steady_run).total_cycles:.0f}); "
        f"{len(dynamic)} + {len(steady_run)} phases cost {runner.replays} "
        f"trace replays (cache: {runner.cache_dir})."
    )

    print("\n=== Overlapping co-run: shared extended-LLC arbitration ===\n")
    with using_runner(runner):
        corun_demo(engine)


if __name__ == "__main__":
    main()
