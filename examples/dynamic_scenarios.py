"""Dynamic scenarios: static-split Morpheus vs the dynamic capacity manager.

Runs a bursty workload timeline — background kmeans phases interrupted by
high-demand bursts — on Morpheus-ALL under two capacity policies:

* the **static** split, sized offline for the worst-case burst (never
  reconfigures, never pays a transition, but wastes idle SMs in every lull);
* the **dynamic** capacity manager, which borrows each lull's idle SMs for
  the extended LLC and hands them back at each burst, paying the
  extended-LLC flush/writeback on every handback and a warm-up on every
  re-borrow.

A steady timeline and the IBL baseline are included for reference.  All
phases execute through the two-phase runner cache, so repeated phases
replay at most once and re-running the script is served from disk.

Usage::

    python examples/dynamic_scenarios.py [application]
"""

from __future__ import annotations

import os
import sys

from repro.analysis.scenarios import (
    compare_runs,
    phase_table,
    time_weighted_ipc,
    transition_overheads,
)
from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import (
    DynamicCapacityManager,
    FixedSplitPolicy,
    ScenarioEngine,
    bursty,
    steady,
)
from repro.systems.fidelity import FAST_FIDELITY


def main() -> None:
    application = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    burst_timeline = bursty(application=application, low_sms=24, high_sms=60, bursts=3)
    steady_timeline = steady(application=application, compute_sms=24)

    runner = ExperimentRunner(max_workers=os.cpu_count() or 1)
    engine = ScenarioEngine(runner=runner, fidelity=FAST_FIDELITY)
    with using_runner(runner):
        dynamic = engine.run(burst_timeline, "Morpheus-ALL", DynamicCapacityManager())
        static = engine.run(burst_timeline, "Morpheus-ALL", FixedSplitPolicy())
        steady_run = engine.run(steady_timeline, "Morpheus-ALL")
        baseline = engine.run(burst_timeline, "IBL")

    print(phase_table(dynamic))
    print()
    print(
        compare_runs(
            {
                "bursty/dynamic": dynamic,
                "bursty/static": static,
                "bursty/IBL": baseline,
                "steady/dynamic": steady_run,
            }
        )
    )

    overheads = transition_overheads(dynamic)
    gain = time_weighted_ipc(dynamic) / max(time_weighted_ipc(static), 1e-9)
    print(
        f"\nDynamic manager: {overheads.transitions} reconfigurations, "
        f"{overheads.total_cycles:,.0f} cycles "
        f"({overheads.overhead_fraction:.2%} of the timeline) spent on "
        f"{overheads.flushed_dirty_bytes / 1e6:.1f} MB of flush writebacks and "
        f"{overheads.warmup_fill_bytes / 1e6:.1f} MB of warm-up fills — "
        f"still {gain:.2f}x the static split's time-weighted IPC."
    )
    print(
        f"Steady timeline pays zero transition cycles "
        f"({transition_overheads(steady_run).total_cycles:.0f}); "
        f"{len(dynamic)} + {len(steady_run)} phases cost {runner.replays} "
        f"trace replays (cache: {runner.cache_dir})."
    )


if __name__ == "__main__":
    main()
