"""Characterize the extended LLC kernel (the §5 / Figure 11 study).

Prints capacity, latency, bandwidth and energy-per-byte of the extended LLC
for the register file, shared memory and L1 implementations across warp
counts, plus the combined RF+L1 configuration Morpheus uses.

Usage::

    python examples/extended_llc_characterization.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.characterization.extended_llc_kernel import (
    ExtendedLLCCharacterization,
    WARP_COUNTS,
    combined_configuration,
)


def main() -> None:
    model = ExtendedLLCCharacterization()
    rows = [
        [point.store, point.num_warps, point.capacity_kib, point.latency_ns,
         point.bandwidth_gbps, point.energy_pj_per_byte]
        for point in model.figure11(WARP_COUNTS)
    ]
    print(format_table(
        ["store", "warps", "capacity (KiB)", "latency (ns)", "bandwidth (GB/s)", "energy (pJ/B)"],
        rows,
        title="Extended LLC kernel characterization (Figure 11):",
    ))

    print("\nIdeal-interconnect bandwidth at 48 warps (GB/s):")
    for store, value in model.ideal_interconnect_bandwidths(48).items():
        print(f"  {store:<16s} {value:7.1f}")

    combined = combined_configuration(model)
    print("\nCombined RF(32 warps) + L1(16 warps) configuration per cache-mode SM:")
    for key, value in combined.items():
        print(f"  {key:<20s} {value:8.1f}")


if __name__ == "__main__":
    main()
