"""LLC scaling study: reproduce the motivation experiments (Figures 1 and 2) for one app.

Sweeps the number of SMs for a chosen application and then measures how much
a 2x / 4x conventional LLC would help — the motivation behind Morpheus.

Usage::

    python examples/llc_scaling_study.py [application]
"""

from __future__ import annotations

import os
import sys

from repro.analysis.report import format_series, format_table
from repro.analysis.sweep import (
    llc_scaling_speedups,
    llc_scaling_sweep,
    normalized_ipc_curve,
    sm_count_sweep,
)
from repro.runner import ExperimentRunner, set_active_runner
from repro.systems.fidelity import FAST_FIDELITY
from repro.workloads.applications import get_application


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    profile = get_application(name)
    print(f"Application: {profile.name} ({profile.workload_class.value})")

    # Parallel, disk-cached execution: re-running the study is nearly free.
    runner = ExperimentRunner(max_workers=os.cpu_count() or 1)
    set_active_runner(runner)

    sm_counts = (10, 20, 34, 50, 68)
    sweep = sm_count_sweep(profile, sm_counts=sm_counts, fidelity=FAST_FIDELITY)
    curve = normalized_ipc_curve(sweep)
    print("\nSM scaling (normalized IPC, Figure 1 style):")
    print("  " + format_series(profile.name, curve))
    best_sms = max(sweep, key=lambda count: sweep[count].ipc)
    print(f"  performance peaks at {best_sms} SMs "
          f"(bottleneck there: {sweep[best_sms].bottleneck})")

    scaling = llc_scaling_sweep(
        profile, scale_factors=(1.0, 2.0, 4.0), fidelity=FAST_FIDELITY, sm_candidates=sm_counts
    )
    speedups = llc_scaling_speedups(scaling)
    rows = [[f"{factor:.0f}x LLC", stats.num_compute_sms, stats.llc_hit_rate, speedups[factor]]
            for factor, stats in scaling.items()]
    print("\n" + format_table(
        ["configuration", "best SMs", "LLC hit rate", "normalized IPC"], rows,
        title="Larger conventional LLCs (Figure 2 style):",
    ))


if __name__ == "__main__":
    main()
