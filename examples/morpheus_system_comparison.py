"""System comparison: run one application across the paper's evaluated systems.

Builds a declarative :class:`~repro.runner.spec.ExperimentSpec` (the
Figure-12 run matrix restricted to one application), executes it with a
parallel, disk-cached :class:`~repro.runner.runner.ExperimentRunner`, and
prints a Figure-12-style comparison plus the chosen operating points.
Re-running the script hits the content-addressed cache and completes in
milliseconds.

Usage::

    python examples/morpheus_system_comparison.py [application]
"""

from __future__ import annotations

import os
import sys

from repro.analysis.report import format_table
from repro.runner import ExperimentRunner, ExperimentSpec, using_runner
from repro.systems.fidelity import FAST_FIDELITY
from repro.workloads.applications import get_application

SYSTEMS = ("BL", "IBL", "IBL-4X-LLC", "Unified-SM-Mem", "Morpheus-Basic", "Morpheus-ALL")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "spmv"
    profile = get_application(name)
    print(f"Application: {profile.name} ({profile.workload_class.value})")

    spec = ExperimentSpec(
        systems=SYSTEMS,
        applications=(profile.name,),
        fidelity=FAST_FIDELITY,
    )
    runner = ExperimentRunner(max_workers=os.cpu_count() or 1)
    with using_runner(runner):
        result = runner.run_plan(spec)

    by_system = result.by_application(profile.name)
    base = by_system["BL"]
    rows = []
    for system in SYSTEMS:
        stats = by_system[system]
        rows.append([
            system,
            stats.num_compute_sms,
            stats.num_cache_sms,
            stats.llc_hit_rate,
            stats.normalized_execution_time(base),
            stats.normalized_perf_per_watt(base),
        ])

    print("\n" + format_table(
        ["system", "compute SMs", "cache SMs", "LLC hit", "norm. time", "norm. perf/W"],
        rows,
        title="Evaluated systems (normalized to BL):",
    ))
    morpheus = by_system["Morpheus-ALL"]
    print(f"\nMorpheus-ALL speedup over BL: "
          f"{base.execution_cycles / morpheus.execution_cycles:.2f}x; "
          f"extended LLC served {morpheus.extended_fraction:.0%} of LLC requests "
          f"with zero predictor false negatives ({morpheus.predictor_false_negatives}).")
    print(f"\n{len(result)} cells in {result.elapsed_seconds:.2f}s "
          f"(cache: {runner.cache_dir}; re-run to see the warm-cache speedup)")


if __name__ == "__main__":
    main()
