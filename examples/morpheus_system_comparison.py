"""System comparison: run one application across the paper's evaluated systems.

Evaluates a memory-bound application on the baseline (BL), the improved
baseline (IBL), the idealized 4x-LLC design and the Morpheus variants, and
prints a Figure-12-style comparison plus the chosen operating points.

Usage::

    python examples/morpheus_system_comparison.py [application]
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_table
from repro.systems.fidelity import FAST_FIDELITY
from repro.systems.registry import evaluate_application
from repro.workloads.applications import get_application

SYSTEMS = ["BL", "IBL", "IBL-4X-LLC", "Unified-SM-Mem", "Morpheus-Basic", "Morpheus-ALL"]


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "spmv"
    profile = get_application(name)
    print(f"Application: {profile.name} ({profile.workload_class.value})")

    base = evaluate_application("BL", profile, fidelity=FAST_FIDELITY)
    rows = []
    for system in SYSTEMS:
        stats = evaluate_application(system, profile, fidelity=FAST_FIDELITY)
        rows.append([
            system,
            stats.num_compute_sms,
            stats.num_cache_sms,
            stats.llc_hit_rate,
            stats.normalized_execution_time(base),
            stats.normalized_perf_per_watt(base),
        ])

    print("\n" + format_table(
        ["system", "compute SMs", "cache SMs", "LLC hit", "norm. time", "norm. perf/W"],
        rows,
        title="Evaluated systems (normalized to BL):",
    ))
    morpheus = evaluate_application("Morpheus-ALL", profile, fidelity=FAST_FIDELITY)
    print(f"\nMorpheus-ALL speedup over BL: "
          f"{base.execution_cycles / morpheus.execution_cycles:.2f}x; "
          f"extended LLC served {morpheus.extended_fraction:.0%} of LLC requests "
          f"with zero predictor false negatives ({morpheus.predictor_false_negatives}).")


if __name__ == "__main__":
    main()
