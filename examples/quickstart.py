"""Quickstart: simulate one memory-bound application with and without Morpheus.

Runs the kmeans workload on (1) the baseline RTX 3080 model and (2) a
Morpheus-ALL configuration that turns 44 idle SMs into extended LLC capacity,
then prints the key metrics side by side.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MorpheusConfig, SimulationConfig, get_application, simulate


def main() -> None:
    app = get_application("kmeans")

    baseline = simulate(
        app,
        SimulationConfig(num_compute_sms=24, power_gate_unused=True, system_name="IBL"),
    )
    morpheus = simulate(
        app,
        SimulationConfig(
            morpheus=MorpheusConfig(enable_compression=True, enable_indirect_mov_isa=True),
            num_compute_sms=24,
            num_cache_sms=44,
            power_gate_unused=True,
            system_name="Morpheus-ALL",
        ),
    )

    print(f"Application: {app.name} ({app.workload_class.value}, "
          f"{app.shared_footprint_mib:.1f} MiB shared footprint + "
          f"{app.per_sm_footprint_kib:.0f} KiB per SM)")
    print()
    for stats in (baseline, morpheus):
        print(stats.summary())
        print(f"    extended LLC served {stats.extended_fraction:.0%} of LLC traffic "
              f"(hit rate {stats.extended_llc_hit_rate:.0%})")
        print(f"    off-chip traffic: {stats.dram_accesses_per_ki:.1f} accesses per kilo-instruction")
        print(f"    average power: {stats.average_power_watts:.0f} W, "
              f"perf/W: {stats.performance_per_watt:.3f}")
        print()

    speedup = baseline.execution_cycles / morpheus.execution_cycles
    print(f"Morpheus-ALL speedup over the improved baseline: {speedup:.2f}x")
    energy_gain = morpheus.performance_per_watt / baseline.performance_per_watt
    print(f"Morpheus-ALL energy-efficiency gain: {energy_gain:.2f}x")


if __name__ == "__main__":
    main()
