"""Machine-readable performance benchmarks: scoring and the runner service.

``--benchmark scoring`` (the default) times the two implementations of
analytic re-scoring over one warm replay measurement — the per-point scalar
:meth:`~repro.sim.performance_model.PerformanceModel.score` loop and the
vectorized :meth:`~repro.sim.performance_model.PerformanceModel.score_batch`
pass — across a dense envelope grid, asserts the two are **bit-identical**,
and times the co-run contention fixed point with and without the
precomputed-scorer fast path.  Results land in ``BENCH_scoring.json``.

``--benchmark runner`` times cold-plan leaf throughput through the
distributed experiment service at 1 worker vs ``--workers`` workers (fresh
cache per timed run, matched pairs, median ratio), asserts the service run
is bit-identical to a serial one with zero duplicate replays, and writes
``BENCH_runner.json`` — including ``cpu_count``, because the measured
speedup is physically bounded by the host's cores (a 1-CPU container
honestly reports ~1.0x; CI's multi-core runners show the real scaling).

``--benchmark search`` times a fixed-seed warm design-space search
(``repro.search``) over the scenario tier — steps/sec plus the scenario
and in-loop memo hit rates, with the zero-replay-miss contract asserted —
and writes ``BENCH_search.json``.

``--benchmark scenarios`` times a 5,000-phase ``fleet`` timeline through
the scenario engine with phase-signature dedup on and off (fresh cache per
mode): cold and warm wall-clock, the dedup hit rate, per-mode peak traced
memory of a warm run plus process peak RSS, with per-phase bit-identity
between the two modes asserted.  Results land in ``BENCH_scenarios.json``.

Usage::

    PYTHONPATH=src python scripts/bench_report.py
        [--benchmark scoring|runner|search|scenarios] [--smoke] [--points N]
        [--workers N] [--repeats N] [--steps N] [--phases N] [--output FILE]

``--smoke`` shrinks the trace and repeat counts so the whole script runs in
a few seconds (the CI configuration); the scoring grid keeps >= 64 points
either way so the measured speedup stays representative.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.runner import ExperimentRunner
from repro.scenarios import ContentionModel
from repro.scenarios.contention import solve_phase_contention
from repro.sim.performance_model import PerformanceModel, ResourceEnvelope
from repro.sim.simulator import SimulationConfig
from repro.sim.vector_model import have_numpy
from repro.systems.fidelity import FAST_FIDELITY, Fidelity
from repro.workloads.applications import get_application

#: Tiny replay sizing for ``--smoke`` (scoring cost is trace-length
#: independent; only the one-off warm-up replay shrinks).
SMOKE_FIDELITY = Fidelity(
    capacity_scale=1.0 / 64.0,
    trace_accesses=800,
    warmup_accesses=200,
    search_trace_accesses=400,
    search_warmup_accesses=100,
)


def _config(fidelity: Fidelity, **kwargs) -> SimulationConfig:
    defaults = dict(
        num_compute_sms=34,
        power_gate_unused=True,
        capacity_scale=fidelity.capacity_scale,
        trace_accesses=fidelity.trace_accesses,
        warmup_accesses=fidelity.warmup_accesses,
        system_name="bench-report",
        seed=1,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def _envelopes(count: int):
    return [
        ResourceEnvelope(
            dram_bandwidth_share=0.1 + 0.9 * ((index * 37 % count) + 1) / count,
            llc_bandwidth_share=0.1 + 0.9 * ((index * 59 % count) + 1) / count,
            noc_bandwidth_share=0.1 + 0.9 * ((index * 83 % count) + 1) / count,
        )
        for index in range(count)
    ]


def _paired_speedup(func_a, func_b, repeats: int, rounds: int = 1):
    """Time two rivals as matched pairs (A, B, A, B, ...).

    On a machine with frequency scaling, timing all of A before all of B
    lets a clock excursion land entirely on one side.  Sampling the two
    back to back makes each (A, B) pair share its thermal state, so the
    per-pair ratio ``a / b`` cancels the clock out; the median over pairs
    is the robust matched-pairs estimate of the true speedup.  The pairs
    are spread over ``rounds`` sleep-separated bursts so a transient host
    excursion (shared-tenant pressure on a virtualized box) cannot cover
    the whole sampling window.  Returns ``(stats_a, stats_b, speedup)``
    where each stats dict carries the min (the ``timeit``-style lower
    bound) and the median of the raw seconds for transparency.
    """
    samples_a, samples_b = [], []
    per_round = max(1, repeats // max(1, rounds))
    for round_index in range(max(1, rounds)):
        if round_index:
            time.sleep(0.4)
        for _ in range(per_round):
            start = time.perf_counter()
            func_a()
            samples_a.append(time.perf_counter() - start)
            start = time.perf_counter()
            func_b()
            samples_b.append(time.perf_counter() - start)
    speedup = statistics.median(
        a / b for a, b in zip(samples_a, samples_b)
    )
    stats_a = {"min": min(samples_a), "median": statistics.median(samples_a)}
    stats_b = {"min": min(samples_b), "median": statistics.median(samples_b)}
    return stats_a, stats_b, speedup


def benchmark_batch_scoring(
    runner, fidelity: Fidelity, points: int, repeats: int, rounds: int = 1
):
    """The tentpole numbers: scalar loop vs vectorized batch, bit-identity."""
    profile = get_application("kmeans")
    config = _config(fidelity)
    measurement = runner.measurement_for(profile, config)
    model = PerformanceModel()
    variants = [
        dataclasses.replace(config, envelope=envelope)
        for envelope in _envelopes(points)
    ]

    scalar = [model.score(profile, variant, measurement) for variant in variants]
    batched = model.score_batch(profile, variants, measurement, validate=False)
    mismatches = sum(
        dataclasses.asdict(a) != dataclasses.asdict(b)
        for a, b in zip(batched, scalar)
    )
    if mismatches:
        raise AssertionError(
            f"score_batch diverged from scalar score on {mismatches}/{points} "
            "points — the bit-identity contract is broken"
        )

    scalar_stats, batch_stats, speedup = _paired_speedup(
        lambda: [model.score(profile, v, measurement) for v in variants],
        lambda: model.score_batch(profile, variants, measurement, validate=False),
        repeats,
        rounds,
    )
    return {
        "points": points,
        "scalar_seconds": scalar_stats["min"],
        "scalar_seconds_median": scalar_stats["median"],
        "batch_seconds": batch_stats["min"],
        "batch_seconds_median": batch_stats["median"],
        "speedup": speedup,
        "bit_identical": True,
    }


def benchmark_contention_solve(
    runner, fidelity: Fidelity, repeats: int, rounds: int = 1
):
    """Warm contention fixed point: precomputed scorers vs per-call scoring."""
    leaves = [
        (
            get_application(app),
            _config(fidelity, num_compute_sms=sms, system_name=app),
        )
        for app, sms in (("spmv", 28), ("cfd", 24))
    ]
    uncontended = runner.run_leaves(leaves)
    gpu = leaves[0][1].gpu
    model = ContentionModel()

    def solve(fast_scoring: bool):
        return solve_phase_contention(
            runner, gpu, leaves, uncontended, model, fast_scoring=fast_scoring
        )

    fast = solve(True)
    legacy = solve(False)
    for fast_stats, legacy_stats in zip(fast.stats, legacy.stats):
        if dataclasses.asdict(fast_stats) != dataclasses.asdict(legacy_stats):
            raise AssertionError(
                "fast-scoring contention solution diverged from the legacy path"
            )

    legacy_stats, fast_stats, speedup = _paired_speedup(
        lambda: solve(False), lambda: solve(True), repeats, rounds
    )
    return {
        "residents": len(leaves),
        "iterations": fast.iterations,
        "fast_seconds": fast_stats["min"],
        "fast_seconds_median": fast_stats["median"],
        "legacy_seconds": legacy_stats["min"],
        "legacy_seconds_median": legacy_stats["median"],
        "speedup": speedup,
        "bit_identical": True,
    }


def benchmark_runner_service(
    fidelity: Fidelity, leaves_count: int, workers: int, repeats: int, rounds: int = 1
):
    """Cold-plan leaf throughput through the service: 1 worker vs ``workers``.

    Every timed run starts from a fresh cache directory (cold by
    construction) and spawns its own worker daemons, so the measurement
    covers the full distributed path: registration, claim-by-rename,
    replay execution in workers, publication to the shared cache, and the
    coordinator's warm re-derivation.  Bit-identity against a serial run
    and the zero-duplicate-replay invariant are asserted before timing.
    """
    profile = get_application("kmeans")
    configs = [_config(fidelity, seed=seed) for seed in range(1, leaves_count + 1)]

    def cold_run(num_workers: int):
        with tempfile.TemporaryDirectory(prefix="repro-bench-runner-") as cache_dir:
            runner = ExperimentRunner(
                cache_dir=cache_dir, max_workers=num_workers, backend="service"
            )
            try:
                stats = runner.run_configs(profile, configs)
                replays = runner.replays
            finally:
                runner.close()
        return stats, replays

    with tempfile.TemporaryDirectory(prefix="repro-bench-serial-") as cache_dir:
        serial = ExperimentRunner(cache_dir=cache_dir, max_workers=0, backend="local")
        expected = serial.run_configs(profile, configs)
    actual, replays = cold_run(workers)
    mismatches = sum(
        dataclasses.asdict(a) != dataclasses.asdict(b)
        for a, b in zip(actual, expected)
    )
    if mismatches:
        raise AssertionError(
            f"service run diverged from serial on {mismatches}/{leaves_count} "
            "leaves — the bit-identity contract is broken"
        )
    if replays != leaves_count:
        raise AssertionError(
            f"service run performed {replays} replays for {leaves_count} distinct "
            "replay keys — the zero-duplicate-replay contract is broken"
        )

    single_stats, multi_stats, speedup = _paired_speedup(
        lambda: cold_run(1), lambda: cold_run(workers), repeats, rounds
    )
    cpu_count = os.cpu_count() or 1
    report = {
        "leaves": leaves_count,
        "workers": workers,
        "cpu_count": cpu_count,
        "single_worker_seconds": single_stats["min"],
        "single_worker_seconds_median": single_stats["median"],
        "multi_worker_seconds": multi_stats["min"],
        "multi_worker_seconds_median": multi_stats["median"],
        "single_worker_leaves_per_second": leaves_count / single_stats["median"],
        "multi_worker_leaves_per_second": leaves_count / multi_stats["median"],
        "speedup": speedup,
        "bit_identical": True,
        "duplicate_replays": 0,
    }
    if cpu_count < workers:
        report["note"] = (
            f"host has {cpu_count} CPU(s); a {workers}-worker speedup is "
            f"physically capped near {min(cpu_count, workers)}.0x here — run on "
            f">= {workers} cores for the representative number"
        )
    return report


def benchmark_search(fidelity: Fidelity, steps: int, seed: int, agent_name: str):
    """Warm-search throughput: steps/sec and cache hit rates of a fixed-seed run.

    A warm-up pass pays every replay/score cost once; the timed pass then
    re-runs the identical seeded search through a fresh runner sharing the
    cache directory, so the measured rate is the steady-state cost of a
    search step — scenario-tier JSON loads plus agent bookkeeping.  The
    zero-replay-miss contract is asserted on the timed pass.
    """
    from repro.search import ScenarioSearchProblem, make_agent, run_search

    with tempfile.TemporaryDirectory(prefix="repro-bench-search-") as cache_dir:
        warm_started = time.perf_counter()
        warm_runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
        warm_problem = ScenarioSearchProblem(runner=warm_runner, fidelity=fidelity)
        warm_problem.baseline()
        run_search(
            warm_problem, make_agent(agent_name, warm_problem.space, seed=seed), steps
        )
        warmup_seconds = time.perf_counter() - warm_started

        runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
        problem = ScenarioSearchProblem(runner=runner, fidelity=fidelity)
        baseline = problem.baseline()
        agent = make_agent(agent_name, problem.space, seed=seed)
        started = time.perf_counter()
        result = run_search(problem, agent, steps, baseline=baseline)
        seconds = time.perf_counter() - started

        if runner.replays or runner.disk_cache.replay_misses:
            raise AssertionError(
                f"warm search touched the replay tier ({runner.replays} replays, "
                f"{runner.disk_cache.replay_misses} misses) — the score-tier-only "
                "contract is broken"
            )
        counters = runner.disk_cache.tier_counters()

    scenario_lookups = counters["scenario_hits"] + counters["scenario_misses"]
    return {
        "agent": agent_name,
        "steps": steps,
        "seed": seed,
        "warmup_seconds": warmup_seconds,
        "seconds": seconds,
        "steps_per_second": steps / seconds,
        "baseline_fitness": result.baseline_fitness,
        "best_fitness": result.best_fitness,
        "evaluations": result.evaluations,
        "memo_hits": result.memo_hits,
        "memo_hit_rate": result.memo_hit_rate,
        "scenario_tier_hits": counters["scenario_hits"],
        "scenario_tier_misses": counters["scenario_misses"],
        "scenario_tier_hit_rate": (
            counters["scenario_hits"] / scenario_lookups if scenario_lookups else 0.0
        ),
        "replay_misses": 0,
    }


def benchmark_scenarios(fidelity: Fidelity, phases: int, warm_repeats: int):
    """Fleet-scale scenario engine: phase-signature dedup on vs off.

    A seeded ``fleet`` timeline of ``phases`` phases runs through the
    scenario engine twice — once with ``phase_dedup=False`` (the per-phase
    reference path) and once with the signature-dedup path — each in its
    own fresh cache directory.  For each mode the cold run and ``warm_repeats``
    warm runs (fresh runner sharing the cache, zero replay-tier traffic
    asserted) are timed, and one extra untimed warm run is traced with
    ``tracemalloc`` to capture the peak allocated memory of loading the
    timeline plus folding it through the streaming
    :class:`~repro.analysis.scenarios.ScenarioAccumulator`.  Bit-identity of
    every per-phase execution across the two modes is asserted before any
    number is reported.
    """
    import hashlib
    import resource
    import tracemalloc

    from repro.analysis.scenarios import ScenarioAccumulator
    from repro.scenarios import ScenarioEngine, fleet

    scenario = fleet(num_phases=phases, seed=7)
    system = "Morpheus-Basic"

    def phase_digest(result):
        hasher = hashlib.sha256()
        for execution in result.phases:
            hasher.update(repr(dataclasses.asdict(execution)).encode("utf-8"))
        return hasher.hexdigest()

    def run_mode(dedup: bool):
        with tempfile.TemporaryDirectory(prefix="repro-bench-scen-") as cache_dir:
            started = time.perf_counter()
            runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
            engine = ScenarioEngine(
                runner=runner, fidelity=fidelity, phase_dedup=dedup
            )
            cold_result = engine.run(scenario, system)
            cold_seconds = time.perf_counter() - started

            warm_samples = []
            for _ in range(warm_repeats):
                runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
                engine = ScenarioEngine(
                    runner=runner, fidelity=fidelity, phase_dedup=dedup
                )
                started = time.perf_counter()
                warm_result = engine.run(scenario, system)
                warm_samples.append(time.perf_counter() - started)
                if runner.replays or runner.disk_cache.replay_misses:
                    raise AssertionError(
                        f"warm scenario run (dedup={dedup}) touched the replay "
                        f"tier ({runner.replays} replays, "
                        f"{runner.disk_cache.replay_misses} misses)"
                    )

            # Peak allocated memory of the steady-state consumer path: load
            # the warm timeline and fold it straight into running aggregates.
            runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
            engine = ScenarioEngine(
                runner=runner, fidelity=fidelity, phase_dedup=dedup
            )
            tracemalloc.start()
            traced_result = engine.run(scenario, system)
            aggregates = ScenarioAccumulator.from_result(traced_result).aggregates()
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()

        digest = phase_digest(warm_result)
        if phase_digest(cold_result) != digest:
            raise AssertionError(
                f"warm scenario reload (dedup={dedup}) diverged from the cold "
                "run — the persistence round-trip is not bit-identical"
            )
        return {
            "cold_result": cold_result,
            "aggregates": aggregates,
            "digest": digest,
            "stats": {
                "cold_seconds": cold_seconds,
                "warm_seconds": min(warm_samples),
                "warm_seconds_median": statistics.median(warm_samples),
                "warm_peak_traced_mib": peak_bytes / (1024.0 * 1024.0),
            },
        }

    per_phase = run_mode(False)
    dedup = run_mode(True)

    if per_phase["digest"] != dedup["digest"]:
        raise AssertionError(
            "signature-dedup timeline diverged from the per-phase reference "
            "path — the bit-identity contract is broken"
        )
    if per_phase["aggregates"] != dedup["aggregates"]:
        raise AssertionError(
            "streaming aggregates diverged between the dedup and per-phase "
            "modes — the bit-identity contract is broken"
        )

    signatures = len(dedup["cold_result"].signatures)
    dedup_hits = dedup["cold_result"].dedup_hits
    per_phase_stats = per_phase["stats"]
    dedup_stats = dedup["stats"]
    return {
        "phases": phases,
        "signatures": signatures,
        "dedup_hits": dedup_hits,
        "dedup_hit_rate": dedup_hits / phases,
        "warm_repeats": warm_repeats,
        "per_phase": per_phase_stats,
        "dedup": dedup_stats,
        "cold_speedup": per_phase_stats["cold_seconds"] / dedup_stats["cold_seconds"],
        "warm_speedup": per_phase_stats["warm_seconds"] / dedup_stats["warm_seconds"],
        "peak_rss_mib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
        "bit_identical": True,
        "replay_misses_warm": 0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmark",
        choices=("scoring", "runner", "search", "scenarios"),
        default="scoring",
        help="which benchmark to run (default: scoring)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny traces and few repeats (CI mode; seconds, not minutes)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=1024,
        help="scoring: envelope grid width (acceptance floor is 64; default 1024)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="runner: service worker daemons on the multi-worker side (default 4)",
    )
    parser.add_argument(
        "--leaves",
        type=int,
        default=None,
        help="runner: cold leaves per timed run (default 16; 6 with --smoke)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (matched pairs; median ratio reported)"
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="search: steps in the timed search (default 200; 40 with --smoke)",
    )
    parser.add_argument(
        "--phases",
        type=int,
        default=None,
        help="scenarios: fleet timeline length (default 5000; 600 with --smoke)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "where to write the JSON report ('-' prints to stdout only; "
            "default BENCH_<benchmark>.json)"
        ),
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="sleep-separated sampling bursts the repeats are spread over",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="BENCH_trace",
        default=None,
        metavar="DIR",
        help=(
            "run the benchmark under telemetry, writing a span trace to DIR "
            "(default BENCH_trace) and attaching the per-stage time "
            "breakdown to the JSON report"
        ),
    )
    args = parser.parse_args(argv)

    if args.points < 64:
        parser.error("--points must be >= 64 (the acceptance grid floor)")
    if args.workers < 2:
        parser.error("--workers must be >= 2 (it is compared against 1 worker)")
    fidelity = SMOKE_FIDELITY if args.smoke else FAST_FIDELITY
    output = args.output if args.output is not None else f"BENCH_{args.benchmark}.json"

    trace_dir = Path(args.trace) if args.trace else None
    if trace_dir is not None:
        from repro.telemetry import Telemetry

        trace_dir.mkdir(parents=True, exist_ok=True)
        # A re-run must not merge with a stale trace of the previous one.
        for stale in trace_dir.glob("events-*.jsonl"):
            stale.unlink()
        trace_context = Telemetry(directory=trace_dir, enabled=True)
    else:
        trace_context = contextlib.nullcontext()

    with trace_context:
        if args.benchmark == "search":
            steps = args.steps if args.steps is not None else (40 if args.smoke else 200)
            report = {
                "benchmark": "search",
                "smoke": args.smoke,
                "warm_search": benchmark_search(
                    fidelity, steps, seed=7, agent_name="genetic"
                ),
            }
        elif args.benchmark == "scenarios":
            phases = args.phases if args.phases is not None else (600 if args.smoke else 5000)
            if phases < 1:
                parser.error("--phases must be >= 1")
            warm_repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 3)
            report = {
                "benchmark": "scenarios",
                "smoke": args.smoke,
                "fleet_dedup": benchmark_scenarios(
                    fidelity, phases, max(1, warm_repeats)
                ),
            }
        elif args.benchmark == "runner":
            repeats = args.repeats if args.repeats is not None else (3 if args.smoke else 15)
            rounds = args.rounds if args.rounds is not None else (1 if args.smoke else 3)
            leaves = args.leaves if args.leaves is not None else (6 if args.smoke else 16)
            report = {
                "benchmark": "runner",
                "smoke": args.smoke,
                "repeats": repeats,
                "rounds": rounds,
                "cold_plan_throughput": benchmark_runner_service(
                    fidelity, leaves, args.workers, repeats, rounds
                ),
            }
        else:
            repeats = args.repeats if args.repeats is not None else (5 if args.smoke else 60)
            rounds = args.rounds if args.rounds is not None else (1 if args.smoke else 6)
            if not have_numpy():
                print(
                    "FAIL: numpy is unavailable — the vectorized path under test "
                    "cannot run (scalar fallback only)",
                    file=sys.stderr,
                )
                return 1
            with tempfile.TemporaryDirectory(prefix="repro-bench-scoring-") as cache_dir:
                runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
                report = {
                    "benchmark": "scoring",
                    "smoke": args.smoke,
                    "repeats": repeats,
                    "rounds": rounds,
                    "batch_scoring": benchmark_batch_scoring(
                        runner, fidelity, args.points, repeats, rounds
                    ),
                    "contention_solve": benchmark_contention_solve(
                        runner, fidelity, repeats, rounds
                    ),
                }

    if trace_dir is not None:
        from repro.telemetry.report import summarize

        trace_summary = summarize(trace_dir)
        report["trace"] = {
            "directory": str(trace_dir),
            "stages": trace_summary["stages"],
            "cache": trace_summary["cache"],
            "histograms": trace_summary["histograms"],
        }

    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if output != "-":
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")

    if args.benchmark == "search":
        warm = report["warm_search"]
        print(
            f"\nwarm search: {warm['steps_per_second']:.0f} steps/s over "
            f"{warm['steps']} steps (scenario-tier hit rate "
            f"{warm['scenario_tier_hit_rate']:.2%}, memo hit rate "
            f"{warm['memo_hit_rate']:.2%}, zero replay misses)",
            file=sys.stderr,
        )
    elif args.benchmark == "scenarios":
        fleet_report = report["fleet_dedup"]
        print(
            f"\nfleet dedup: {fleet_report['warm_speedup']:.1f}x warm over the "
            f"per-phase path ({fleet_report['phases']} phases -> "
            f"{fleet_report['signatures']} signatures, "
            f"{fleet_report['dedup_hit_rate']:.2%} dedup hit rate, "
            f"cold {fleet_report['cold_speedup']:.2f}x, bit-identical)",
            file=sys.stderr,
        )
    elif args.benchmark == "runner":
        cold = report["cold_plan_throughput"]
        print(
            f"\ncold plan through the service: {cold['speedup']:.2f}x at "
            f"{cold['workers']} workers over 1 "
            f"({cold['multi_worker_leaves_per_second']:.1f} vs "
            f"{cold['single_worker_leaves_per_second']:.1f} leaves/s on a "
            f"{cold['cpu_count']}-CPU host)",
            file=sys.stderr,
        )
    else:
        batch = report["batch_scoring"]["speedup"]
        solve = report["contention_solve"]["speedup"]
        print(
            f"\nbatch scoring: {batch:.1f}x over scalar "
            f"({report['batch_scoring']['points']} points); "
            f"contention solve: {solve:.2f}x with precomputed scorers",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
