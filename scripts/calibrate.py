"""Calibration harness: prints Figure 1 / Figure 2 shapes for every application.

Used during development to tune the workload-model parameters in
``repro.workloads.applications`` so the reproduced figures match the paper's
qualitative behaviour.  Not part of the library API.

``--mlp-sensitivity`` additionally prints, per application, how the
best-SM-count IPC reacts to an ``mlp_per_sm`` grid.  Those variants differ
only in analytic parameters, so they are re-scored from the measurement
tier of the cache — the flag adds **zero** trace replays on top of the
Figure 1 sweep (the replay counter printed at the end proves it).
"""

from __future__ import annotations

import argparse
import os
import time

from repro.analysis.metrics import geometric_mean
from repro.analysis.rescoring import DEFAULT_MLP_GRID, mlp_sweep
from repro.analysis.sweep import (
    llc_scaling_speedups,
    llc_scaling_sweep,
    normalized_ipc_curve,
    sm_count_sweep,
    sweep_config,
)
from repro.gpu.config import RTX3080_CONFIG
from repro.runner import ExperimentRunner, using_runner
from repro.systems.fidelity import Fidelity
from repro.workloads.applications import APPLICATIONS, MEMORY_BOUND_APPS

CAL_FIDELITY = Fidelity(
    capacity_scale=1.0 / 16.0,
    trace_accesses=12_000,
    warmup_accesses=5_000,
    search_trace_accesses=6_000,
    search_warmup_accesses=2_500,
)

SM_POINTS = (10, 20, 34, 50, 68)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", nargs="*", default=None, help="subset of applications")
    parser.add_argument("--skip-fig2", action="store_true", help="only print Figure 1 curves")
    parser.add_argument(
        "--workers", type=int, default=os.cpu_count() or 1,
        help="worker processes for the sweeps (default: all cores)",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the on-disk result cache")
    parser.add_argument(
        "--mlp-sensitivity", action="store_true",
        help="also print best-SM-count IPC over an mlp_per_sm grid "
             "(re-scored from cached measurements; adds zero replays)",
    )
    args = parser.parse_args()

    runner = ExperimentRunner(
        max_workers=args.workers, use_disk_cache=not args.no_cache
    )
    names = args.apps or list(APPLICATIONS)
    start = time.time()
    fig2_4x = {}
    with using_runner(runner):
        for name in names:
            sweep = sm_count_sweep(name, sm_counts=SM_POINTS, fidelity=CAL_FIDELITY)
            curve = normalized_ipc_curve(sweep)
            curve_text = " ".join(f"{c}:{v:.2f}" for c, v in curve.items())
            print(f"{name:>8s} fig1  {curve_text}")
            if args.mlp_sensitivity:
                best = max(sweep, key=lambda count: sweep[count].ipc)
                grid = mlp_sweep(
                    name, sweep_config(RTX3080_CONFIG, best, CAL_FIDELITY),
                    DEFAULT_MLP_GRID,
                )
                grid_text = " ".join(
                    f"{mlp:.0f}:{stats.ipc / sweep[best].ipc:.2f}"
                    for mlp, stats in grid.items()
                )
                print(f"{name:>8s} mlp@{best:<3d}{grid_text}")
            if not args.skip_fig2 and name in MEMORY_BOUND_APPS:
                scaling = llc_scaling_sweep(name, scale_factors=(1.0, 2.0, 4.0), fidelity=CAL_FIDELITY,
                                            sm_candidates=SM_POINTS)
                speedups = llc_scaling_speedups(scaling)
                fig2_4x[name] = speedups[4.0]
                print(f"{name:>8s} fig2  2x:{speedups[2.0]:.2f} 4x:{speedups[4.0]:.2f}")
    if fig2_4x:
        print(f"gmean 4x speedup: {geometric_mean(list(fig2_4x.values())):.2f}")
    cache = runner.disk_cache
    print(f"elapsed {time.time() - start:.0f}s  "
          f"(cache {runner.cache_dir}: stats {cache.hits} hits / {cache.stores} stores, "
          f"measurements {cache.replay_hits} hits / {cache.replay_stores} stores, "
          f"{runner.replays} trace replays)")


if __name__ == "__main__":
    main()
