"""CI guard for the fleet-scale scenario engine: dedup telemetry + warm loads.

Runs a seeded 500-phase ``fleet`` timeline on Morpheus-Basic under an
explicit telemetry context through two fresh runners sharing one cache
directory, then asserts the fleet-scale contract:

* phase-signature dedup collapses the timeline to far fewer distinct
  signatures than phases, and the ``scenario.dedup.hits`` /
  ``scenario.dedup.misses`` counters in the trace account for **every**
  phase (hits + misses == phases, misses == distinct signatures);
* the per-signature solve-time histogram
  (``scenario.signature_solve_seconds``) is populated by the cold run;
* the warm second run executes **zero** trace replays, records **zero**
  replay-tier misses, and loads exactly **one** ``scenarios/``-tier
  payload — the signature-keyed aggregate, not thousands of leaves;
* the warm timeline is bit-identical to the cold one, resident by
  resident, through the lazy signature-backed phase view.

Exits non-zero with a diagnostic if any of that regresses — e.g. the
signature key accidentally including a cosmetic field (dedup rate
collapses), the counters drifting from the execution plan, or the warm
path quietly re-lowering phases instead of loading the aggregate.

Usage::

    PYTHONPATH=src python scripts/fleet_smoke_check.py [cache_dir] [trace_dir]
"""

from __future__ import annotations

import dataclasses
import sys
import tempfile
from pathlib import Path

from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import ScenarioEngine, fleet
from repro.systems.fidelity import Fidelity
from repro.telemetry import Telemetry
from repro.telemetry.report import summarize

FIDELITY = Fidelity(
    capacity_scale=1.0 / 32.0,
    trace_accesses=4_000,
    warmup_accesses=1_500,
    search_trace_accesses=2_000,
    search_warmup_accesses=750,
)

PHASES = 500
FLEET = fleet(num_phases=PHASES, seed=3)
SYSTEM = "Morpheus-Basic"


def run_pass(cache_dir: str):
    runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
    engine = ScenarioEngine(runner=runner, fidelity=FIDELITY)
    with using_runner(runner):
        result = engine.run(FLEET, SYSTEM)
    return runner, result


def snapshot(result) -> list:
    """A comparable rendering of one timeline run (stats + cycle accounting)."""
    return [
        (
            execution.index,
            [
                (
                    resident.application,
                    dataclasses.asdict(resident.grant),
                    dataclasses.asdict(resident.stats),
                    resident.instructions,
                    dataclasses.asdict(resident.envelope),
                    resident.uncontended_ipc,
                )
                for resident in execution.residents
            ],
            dataclasses.asdict(execution.decision.transition),
            execution.instructions,
            execution.compute_cycles,
        )
        for execution in result.phases
    ]


def main() -> int:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-fleet-check-"
    )
    trace_dir = Path(
        sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(
            prefix="repro-fleet-trace-"
        )
    )
    trace_dir.mkdir(parents=True, exist_ok=True)
    for stale in trace_dir.glob("events-*.jsonl"):
        stale.unlink()

    with Telemetry(directory=trace_dir, enabled=True):
        cold_runner, cold_result = run_pass(cache_dir)
        warm_runner, warm_result = run_pass(cache_dir)

    signatures = len(cold_result.signatures or ())
    print(
        f"cold pass: {len(cold_result)} phases -> {signatures} signatures "
        f"({cold_result.dedup_hits} dedup hits), {cold_runner.replays} replays"
    )
    warm_cache = warm_runner.disk_cache
    warm_tiers = warm_cache.tier_counters()
    print(
        f"warm pass: {warm_runner.replays} replays, replay tier "
        f"{warm_cache.replay_hits} hits / {warm_cache.replay_misses} misses, "
        f"scenario tier {warm_tiers['scenario_hits']} hits / "
        f"{warm_tiers['scenario_misses']} misses"
    )

    failures = []
    if cold_runner.replays == 0:
        failures.append("cold pass replayed nothing — cache_dir was not cold?")
    if not 0 < signatures < len(cold_result) // 4:
        failures.append(
            f"fleet timeline collapsed to {signatures} signatures over "
            f"{len(cold_result)} phases — dedup is not pulling its weight"
        )
    if cold_result.dedup_hits != len(cold_result) - signatures:
        failures.append(
            f"dedup_hits={cold_result.dedup_hits} != phases - signatures "
            f"({len(cold_result)} - {signatures})"
        )
    if warm_runner.replays != 0:
        failures.append(f"warm pass executed {warm_runner.replays} trace replays")
    if warm_cache.replay_misses != 0:
        failures.append(f"warm pass had {warm_cache.replay_misses} replay-tier misses")
    if warm_tiers["scenario_hits"] != 1:
        failures.append(
            f"warm pass loaded {warm_tiers['scenario_hits']} scenario-tier "
            "payloads — the whole timeline should be one aggregate"
        )
    if warm_result.signatures is None:
        failures.append(
            "warm result lost its signatures — the persisted payload is not "
            "the signature-keyed layout"
        )
    if snapshot(cold_result) != snapshot(warm_result):
        failures.append("fleet timeline differs between cold and warm passes")

    summary = summarize(trace_dir)
    counters = summary["counters"]
    histograms = summary["histograms"]
    dedup_hits = counters.get("scenario.dedup.hits")
    dedup_misses = counters.get("scenario.dedup.misses")
    print(
        f"trace: dedup counters hits={dedup_hits} misses={dedup_misses}, "
        f"solve histogram count="
        f"{histograms.get('scenario.signature_solve_seconds', {}).get('count', 0)}"
    )
    if dedup_hits is None or dedup_misses is None:
        failures.append(
            "scenario.dedup.{hits,misses} counters missing from the trace"
        )
    else:
        # Only the cold pass lowers phases; the warm one loads the aggregate.
        if dedup_hits + dedup_misses != PHASES:
            failures.append(
                f"dedup counters account for {dedup_hits + dedup_misses} phases, "
                f"expected {PHASES}"
            )
        if dedup_misses != signatures:
            failures.append(
                f"dedup misses ({dedup_misses}) != distinct signatures "
                f"({signatures})"
            )
    solve_histogram = histograms.get("scenario.signature_solve_seconds")
    if solve_histogram is None or not solve_histogram.get("count"):
        failures.append(
            "scenario.signature_solve_seconds histogram missing or empty"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: {PHASES}-phase fleet collapsed to {signatures} signatures with "
        "dedup counters accounting for every phase, the per-signature "
        "solve-time histogram populated, and the warm re-run served from a "
        "single scenario-tier payload (zero replays, bit-identical)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
