"""CI guard for the scenario engine: transition costs + warm-cache behaviour.

Runs a tiny bursty timeline (plus a steady reference and an overlapping
co-run timeline) on Morpheus-Basic through two fresh runners sharing one
cache directory, then asserts the scenario contract:

* the dynamic capacity manager pays a **measurable** flush/warm-up
  transition cost on the bursty timeline and **zero** on the steady one;
* a repeated-phase timeline replays each distinct phase at most once;
* a co-run phase's arbitrated extended-LLC grants never exceed the pooled
  idle SMs (and match the aggregate split);
* the co-run residents are **contended**: each scores strictly below its
  uncontended (whole-GPU-envelope) IPC, so shared-bandwidth interference
  is actually modelled;
* the warm second run executes **zero** trace replays, records **zero**
  misses in any cache tier (it is served from the persisted scenario
  aggregates), and is bit-identical to the cold run — including the
  multi-resident co-run timeline and its solved envelopes;
* a third run with *perturbed contention-solver knobs* (a different
  damping, hence different envelope score keys) re-scores the co-run from
  cached measurements: stats-tier misses are fine, but it must execute
  zero replays and record **zero replay-tier misses** — contention is a
  score-tier-only computation.

Exits non-zero with a diagnostic if any of that regresses — e.g. phase
lowering keying on process state, a transition cost leaking into the leaf
configs (which would fork replay keys), the envelope leaking into the
replay key, or scenario aggregation becoming nondeterministic.

Usage::

    PYTHONPATH=src python scripts/scenario_warm_check.py [cache_dir]
"""

from __future__ import annotations

import dataclasses
import sys
import tempfile

from repro.gpu.config import RTX3080_CONFIG
from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import (
    ContentionModel,
    ScenarioEngine,
    bursty,
    corun_overlap,
    steady,
)
from repro.systems.fidelity import Fidelity

NUM_SMS = RTX3080_CONFIG.num_sms

FIDELITY = Fidelity(
    capacity_scale=1.0 / 32.0,
    trace_accesses=4_000,
    warmup_accesses=1_500,
    search_trace_accesses=2_000,
    search_warmup_accesses=750,
)

BURSTY = bursty(bursts=2)
STEADY = steady(application="kmeans", compute_sms=24)
CORUN = corun_overlap(rounds=2)
SYSTEM = "Morpheus-Basic"


def run_pass(cache_dir: str, contention: ContentionModel | None = None):
    runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
    engine = ScenarioEngine(runner=runner, fidelity=FIDELITY, contention=contention)
    with using_runner(runner):
        burst_run = engine.run(BURSTY, SYSTEM)
        steady_run = engine.run(STEADY, SYSTEM)
        corun_run = engine.run(CORUN, SYSTEM)
    return runner, burst_run, steady_run, corun_run


def snapshot(result) -> list:
    """A comparable rendering of one timeline run (stats + cycle accounting)."""
    return [
        (
            execution.index,
            [
                (
                    resident.application,
                    dataclasses.asdict(resident.grant),
                    dataclasses.asdict(resident.stats),
                    resident.instructions,
                    dataclasses.asdict(resident.envelope),
                    resident.uncontended_ipc,
                )
                for resident in execution.residents
            ],
            dataclasses.asdict(execution.decision.transition),
            execution.instructions,
            execution.compute_cycles,
        )
        for execution in result.phases
    ]


def main() -> int:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-scenario-check-"
    )
    cold_runner, cold_burst, cold_steady, cold_corun = run_pass(cache_dir)
    unique_phases = len({id(e.stats) for e in cold_burst.phases})
    print(
        f"cold pass: {len(cold_burst)}+{len(cold_steady)}+{len(cold_corun)} "
        f"phases, {cold_runner.replays} replays, "
        f"bursty transition cycles {cold_burst.transition_cycles:,.0f}"
    )

    failures = []
    if cold_runner.replays == 0:
        failures.append("cold pass replayed nothing — cache_dir was not cold?")
    # The bursty timeline has 5 phases but only 2 distinct splits; the
    # steady one has 4 identical phases sharing one of them; the co-run one
    # repeats its full/dip phases, each lowering to one leaf per resident.
    unique_corun_leaves = len(
        {
            (resident.application, dataclasses.astuple(resident.grant))
            for execution in cold_corun.phases
            for resident in execution.residents
        }
    )
    budget = len({e.stats.num_cache_sms for e in cold_burst.phases}) + 1 + unique_corun_leaves
    if cold_runner.replays > budget:
        failures.append(
            f"cold pass replayed {cold_runner.replays} traces for "
            f"{unique_phases} distinct bursty phases + {unique_corun_leaves} "
            f"distinct co-run leaves — repeated phases re-replayed"
        )
    if cold_burst.transition_cycles <= 0:
        failures.append("dynamic policy paid no transition cost on the bursty timeline")
    if cold_steady.transition_cycles != 0:
        failures.append(
            f"steady timeline paid {cold_steady.transition_cycles} transition cycles"
        )
    for execution in cold_corun.phases:
        if len(execution.residents) != 2:
            failures.append(
                f"co-run phase {execution.index} ran {len(execution.residents)} "
                "residents instead of 2"
            )
        idle = NUM_SMS - execution.phase.total_compute_sm_demand
        pool = execution.decision.split.num_cache_sms
        granted = sum(r.grant.cache_sms for r in execution.residents)
        if granted != pool or pool > idle:
            failures.append(
                f"co-run phase {execution.index}: grants sum to {granted} "
                f"for a {pool}-SM pool with {idle} idle SMs"
            )
        for resident in execution.residents:
            if not resident.stats.ipc < resident.uncontended_ipc:
                failures.append(
                    f"co-run phase {execution.index}: {resident.application} "
                    f"scored {resident.stats.ipc:.3f} contended vs "
                    f"{resident.uncontended_ipc:.3f} uncontended — "
                    "shared-bandwidth interference is not being modelled"
                )

    warm_runner, warm_burst, warm_steady, warm_corun = run_pass(cache_dir)
    cache = warm_runner.disk_cache
    print(
        f"warm pass: {warm_runner.replays} replays, "
        f"replay tier {cache.replay_hits} hits / {cache.replay_misses} misses, "
        f"stats tier {cache.hits} hits / {cache.misses} misses"
    )
    if warm_runner.replays != 0:
        failures.append(f"warm pass executed {warm_runner.replays} trace replays")
    if cache.replay_misses != 0:
        failures.append(f"warm pass had {cache.replay_misses} replay-tier misses")
    if cache.misses != 0:
        failures.append(f"warm pass had {cache.misses} stats-tier misses")
    if snapshot(cold_burst) != snapshot(warm_burst):
        failures.append("bursty timeline differs between cold and warm passes")
    if snapshot(cold_steady) != snapshot(warm_steady):
        failures.append("steady timeline differs between cold and warm passes")
    if snapshot(cold_corun) != snapshot(warm_corun):
        failures.append("co-run timeline differs between cold and warm passes")

    # A contended co-run with *different solver knobs* addresses different
    # envelope score keys, so the scenario/stats tiers miss — but every
    # re-score must come from cached measurements: contention is a
    # score-tier-only computation and may never replay a trace.
    alt_runner, _, _, alt_corun = run_pass(
        cache_dir, contention=ContentionModel(damping=0.75)
    )
    alt_cache = alt_runner.disk_cache
    print(
        f"perturbed-solver pass: {alt_runner.replays} replays, "
        f"replay tier {alt_cache.replay_hits} hits / {alt_cache.replay_misses} misses, "
        f"stats tier {alt_cache.hits} hits / {alt_cache.misses} misses"
    )
    if alt_runner.replays != 0:
        failures.append(
            f"perturbed-solver co-run pass executed {alt_runner.replays} replays"
        )
    if alt_cache.replay_misses != 0:
        failures.append(
            f"perturbed-solver co-run pass had {alt_cache.replay_misses} "
            "replay-tier misses — the envelope leaked into the replay key?"
        )
    if alt_cache.misses == 0:
        failures.append(
            "perturbed-solver co-run pass hit every stats key — the solver "
            "knobs are not reaching the envelope path"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "OK: bursty timeline pays transition costs, steady pays none, "
        "co-run grants stay within the pooled idle SMs and every resident "
        "is bandwidth-contended, warm re-run served entirely from the "
        "persisted scenario aggregates (bit-identical), and a perturbed "
        "contention solve re-scored with zero replay-tier misses"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
