"""Design-space search over the Morpheus policy knobs (ROADMAP open item 1).

Runs seeded search agents (random-walk and genetic, by default) over the
:func:`~repro.search.space.morpheus_policy_space` knobs on one scenario
timeline, and emits a best-config report plus a convergence comparison
across the agents.  The hand-tuned ``DynamicCapacityManager()`` default is
the baseline: the script **asserts** the search beats it.

The search is run twice with identical seeds:

1. a *warm-up* pass populates every cache tier (replay-affecting axes —
   predictor flavour, SM splits — each miss the replay tier at most once
   per distinct leaf);
2. a *verification* pass re-runs the same trajectories through a fresh
   runner sharing the cache directory and asserts **zero replay-tier
   misses** — the score-tier-only property the two-phase cache promises a
   search loop — plus trajectory bit-identity (determinism).

Every step logs through the telemetry layer (``search.step`` spans with
proposal/fitness/cache-hit metrics); the emitted trace is validated
against the event schema before the script exits.

Usage::

    PYTHONPATH=src python scripts/search.py [--smoke] [--steps N]
        [--seed N] [--scenario NAME] [--system NAME] [--agents a,b,...]
        [--cache-dir DIR] [--trace DIR] [--output FILE|-]

``--smoke`` is the CI configuration: a ~20-step search at tiny fidelity
that still exercises every assertion (finite best fitness, beats the
baseline, zero replay misses, valid trace) in a few seconds.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runner import ExperimentRunner
from repro.search import (
    AGENT_TYPES,
    ScenarioSearchProblem,
    SearchResult,
    make_agent,
    run_search,
)
from repro.systems.fidelity import FAST_FIDELITY, Fidelity
from repro.telemetry import Telemetry
from repro.telemetry.schema import iter_records, validate_directory

#: Tiny trace sizing for ``--smoke`` (mirrors the other CI smoke scripts).
SMOKE_FIDELITY = Fidelity(
    capacity_scale=1.0 / 64.0,
    trace_accesses=800,
    warmup_accesses=200,
    search_trace_accesses=400,
    search_warmup_accesses=100,
)

#: Milestone steps reported in the convergence comparison table.
MILESTONE_COUNT = 6


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI configuration: ~20 steps at tiny fidelity, all assertions on",
    )
    parser.add_argument("--steps", type=int, default=None, help="steps per agent")
    parser.add_argument("--seed", type=int, default=7, help="agent RNG seed")
    parser.add_argument("--scenario", default="mixed_tenancy")
    parser.add_argument("--system", default="Morpheus-Basic")
    parser.add_argument(
        "--agents",
        default=",".join(sorted(AGENT_TYPES)),
        help="comma-separated agent names (default: all registered)",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="cache directory (default: a temp dir)"
    )
    parser.add_argument(
        "--trace", default=None, help="telemetry trace directory (default: a temp dir)"
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here ('-' = stdout)"
    )
    return parser.parse_args(argv)


def _run_agents(
    cache_dir: str,
    agent_names: Sequence[str],
    args: argparse.Namespace,
    fidelity: Fidelity,
    steps: int,
) -> tuple[ExperimentRunner, float, Dict[str, SearchResult]]:
    """One full pass: every agent searches the same problem on one runner."""
    runner = ExperimentRunner(cache_dir=cache_dir)
    problem = ScenarioSearchProblem(
        scenario=args.scenario,
        system=args.system,
        runner=runner,
        fidelity=fidelity,
    )
    baseline = problem.baseline()
    results: Dict[str, SearchResult] = {}
    for name in agent_names:
        agent = make_agent(name, problem.space, seed=args.seed)
        results[name] = run_search(problem, agent, steps, baseline=baseline)
    return runner, baseline.fitness, results


def _milestones(steps: int) -> List[int]:
    """Step indices for the convergence table (roughly log-spaced)."""
    picks = {steps - 1}
    for index in range(MILESTONE_COUNT):
        picks.add(min(steps - 1, int(round(steps ** (index / MILESTONE_COUNT))) - 1))
    return sorted(picks)


def _render(
    baseline_fitness: float, results: Dict[str, SearchResult], steps: int
) -> str:
    lines = [
        "design-space search: mixed-tenancy weighted speedup "
        f"(baseline hand-tuned dynamic policy = {baseline_fitness:.6f})",
        "",
        f"{'agent':<14}{'best':>10}{'vs base':>9}{'evals':>7}"
        f"{'memo':>6}{'sec':>8}",
    ]
    for name, result in results.items():
        improvement = result.improvement_over_baseline or 0.0
        lines.append(
            f"{name:<14}{result.best_fitness:>10.6f}{improvement:>8.2%}"
            f"{result.evaluations:>7}{result.memo_hits:>6}"
            f"{result.elapsed_seconds:>8.2f}"
        )
    lines.append("")
    lines.append("convergence (running best fitness at step):")
    milestones = _milestones(steps)
    header = f"{'step':<14}" + "".join(f"{index + 1:>10}" for index in milestones)
    lines.append(header)
    for name, result in results.items():
        trace = result.convergence()
        lines.append(
            f"{name:<14}" + "".join(f"{trace[index]:>10.4f}" for index in milestones)
        )
    lines.append("")
    best_name = max(results, key=lambda name: results[name].best_fitness)
    best = results[best_name]
    lines.append(f"best configuration ({best_name}):")
    for axis, value in best.best_candidate.items():
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"  {axis:<28}{rendered}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    fidelity = SMOKE_FIDELITY if args.smoke else FAST_FIDELITY
    steps = args.steps if args.steps is not None else (20 if args.smoke else 120)
    agent_names = [name.strip() for name in args.agents.split(",") if name.strip()]
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-search-cache-")
    trace_dir = Path(args.trace or tempfile.mkdtemp(prefix="repro-search-trace-"))

    with Telemetry(directory=trace_dir, enabled=True):
        print(f"warm-up pass: {len(agent_names)} agent(s) x {steps} steps ...")
        _run_agents(cache_dir, agent_names, args, fidelity, steps)

        print("verification pass: fresh runner over the warm cache ...")
        runner, baseline_fitness, results = _run_agents(
            cache_dir, agent_names, args, fidelity, steps
        )

    # The score-tier-only contract: a warm search never replays a trace.
    replay_misses = runner.disk_cache.replay_misses
    assert runner.replays == 0, f"warm search replayed {runner.replays} trace(s)"
    assert replay_misses == 0, f"warm search had {replay_misses} replay-tier misses"

    for name, result in results.items():
        assert math.isfinite(result.best_fitness), f"{name}: non-finite best fitness"
    best_fitness = max(result.best_fitness for result in results.values())
    assert best_fitness > baseline_fitness, (
        f"search did not beat the hand-tuned baseline "
        f"({best_fitness:.6f} <= {baseline_fitness:.6f})"
    )

    files, errors = validate_directory(trace_dir)
    assert not errors, f"invalid telemetry trace: {errors[:3]}"
    assert files > 0, "search emitted no telemetry sink files"
    step_spans = sum(
        1
        for path in sorted(trace_dir.glob("events-*.jsonl"))
        for _, record in iter_records(path)
        if record.get("type") == "span" and record.get("name") == "search.step"
    )
    expected_spans = 2 * len(agent_names) * steps  # warm-up + verification passes
    assert step_spans == expected_spans, (
        f"expected {expected_spans} search.step spans, trace has {step_spans}"
    )

    print()
    print(_render(baseline_fitness, results, steps))
    print()
    print(
        f"assertions passed: zero replay misses, best {best_fitness:.6f} > "
        f"baseline {baseline_fitness:.6f}, trace valid "
        f"({step_spans} search.step spans across {files} sink file(s))"
    )

    if args.output:
        payload = {
            "scenario": args.scenario,
            "system": args.system,
            "steps": steps,
            "seed": args.seed,
            "smoke": args.smoke,
            "baseline_fitness": baseline_fitness,
            "telemetry_step_spans": step_spans,
            "agents": {name: result.to_jsonable() for name, result in results.items()},
        }
        rendered = json.dumps(payload, indent=2, sort_keys=True)
        if args.output == "-":
            print(rendered)
        else:
            Path(args.output).write_text(rendered + "\n")
            print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
