"""Quick spot check of the Figure 12 headline: Morpheus vs the baselines."""

from __future__ import annotations

import os
import time

from repro.analysis.metrics import geometric_mean
from repro.runner import ExperimentRunner, ExperimentSpec, using_runner
from repro.systems.fidelity import Fidelity

FIDELITY = Fidelity(
    capacity_scale=1.0 / 32.0,
    trace_accesses=8_000,
    warmup_accesses=3_000,
    search_trace_accesses=4_000,
    search_warmup_accesses=1_500,
)

APPS = ["cfd", "kmeans", "p-bfs", "sgem", "spmv", "page-r"]
SYSTEMS = ["BL", "IBL", "IBL-4X-LLC", "Unified-SM-Mem", "Morpheus-Basic", "Morpheus-ALL"]


def main() -> None:
    start = time.time()
    spec = ExperimentSpec(systems=tuple(SYSTEMS), applications=tuple(APPS), fidelity=FIDELITY)
    runner = ExperimentRunner(max_workers=os.cpu_count() or 1)
    with using_runner(runner):
        result = runner.run_plan(spec)
    speedups = {name: [] for name in SYSTEMS}
    for app in APPS:
        by_system = result.by_application(app)
        base = by_system["BL"]
        row = []
        for system in SYSTEMS:
            stats = by_system[system]
            sp = base.execution_cycles / stats.execution_cycles
            speedups[system].append(sp)
            row.append(f"{system}:{sp:.2f}(c{stats.num_compute_sms}/$ {stats.num_cache_sms})")
        print(f"{app:>8s} " + "  ".join(row))
    print("gmean speedups over BL:")
    for system in SYSTEMS:
        print(f"  {system:<16s} {geometric_mean(speedups[system]):.3f}")
    print(f"elapsed {time.time() - start:.0f}s (cache: {runner.cache_dir})")


if __name__ == "__main__":
    main()
