"""Smoke-check that disabled telemetry stays (nearly) free on the hot path.

Telemetry is off by default, and the instrumented hot paths guard every
publication behind one ``telemetry().enabled`` read — so the disabled cost
must be indistinguishable from uninstrumented code.  This script regression
-tests that promise: it times the warm scoring benchmark (a loop of
score-tier lookups plus analytic re-scores through
:meth:`~repro.runner.runner.ExperimentRunner.simulate`, the exact path a
search trajectory hammers) twice as matched pairs —

* **shipped** — the code as-is, telemetry disabled (the default),
* **floor** — the same code with the ``telemetry`` accessor in every
  instrumented module patched to return a bare ``enabled=False`` stub,
  the cheapest possible guard,

and fails if the shipped path is more than ``--tolerance`` (default 2%)
slower than the floor.  If a change ever makes the disabled path allocate
spans, hit the environment per call, or otherwise grow work, the ratio
blows past the gate and CI catches it.

Usage::

    PYTHONPATH=src python scripts/telemetry_overhead_check.py
        [--points N] [--repeats N] [--tolerance FRACTION]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics
import sys
import tempfile
import time

import repro.runner.cache as cache_module
import repro.runner.runner as runner_module
import repro.scenarios.contention as contention_module
from repro.runner import ExperimentRunner
from repro.sim.performance_model import ResourceEnvelope
from repro.sim.simulator import SimulationConfig
from repro.telemetry import telemetry
from repro.workloads.applications import get_application

#: Tiny replay sizing: scoring cost is trace-length independent, so only
#: the one-off warm-up replay shrinks.
TINY = dict(capacity_scale=1.0 / 64.0, trace_accesses=800, warmup_accesses=200)

#: Modules whose ``telemetry`` accessor the floor variant stubs out.
INSTRUMENTED_MODULES = (runner_module, cache_module, contention_module)


class _FloorTelemetry:
    """The cheapest possible disabled telemetry: one false attribute."""

    __slots__ = ()
    enabled = False


_FLOOR = _FloorTelemetry()


def _variants(points: int):
    base = SimulationConfig(
        num_compute_sms=34,
        power_gate_unused=True,
        system_name="telemetry-overhead",
        seed=1,
        **TINY,
    )
    return [
        dataclasses.replace(
            base,
            envelope=ResourceEnvelope(
                dram_bandwidth_share=0.1 + 0.9 * ((index * 37 % points) + 1) / points,
                llc_bandwidth_share=0.1 + 0.9 * ((index * 59 % points) + 1) / points,
            ),
        )
        for index in range(points)
    ]


def _time(func) -> float:
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=256, help="envelope variants per pass"
    )
    parser.add_argument(
        "--repeats", type=int, default=25, help="matched (shipped, floor) pairs"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="maximum allowed fractional overhead (default 0.02 = 2%%)",
    )
    args = parser.parse_args(argv)

    if telemetry().enabled:
        print(
            "FAIL: telemetry is enabled (REPRO_TELEMETRY=1?) — this check "
            "times the disabled path",
            file=sys.stderr,
        )
        return 1

    profile = get_application("kmeans")
    variants = _variants(args.points)

    with tempfile.TemporaryDirectory(prefix="repro-telemetry-overhead-") as cache_dir:
        runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
        # One replay, then warm the stats tier so the timed loop is pure
        # score-tier lookups — the guard-dense hot path.
        for variant in variants:
            runner.simulate(profile, variant)

        def workload():
            for variant in variants:
                runner.simulate(profile, variant)

        def floor_workload():
            originals = [module.telemetry for module in INSTRUMENTED_MODULES]
            try:
                for module in INSTRUMENTED_MODULES:
                    module.telemetry = lambda: _FLOOR
                return _time(workload)
            finally:
                for module, original in zip(INSTRUMENTED_MODULES, originals):
                    module.telemetry = original

        # One discarded warm-up pair, then alternate the in-pair order so a
        # systematic first-runner advantage cancels instead of biasing.
        workload(), floor_workload()
        shipped_samples, floor_samples = [], []
        for pair in range(max(1, args.repeats)):
            if pair % 2 == 0:
                shipped_samples.append(_time(workload))
                floor_samples.append(floor_workload())
            else:
                floor_samples.append(floor_workload())
                shipped_samples.append(_time(workload))

    # Matched-pairs median ratio: each (shipped, floor) pair shares its
    # thermal/scheduling state, so the per-pair ratio cancels clock drift
    # that would swamp a min-vs-min comparison at this effect size.
    overhead = (
        statistics.median(
            shipped / floor
            for shipped, floor in zip(shipped_samples, floor_samples)
        )
        - 1.0
    )
    report = {
        "points": args.points,
        "repeats": args.repeats,
        "shipped_seconds": min(shipped_samples),
        "shipped_seconds_median": statistics.median(shipped_samples),
        "floor_seconds": min(floor_samples),
        "floor_seconds_median": statistics.median(floor_samples),
        "overhead_fraction": overhead,
        "tolerance": args.tolerance,
    }
    print(json.dumps(report, indent=2, sort_keys=True))

    if overhead > args.tolerance:
        print(
            f"FAIL: disabled telemetry adds {overhead * 100.0:.2f}% to the "
            f"scoring benchmark (tolerance {args.tolerance * 100.0:.1f}%)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: disabled telemetry adds {overhead * 100.0:.2f}% "
        f"(tolerance {args.tolerance * 100.0:.1f}%)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
