"""CI guard: a warm re-run of the example plan must not touch the replay tier.

Runs a small Figure-12-style plan twice through two fresh
:class:`~repro.runner.runner.ExperimentRunner` instances sharing one cache
directory, then asserts the second pass

* executed **zero** trace replays,
* recorded **zero** misses in either cache tier, and
* produced bit-identical results to the cold pass.

Exits non-zero (with a diagnostic) if any of that regresses — e.g. a config
field missing from ``REPLAY_FIELDS``/``SCORE_FIELDS``, a non-round-tripping
measurement field, or a content key accidentally depending on process state.

Usage::

    PYTHONPATH=src python scripts/warm_cache_check.py [cache_dir]
"""

from __future__ import annotations

import dataclasses
import sys
import tempfile

from repro.runner import ExperimentRunner, ExperimentSpec, using_runner
from repro.systems.fidelity import FAST_FIDELITY

SPEC = ExperimentSpec(
    systems=("BL", "IBL", "Morpheus-Basic"),
    applications=("kmeans", "spmv"),
    fidelity=FAST_FIDELITY,
)


def run_pass(cache_dir: str):
    runner = ExperimentRunner(cache_dir=cache_dir, max_workers=0)
    with using_runner(runner):
        result = runner.run_plan(SPEC)
    return runner, result


def main() -> int:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-warm-check-"
    )
    cold_runner, cold = run_pass(cache_dir)
    print(
        f"cold pass: {len(cold)} cells, {cold_runner.replays} replays, "
        f"{cold_runner.disk_cache.replay_stores} measurements stored"
    )
    if cold_runner.replays == 0:
        print("FAIL: cold pass replayed nothing — cache_dir was not cold?")
        return 1

    warm_runner, warm = run_pass(cache_dir)
    cache = warm_runner.disk_cache
    print(
        f"warm pass: {len(warm)} cells, {warm_runner.replays} replays, "
        f"replay tier {cache.replay_hits} hits / {cache.replay_misses} misses, "
        f"stats tier {cache.hits} hits / {cache.misses} misses"
    )

    failures = []
    if warm_runner.replays != 0:
        failures.append(f"warm pass executed {warm_runner.replays} trace replays")
    if cache.replay_misses != 0:
        failures.append(f"warm pass had {cache.replay_misses} replay-tier misses")
    if cache.misses != 0:
        failures.append(f"warm pass had {cache.misses} stats-tier misses")
    for cell, stats in cold:
        if dataclasses.asdict(stats) != dataclasses.asdict(warm.results[cell]):
            failures.append(f"cell {cell} differs between cold and warm passes")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: warm re-run served entirely from the cache, bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
