"""Packaging metadata for the Morpheus reproduction.

numpy backs the vectorized batch-scoring path (``repro.sim.vector_model``);
the code degrades to the bit-identical scalar loop when it is missing, but
installs declare it so every deployment gets the fast path.
"""

from setuptools import find_packages, setup

setup(
    name="morpheus-repro",
    version="0.6.0",
    description=(
        "Analytic reproduction of Morpheus: extending the GPU LLC with "
        "idle-core scratch capacity (MICRO 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "pytest-cov"],
    },
)
