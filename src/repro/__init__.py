"""Morpheus reproduction: extending GPU LLC capacity with idle GPU core resources.

This package reproduces "Morpheus: Extending the Last Level Cache Capacity in
GPU Systems Using Idle GPU Core Resources" (MICRO 2022) as a trace-driven,
cycle-approximate Python model.  The most commonly used entry points are
re-exported here:

* :class:`repro.gpu.config.GPUConfig` / :data:`repro.gpu.config.RTX3080_CONFIG`
  — the baseline GPU (Table 1).
* :class:`repro.core.config.MorpheusConfig` — the Morpheus design knobs.
* :class:`repro.sim.simulator.GPUSimulator` / :class:`repro.sim.simulator.SimulationConfig`
  — simulate one application on one configuration.
* :func:`repro.systems.registry.evaluate_application` — run one of the nine
  evaluated systems (BL, IBL, IBL-4X-LLC, Unified-SM-Mem, Frequency-Boost and
  the four Morpheus variants) on one of the 17 applications.
* :data:`repro.workloads.applications.APPLICATIONS` — the workload models.
"""

from repro.core.config import MorpheusConfig
from repro.runner import (
    ExperimentPlan,
    ExperimentRunner,
    ExperimentSpec,
    active_runner,
)
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.simulator import GPUSimulator, SimulationConfig, simulate
from repro.sim.stats import SimulationStats
from repro.systems.registry import (
    EVALUATED_SYSTEMS,
    evaluate_all_systems,
    evaluate_application,
    get_system,
)
from repro.workloads.applications import (
    APPLICATIONS,
    COMPUTE_BOUND_APPS,
    MEMORY_BOUND_APPS,
    get_application,
)

__version__ = "1.0.0"

__all__ = [
    "APPLICATIONS",
    "COMPUTE_BOUND_APPS",
    "EVALUATED_SYSTEMS",
    "ExperimentPlan",
    "ExperimentRunner",
    "ExperimentSpec",
    "active_runner",
    "GPUConfig",
    "GPUSimulator",
    "MEMORY_BOUND_APPS",
    "MorpheusConfig",
    "RTX3080_CONFIG",
    "SimulationConfig",
    "SimulationStats",
    "evaluate_all_systems",
    "evaluate_application",
    "get_application",
    "get_system",
    "simulate",
    "__version__",
]
