"""Analysis utilities: metrics, parameter sweeps, reports and overheads."""

from repro.analysis.latency_breakdown import LatencyBreakdown, llc_latency_timelines
from repro.analysis.metrics import (
    geometric_mean,
    normalize,
    normalized_series,
    speedup,
)
from repro.analysis.overheads import MorpheusOverheads, compute_overheads
from repro.analysis.report import format_series, format_table
from repro.analysis.sweep import llc_scaling_sweep, sm_count_sweep

__all__ = [
    "LatencyBreakdown",
    "MorpheusOverheads",
    "compute_overheads",
    "format_series",
    "format_table",
    "geometric_mean",
    "llc_latency_timelines",
    "llc_scaling_sweep",
    "normalize",
    "normalized_series",
    "sm_count_sweep",
    "speedup",
]
