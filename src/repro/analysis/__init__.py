"""Analysis utilities: metrics, sweeps, re-scoring, scenarios, reports and overheads."""

from repro.analysis.latency_breakdown import LatencyBreakdown, llc_latency_timelines
from repro.analysis.metrics import (
    geometric_mean,
    normalize,
    normalized_series,
    speedup,
)
from repro.analysis.overheads import MorpheusOverheads, compute_overheads
from repro.analysis.report import format_series, format_table
from repro.analysis.rescoring import (
    analytic_grid,
    energy_sweep,
    mlp_sweep,
    peak_ipc_sweep,
)
from repro.analysis.scenarios import (
    ScenarioAccumulator,
    ScenarioAggregates,
    SlowdownStats,
    TransitionOverheads,
    compare_runs,
    phase_slowdowns,
    phase_table,
    scenario_energy_j,
    slowdown_stats,
    time_weighted_ipc,
    transition_overheads,
    weighted_percentile,
)
from repro.analysis.sweep import llc_scaling_sweep, sm_count_sweep

__all__ = [
    "LatencyBreakdown",
    "MorpheusOverheads",
    "ScenarioAccumulator",
    "ScenarioAggregates",
    "SlowdownStats",
    "TransitionOverheads",
    "analytic_grid",
    "compare_runs",
    "compute_overheads",
    "energy_sweep",
    "format_series",
    "format_table",
    "geometric_mean",
    "llc_latency_timelines",
    "llc_scaling_sweep",
    "mlp_sweep",
    "normalize",
    "normalized_series",
    "peak_ipc_sweep",
    "phase_slowdowns",
    "phase_table",
    "scenario_energy_j",
    "slowdown_stats",
    "sm_count_sweep",
    "speedup",
    "time_weighted_ipc",
    "transition_overheads",
    "weighted_percentile",
]
