"""LLC latency timelines (Figure 5).

Figure 5 breaks the latency of conventional and extended LLC hits and misses
into their components: interconnect traversals, (software) tag lookups, data
array accesses and DRAM.  The breakdown here is assembled from the same
timing primitives the simulator uses, so the benchmark that regenerates the
figure stays consistent with the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.config import ExtendedLLCTiming, MorpheusConfig


@dataclass(frozen=True)
class LatencyBreakdown:
    """One timeline of Figure 5: named segments in nanoseconds, in order."""

    name: str
    segments: Tuple[Tuple[str, float], ...]

    @property
    def total_ns(self) -> float:
        """End-to-end latency of the timeline."""
        return sum(duration for _, duration in self.segments)

    def segment(self, label: str) -> float:
        """Duration of one named segment (0.0 if absent)."""
        for segment_label, duration in self.segments:
            if segment_label == label:
                return duration
        return 0.0


def llc_latency_timelines(
    config: MorpheusConfig | None = None,
    llc_hit_ns: float = 160.0,
    dram_ns: float = 364.0,
    kernel_wait_ns: float = 148.0,
    noc_one_way_ns: float | None = None,
) -> Dict[str, LatencyBreakdown]:
    """Build the five Figure 5 timelines.

    Args:
        config: Morpheus configuration providing the extended LLC timing.
        llc_hit_ns: Conventional LLC array access latency (~160 ns).
        dram_ns: Off-chip access latency beyond the LLC lookup (so that a
            conventional miss totals ~608 ns, as the paper reports).
        kernel_wait_ns: Warp-scheduling wait before the extended LLC kernel
            warp services a request (makes an extended miss ~773 ns).
        noc_one_way_ns: One-way SM <-> LLC-partition interconnect latency.

    Returns:
        Mapping of timeline name to its breakdown: ``conventional_hit``,
        ``conventional_miss``, ``extended_hit``, ``extended_miss`` and
        ``predicted_extended_miss``.
    """
    cfg = config or MorpheusConfig()
    timing: ExtendedLLCTiming = cfg.timing
    noc = timing.noc_one_way_ns if noc_one_way_ns is None else noc_one_way_ns

    conventional_hit = LatencyBreakdown(
        name="conventional_hit",
        segments=(
            ("noc_to_partition", noc),
            ("llc_lookup", llc_hit_ns),
            ("noc_to_core", noc),
        ),
    )
    conventional_miss = LatencyBreakdown(
        name="conventional_miss",
        segments=(
            ("noc_to_partition", noc),
            ("llc_lookup", llc_hit_ns),
            ("dram", dram_ns),
            ("noc_to_core", noc),
        ),
    )

    extended_service = timing.kernel_dispatch_ns + timing.tag_lookup_ns + kernel_wait_ns
    extended_data = timing.register_file_access_ns + timing.indirect_mov_software_ns
    extended_hit = LatencyBreakdown(
        name="extended_hit",
        segments=(
            ("noc_to_partition", noc),
            ("controller", 8.0),
            ("noc_to_cache_sm", noc),
            ("extended_tag_lookup", extended_service),
            ("extended_data_access", extended_data),
            ("noc_to_partition_return", noc),
            ("noc_to_core", noc),
        ),
    )
    extended_miss = LatencyBreakdown(
        name="extended_miss",
        segments=(
            ("noc_to_partition", noc),
            ("controller", 8.0),
            ("noc_to_cache_sm", noc),
            ("extended_tag_lookup", extended_service),
            ("noc_to_partition_return", noc),
            ("dram", dram_ns),
            ("noc_to_core", noc),
        ),
    )
    predicted_extended_miss = LatencyBreakdown(
        name="predicted_extended_miss",
        segments=(
            ("noc_to_partition", noc),
            ("controller", 8.0),
            ("dram", dram_ns),
            ("noc_to_core", noc),
        ),
    )
    return {
        breakdown.name: breakdown
        for breakdown in (
            conventional_hit,
            conventional_miss,
            extended_hit,
            extended_miss,
            predicted_extended_miss,
        )
    }
