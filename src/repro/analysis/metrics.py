"""Metric helpers shared by the benchmark harness and tests."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's 'gmean' rows).

    Raises:
        ValueError: if the sequence is empty or contains non-positive values.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean() requires at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline_time: float, improved_time: float) -> float:
    """Speedup of ``improved_time`` over ``baseline_time`` (both execution times)."""
    if baseline_time <= 0 or improved_time <= 0:
        raise ValueError("execution times must be positive")
    return baseline_time / improved_time


def normalize(value: float, baseline: float) -> float:
    """Normalize ``value`` to ``baseline``."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return value / baseline


def normalized_series(values: Sequence[float], baseline: float | None = None) -> List[float]:
    """Normalize a series to its first element (or an explicit baseline)."""
    if not values:
        return []
    base = values[0] if baseline is None else baseline
    if base == 0:
        raise ValueError("baseline must be non-zero")
    return [v / base for v in values]


def normalized_map(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize a mapping of values to the entry at ``baseline_key``."""
    if baseline_key not in values:
        raise KeyError(f"baseline key {baseline_key!r} missing from values")
    base = values[baseline_key]
    if base == 0:
        raise ValueError("baseline value must be non-zero")
    return {key: value / base for key, value in values.items()}


def percent_improvement(baseline: float, improved: float) -> float:
    """Percent improvement of ``improved`` over ``baseline`` (higher is better)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return (improved - baseline) / baseline * 100.0


def within_percent(value: float, reference: float, percent: float) -> bool:
    """True when ``value`` is within ``percent`` % of ``reference``."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return abs(value - reference) / abs(reference) * 100.0 <= percent
