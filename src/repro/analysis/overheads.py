"""Morpheus hardware overhead accounting (§7.5).

The Morpheus controller adds two storage structures per LLC partition — the
Bloom filters of the hit/miss predictor (16 KiB) and the extended LLC query
logic unit (5 KiB) — for a total of 21 KiB per partition, about 4 % of a
partition's conventional LLC slice on the RTX 3080.  Its logic adds under 1 %
to total GPU power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MorpheusConfig
from repro.energy.components import ComponentEnergies, DEFAULT_ENERGIES
from repro.gpu.config import GPUConfig, RTX3080_CONFIG

KIB = 1024


@dataclass(frozen=True)
class MorpheusOverheads:
    """Storage and power overheads of the Morpheus controller."""

    bloom_filter_bytes_per_partition: int
    query_logic_bytes_per_partition: int
    num_partitions: int
    llc_slice_bytes_per_partition: int
    controller_power_watts: float
    typical_gpu_power_watts: float

    @property
    def total_bytes_per_partition(self) -> int:
        """Total added storage per LLC partition (≈21 KiB)."""
        return self.bloom_filter_bytes_per_partition + self.query_logic_bytes_per_partition

    @property
    def total_bytes(self) -> int:
        """Total added storage across all partitions (≈210 KiB)."""
        return self.total_bytes_per_partition * self.num_partitions

    @property
    def storage_fraction_of_llc_slice(self) -> float:
        """Added storage as a fraction of one partition's conventional slice (≈4 %)."""
        if self.llc_slice_bytes_per_partition <= 0:
            return 0.0
        return self.total_bytes_per_partition / self.llc_slice_bytes_per_partition

    @property
    def power_fraction(self) -> float:
        """Controller power as a fraction of typical GPU power (≈0.93 %)."""
        if self.typical_gpu_power_watts <= 0:
            return 0.0
        return self.controller_power_watts / self.typical_gpu_power_watts


def compute_overheads(
    morpheus: MorpheusConfig | None = None,
    gpu: GPUConfig = RTX3080_CONFIG,
    energies: ComponentEnergies = DEFAULT_ENERGIES,
    typical_gpu_power_watts: float = 300.0,
) -> MorpheusOverheads:
    """Compute the §7.5 overhead numbers for a Morpheus configuration."""
    config = morpheus or MorpheusConfig()
    per_partition_slice = gpu.llc.capacity_bytes // gpu.llc.num_partitions
    # The controller sits in every LLC partition; its combined logic power is
    # the per-GPU figure from the energy model.
    return MorpheusOverheads(
        bloom_filter_bytes_per_partition=config.bloom_filter_storage_bytes_per_partition,
        query_logic_bytes_per_partition=config.query_logic_storage_bytes,
        num_partitions=gpu.llc.num_partitions,
        llc_slice_bytes_per_partition=per_partition_slice,
        controller_power_watts=energies.morpheus_controller_watts * gpu.llc.num_partitions,
        typical_gpu_power_watts=typical_gpu_power_watts,
    )
