"""Plain-text table/series formatting for the benchmark harness.

The benchmark harness prints the rows and series the paper's tables and
figures report; these helpers keep that formatting consistent and readable in
pytest output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Format a simple fixed-width table.

    Args:
        headers: Column headers.
        rows: Row values; floats are formatted with ``float_format``.
        title: Optional title line printed above the table.
        float_format: Format spec applied to float cells.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered_rows = [[cell(value) for value in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(value))

    def format_row(values: Sequence[str]) -> str:
        return "  ".join(value.rjust(widths[i]) for i, value in enumerate(values))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row([str(h) for h in headers]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    series: Mapping[object, float],
    float_format: str = "{:.3f}",
) -> str:
    """Format one named series (e.g. one application's Figure 1 curve)."""
    points = ", ".join(
        f"{key}: {float_format.format(value)}" for key, value in series.items()
    )
    return f"{name}: {points}"


def format_normalized_map(
    title: str,
    values: Mapping[str, float],
    baseline_key: str,
    float_format: str = "{:.3f}",
) -> str:
    """Format a mapping normalized to one of its keys."""
    if baseline_key not in values:
        raise KeyError(f"baseline key {baseline_key!r} missing")
    base = values[baseline_key]
    if base == 0:
        raise ValueError("baseline value must be non-zero")
    lines = [title]
    for key, value in values.items():
        lines.append(f"  {key:<24s} {float_format.format(value / base)}")
    return "\n".join(lines)
