"""Analytic re-scoring sweeps over a warm measurement cache.

Calibration and sensitivity studies sweep the *analytic* parameters of the
performance model — outstanding requests per SM (``mlp_per_sm``), peak warp
IPC (``peak_warp_ipc_per_sm``), the shared-bandwidth
:class:`~repro.sim.performance_model.ResourceEnvelope` and the
:class:`~repro.energy.components.ComponentEnergies` constants — while the
functional hierarchy replay they score is unchanged.  Under the two-phase
pipeline those sweeps are nearly free: every variant shares the replay key
of the base run, so the :class:`~repro.runner.runner.ExperimentRunner`
serves the measurement tier and re-runs only the pure scoring step.

All helpers execute through a runner (the process-wide one by default) and
return plain ``{parameter: SimulationStats}`` mappings.  After a sweep over
an already-replayed configuration, ``runner.replays`` has not moved — the
property the dense sensitivity figures rely on.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, Optional, Sequence, Tuple

from repro.energy.components import ComponentEnergies
from repro.runner.runner import ExperimentRunner, active_runner
from repro.sim.performance_model import ResourceEnvelope
from repro.sim.simulator import SimulationConfig
from repro.sim.stats import SimulationStats
from repro.workloads.applications import ApplicationProfile, get_application

#: Default MLP grid for sensitivity studies (requests per SM).
DEFAULT_MLP_GRID: Tuple[float, ...] = (80.0, 160.0, 240.0, 320.0, 480.0)

#: Default peak-warp-IPC grid for sensitivity studies.
DEFAULT_PEAK_IPC_GRID: Tuple[float, ...] = (2.0, 3.0, 4.0, 5.0, 6.0)


@functools.lru_cache(maxsize=None)
def _profile_by_name(name: str) -> ApplicationProfile:
    return get_application(name)


def _profile(application: str | ApplicationProfile) -> ApplicationProfile:
    if isinstance(application, ApplicationProfile):
        return application
    # Memoized so every sweep point of a campaign sees the *same* profile
    # object: RunSpec's per-instance replay-key memo and the batch scorer's
    # identity-first replay checks both key off object identity.
    return _profile_by_name(application)


def mlp_sweep(
    application: str | ApplicationProfile,
    config: SimulationConfig,
    mlp_values: Sequence[float] = DEFAULT_MLP_GRID,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[float, SimulationStats]:
    """Re-score ``config`` under each ``mlp_per_sm`` value (zero replays when warm)."""
    runner = runner or active_runner()
    profile = _profile(application)
    configs = [
        dataclasses.replace(config, mlp_per_sm=value) for value in mlp_values
    ]
    stats = runner.score_many(profile, configs)
    return dict(zip(mlp_values, stats))


def peak_ipc_sweep(
    application: str | ApplicationProfile,
    config: SimulationConfig,
    peak_ipc_values: Sequence[float] = DEFAULT_PEAK_IPC_GRID,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[float, SimulationStats]:
    """Re-score ``config`` under each ``peak_warp_ipc_per_sm`` value."""
    runner = runner or active_runner()
    profile = _profile(application)
    configs = [
        dataclasses.replace(config, peak_warp_ipc_per_sm=value)
        for value in peak_ipc_values
    ]
    stats = runner.score_many(profile, configs)
    return dict(zip(peak_ipc_values, stats))


def analytic_grid(
    application: str | ApplicationProfile,
    config: SimulationConfig,
    mlp_values: Sequence[float] = DEFAULT_MLP_GRID,
    peak_ipc_values: Sequence[float] = DEFAULT_PEAK_IPC_GRID,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[Tuple[float, float], SimulationStats]:
    """Dense (mlp, peak IPC) cross product, keyed by ``(mlp, peak_ipc)``.

    The whole grid shares one replay key with ``config``, so a warm
    measurement cache scores ``len(mlp_values) * len(peak_ipc_values)``
    points without a single trace replay.
    """
    runner = runner or active_runner()
    profile = _profile(application)
    points = [(mlp, ipc) for mlp in mlp_values for ipc in peak_ipc_values]
    configs = [
        dataclasses.replace(config, mlp_per_sm=mlp, peak_warp_ipc_per_sm=ipc)
        for mlp, ipc in points
    ]
    stats = runner.score_many(profile, configs)
    return dict(zip(points, stats))


def envelope_sweep(
    application: str | ApplicationProfile,
    config: SimulationConfig,
    envelopes: Sequence[ResourceEnvelope],
    runner: Optional[ExperimentRunner] = None,
) -> Dict[ResourceEnvelope, SimulationStats]:
    """Re-score ``config`` under each shared-bandwidth envelope.

    The envelope is a score-only config field, so the whole sweep shares
    one replay key with the base run: over a warm measurement tier it
    models a tenant's sensitivity to losing DRAM/LLC/NoC share — the
    building block of co-run contention studies — without a single trace
    replay.
    """
    runner = runner or active_runner()
    profile = _profile(application)
    configs = [
        dataclasses.replace(config, envelope=envelope) for envelope in envelopes
    ]
    stats = runner.score_many(profile, configs)
    return dict(zip(envelopes, stats))


def energy_sweep(
    application: str | ApplicationProfile,
    config: SimulationConfig,
    energies_grid: Sequence[ComponentEnergies],
    runner: Optional[ExperimentRunner] = None,
) -> Dict[ComponentEnergies, SimulationStats]:
    """Re-score ``config`` under each set of energy constants.

    Energy constants key the stats tier, not the replay tier, so the whole
    grid shares one measurement fetch — and one roofline evaluation: the
    cold points are batch-scored via
    :meth:`~repro.runner.runner.ExperimentRunner.score_energy_grid` (an
    unexpectedly cold replay still lands on ``runner.replays``, keeping
    "replays has not moved" a truthful check).
    """
    runner = runner or active_runner()
    profile = _profile(application)
    energies_list = list(energies_grid)
    stats = runner.score_energy_grid(profile, config, energies_list)
    return dict(zip(energies_list, stats))
