"""Scenario-level analysis: timeline aggregates over per-phase leaf results.

A :class:`~repro.scenarios.engine.ScenarioRunResult` holds one scored leaf
per phase plus the transition costs charged between phases; this module
turns that into the timeline-level numbers the scenario studies report:

* :func:`time_weighted_ipc` — instructions retired over *all* cycles,
  including reconfiguration stalls, so transition costs show up as lost
  throughput;
* :func:`scenario_energy_j` — per-phase energy scaled to each phase's share
  of the timeline, plus the DRAM energy of flush writebacks and warm-up
  fills;
* :func:`transition_overheads` — the flush/warm-up breakdown and its share
  of the timeline;
* :func:`phase_table` / :func:`compare_runs` — human-readable reports.

Everything here is pure post-processing of already-cached leaf results:
re-running an analysis never touches the replay tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.report import format_table
from repro.energy.components import ComponentEnergies, DEFAULT_ENERGIES
from repro.scenarios.engine import ScenarioRunResult

_PJ_TO_J = 1e-12


@dataclass(frozen=True)
class TransitionOverheads:
    """Aggregate reconfiguration costs of one timeline run.

    Attributes:
        transitions: Phase boundaries that did reconfiguration work.
        flush_cycles: Total cycles draining dirty extended-LLC data.
        warmup_cycles: Total cycles re-warming grown capacity.
        flushed_dirty_bytes: Dirty bytes written back to DRAM.
        warmup_fill_bytes: Bytes streamed from DRAM during warm-ups.
        dram_energy_j: DRAM energy of that transition traffic.
        overhead_fraction: Share of the timeline's total cycles lost to
            transitions (0 for static policies and steady timelines).
    """

    transitions: int
    flush_cycles: float
    warmup_cycles: float
    flushed_dirty_bytes: float
    warmup_fill_bytes: float
    dram_energy_j: float
    overhead_fraction: float

    @property
    def total_cycles(self) -> float:
        """Total reconfiguration stall in core cycles."""
        return self.flush_cycles + self.warmup_cycles


def time_weighted_ipc(result: ScenarioRunResult) -> float:
    """Timeline IPC: total instructions over total cycles (with transitions).

    Equivalent to the duration-weighted harmonic mean of the per-phase IPCs,
    degraded by reconfiguration stalls — the honest "what did the timeline
    actually deliver" number.
    """
    if result.total_cycles <= 0:
        return 0.0
    return result.total_instructions / result.total_cycles


def transition_overheads(
    result: ScenarioRunResult,
    energies: ComponentEnergies = DEFAULT_ENERGIES,
) -> TransitionOverheads:
    """Aggregate the flush/warm-up costs of one timeline run."""
    transitions = 0
    flush_cycles = 0.0
    warmup_cycles = 0.0
    flushed = 0.0
    filled = 0.0
    for execution in result.phases:
        cost = execution.decision.transition
        if cost.is_zero:
            continue
        transitions += 1
        flush_cycles += cost.flush_cycles
        warmup_cycles += cost.warmup_cycles
        flushed += cost.flushed_dirty_bytes
        filled += cost.warmup_fill_bytes
    total = result.total_cycles
    return TransitionOverheads(
        transitions=transitions,
        flush_cycles=flush_cycles,
        warmup_cycles=warmup_cycles,
        flushed_dirty_bytes=flushed,
        warmup_fill_bytes=filled,
        dram_energy_j=(flushed + filled) * energies.dram_pj_per_byte * _PJ_TO_J,
        overhead_fraction=(flush_cycles + warmup_cycles) / total if total > 0 else 0.0,
    )


def scenario_energy_j(
    result: ScenarioRunResult,
    energies: ComponentEnergies = DEFAULT_ENERGIES,
) -> float:
    """Total timeline energy in joules.

    Each phase's leaf energy (computed for the application's full
    instruction count) is scaled linearly to the phase's share of the
    timeline — energy is proportional to instructions at a fixed IPC and
    split — and the DRAM energy of transition traffic is added on top.
    Static power during the (comparatively short) transition stalls is
    neglected.
    """
    total = 0.0
    for execution in result.phases:
        breakdown = execution.stats.energy
        if breakdown is None or execution.stats.instructions <= 0:
            continue
        scale = execution.instructions / execution.stats.instructions
        total += breakdown.total_j * scale
    return total + transition_overheads(result, energies).dram_energy_j


def phase_table(result: ScenarioRunResult) -> str:
    """Per-phase report of one timeline run (splits, IPC, transition stalls)."""
    rows = []
    for execution in result.phases:
        split = execution.decision.split
        cost = execution.decision.transition
        rows.append(
            [
                execution.index,
                execution.phase.label or execution.phase.application,
                execution.phase.application,
                execution.phase.compute_sm_demand,
                split.num_compute_sms,
                split.num_cache_sms,
                split.num_gated_sms,
                execution.stats.ipc,
                execution.compute_cycles,
                cost.total_cycles,
            ]
        )
    title = (
        f"Scenario {result.scenario.name!r} on {result.system} "
        f"({result.policy_name} policy):"
    )
    return format_table(
        [
            "phase", "label", "app", "demand",
            "compute", "cache", "gated",
            "IPC", "cycles", "transition",
        ],
        rows,
        title=title,
    )


def compare_runs(
    results: Mapping[str, ScenarioRunResult],
    energies: ComponentEnergies = DEFAULT_ENERGIES,
) -> str:
    """Side-by-side timeline comparison (one row per labelled run)."""
    rows = []
    for label, result in results.items():
        overheads = transition_overheads(result, energies)
        rows.append(
            [
                label,
                result.system,
                result.policy_name,
                time_weighted_ipc(result),
                result.total_cycles,
                overheads.total_cycles,
                f"{overheads.overhead_fraction:.3%}",
                scenario_energy_j(result, energies),
            ]
        )
    return format_table(
        [
            "run", "system", "policy", "tw-IPC",
            "total cycles", "transition cycles", "overhead", "energy (J)",
        ],
        rows,
        title="Timeline comparison:",
    )
