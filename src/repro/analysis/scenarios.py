"""Scenario-level analysis: timeline aggregates over per-phase leaf results.

A :class:`~repro.scenarios.engine.ScenarioRunResult` holds one scored leaf
per phase plus the transition costs charged between phases; this module
turns that into the timeline-level numbers the scenario studies report:

* :func:`time_weighted_ipc` — instructions retired over *all* cycles,
  including reconfiguration stalls, so transition costs show up as lost
  throughput;
* :func:`scenario_energy_j` — per-phase energy scaled to each phase's share
  of the timeline, plus the DRAM energy of flush writebacks and warm-up
  fills;
* :func:`transition_overheads` — the flush/warm-up breakdown and its share
  of the timeline;
* co-run aggregation — :func:`per_app_timelines` (per-application
  time-weighted IPC and capacity shares), :func:`weighted_speedup` /
  :func:`fairness` against solo references, and :func:`contention_breakdown`
  (per-application cycles lost to co-residency, decomposed into the
  extended-LLC-grant component and the shared-bandwidth-interference
  component, with transitions reported separately);
* :func:`phase_table` / :func:`corun_table` / :func:`compare_runs` —
  human-readable reports;
* :class:`ScenarioAccumulator` — a **streaming** fold of the same
  aggregates: one pass over ``result.phases`` in timeline order, O(distinct
  signatures) running state, bit-identical to the list-based functions
  above, plus weighted p50/p95/p99 per-application phase-slowdown
  percentiles for fleet SLA reporting.

Everything here is pure post-processing of already-cached leaf results:
re-running an analysis never touches the replay tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.analysis.report import format_table
from repro.energy.components import ComponentEnergies, DEFAULT_ENERGIES
from repro.scenarios.engine import PhaseExecution, ScenarioRunResult
from repro.scenarios.spec import ScenarioSpec

_PJ_TO_J = 1e-12


@dataclass(frozen=True)
class TransitionOverheads:
    """Aggregate reconfiguration costs of one timeline run.

    Attributes:
        transitions: Phase boundaries that did reconfiguration work.
        flush_cycles: Total cycles draining dirty extended-LLC data.
        warmup_cycles: Total cycles re-warming grown capacity.
        flushed_dirty_bytes: Dirty bytes written back to DRAM.
        warmup_fill_bytes: Bytes streamed from DRAM during warm-ups.
        dram_energy_j: DRAM energy of that transition traffic.
        overhead_fraction: Share of the timeline's total cycles lost to
            transitions (0 for static policies and steady timelines).
    """

    transitions: int
    flush_cycles: float
    warmup_cycles: float
    flushed_dirty_bytes: float
    warmup_fill_bytes: float
    dram_energy_j: float
    overhead_fraction: float

    @property
    def total_cycles(self) -> float:
        """Total reconfiguration stall in core cycles."""
        return self.flush_cycles + self.warmup_cycles


def time_weighted_ipc(result: ScenarioRunResult) -> float:
    """Timeline IPC: total instructions over total cycles (with transitions).

    Equivalent to the duration-weighted harmonic mean of the per-phase IPCs,
    degraded by reconfiguration stalls — the honest "what did the timeline
    actually deliver" number.
    """
    if result.total_cycles <= 0:
        return 0.0
    return result.total_instructions / result.total_cycles


def transition_overheads(
    result: ScenarioRunResult,
    energies: ComponentEnergies = DEFAULT_ENERGIES,
) -> TransitionOverheads:
    """Aggregate the flush/warm-up costs of one timeline run."""
    transitions = 0
    flush_cycles = 0.0
    warmup_cycles = 0.0
    flushed = 0.0
    filled = 0.0
    for execution in result.phases:
        cost = execution.decision.transition
        if cost.is_zero:
            continue
        transitions += 1
        flush_cycles += cost.flush_cycles
        warmup_cycles += cost.warmup_cycles
        flushed += cost.flushed_dirty_bytes
        filled += cost.warmup_fill_bytes
    total = result.total_cycles
    return TransitionOverheads(
        transitions=transitions,
        flush_cycles=flush_cycles,
        warmup_cycles=warmup_cycles,
        flushed_dirty_bytes=flushed,
        warmup_fill_bytes=filled,
        dram_energy_j=(flushed + filled) * energies.dram_pj_per_byte * _PJ_TO_J,
        overhead_fraction=(flush_cycles + warmup_cycles) / total if total > 0 else 0.0,
    )


def scenario_energy_j(
    result: ScenarioRunResult,
    energies: ComponentEnergies = DEFAULT_ENERGIES,
) -> float:
    """Total timeline energy in joules.

    Each resident's leaf energy (computed for the application's full
    instruction count) is scaled linearly to the instructions that resident
    retired during the phase — energy is proportional to instructions at a
    fixed IPC and split — and the DRAM energy of transition traffic is
    added on top.  Static power during the (comparatively short) transition
    stalls is neglected, and co-run phases sum their residents' scaled leaf
    energies (a pessimistic bound: each leaf already accounts its own
    share of the uncore).
    """
    total = 0.0
    for execution in result.phases:
        for resident in execution.residents:
            breakdown = resident.stats.energy
            if breakdown is None or resident.stats.instructions <= 0:
                continue
            scale = resident.instructions / resident.stats.instructions
            total += breakdown.total_j * scale
    return total + transition_overheads(result, energies).dram_energy_j


def phase_table(result: ScenarioRunResult) -> str:
    """Per-phase report of one timeline run (splits, IPC, transition stalls).

    Co-run phases print one row per resident: the phase-level columns
    (gated SMs, cycles, transition stall) appear on the first resident's
    row, the per-resident columns (compute/cache grant, IPC) on each.
    """
    rows = []
    for execution in result.phases:
        split = execution.decision.split
        cost = execution.decision.transition
        for position, resident in enumerate(execution.residents):
            first = position == 0
            rows.append(
                [
                    execution.index if first else "",
                    execution.phase.describe() if first else "",
                    resident.application,
                    resident.grant.compute_sms,
                    resident.grant.cache_sms,
                    split.num_gated_sms if first else "",
                    resident.stats.ipc,
                    execution.compute_cycles if first else "",
                    cost.total_cycles if first else "",
                ]
            )
    title = (
        f"Scenario {result.scenario.name!r} on {result.system} "
        f"({result.policy_name} policy):"
    )
    return format_table(
        [
            "phase", "label", "app",
            "compute", "cache", "gated",
            "IPC", "cycles", "transition",
        ],
        rows,
        title=title,
    )


# -- co-run aggregation --------------------------------------------------------------


@dataclass(frozen=True)
class AppTimeline:
    """One application's aggregate across the phases where it was resident.

    Attributes:
        application: The application name.
        instructions: Instructions the application retired over the timeline.
        resident_cycles: Wall-clock cycles of the phases where it was
            resident, **including** those phases' transition stalls (every
            resident sits out a reconfiguration).
        transition_cycles: The share of ``resident_cycles`` lost to
            transitions.
        ipc: Time-weighted IPC: ``instructions / resident_cycles``.
        slice_ipc: *Equal-slice* IPC — the duration-weight-weighted mean of
            the application's per-phase leaf IPCs (transition-free).  This
            is the number to normalize against a solo reference computed
            the same way
            (:meth:`~repro.scenarios.engine.ScenarioEngine.solo_reference_ipcs`):
            phase durations depend on who shares the GPU, so comparing
            wall-clock IPCs across tenancy configurations mixes throughput
            with scheduling, while the per-phase means compare like slices.
        uncontended_slice_ipc: The same equal-slice aggregation over the
            **uncontended** leaf IPCs — what the application would have
            scored at its granted SM shares with the whole shared memory
            system to itself.  The gap to ``slice_ipc`` is pure
            shared-bandwidth interference; the gap from the solo reference
            down to ``uncontended_slice_ipc`` is the extended-LLC-grant
            (capacity arbitration) component.
        mean_compute_sms: Cycle-weighted mean compute-SM grant.
        mean_cache_sms: Cycle-weighted mean extended-LLC grant.
    """

    application: str
    instructions: float
    resident_cycles: float
    transition_cycles: float
    ipc: float
    slice_ipc: float
    uncontended_slice_ipc: float
    mean_compute_sms: float
    mean_cache_sms: float


def per_app_timelines(result: ScenarioRunResult) -> Dict[str, AppTimeline]:
    """Aggregate one timeline run per application, in first-seen order.

    The building block of the co-run metrics: for a single-tenant timeline
    it degenerates to one entry whose IPC is the run's time-weighted IPC.
    """
    order = result.scenario.applications
    instructions = {name: 0.0 for name in order}
    resident_cycles = {name: 0.0 for name in order}
    transition_cycles = {name: 0.0 for name in order}
    weighted_ipc = {name: 0.0 for name in order}
    weighted_uncontended_ipc = {name: 0.0 for name in order}
    resident_weight = {name: 0.0 for name in order}
    compute_sm_cycles = {name: 0.0 for name in order}
    cache_sm_cycles = {name: 0.0 for name in order}
    for execution in result.phases:
        stall = execution.decision.transition.total_cycles
        weight = execution.phase.duration_weight
        for resident in execution.residents:
            name = resident.application
            instructions[name] += resident.instructions
            resident_cycles[name] += execution.cycles
            transition_cycles[name] += stall
            weighted_ipc[name] += weight * resident.stats.ipc
            weighted_uncontended_ipc[name] += weight * resident.uncontended_ipc
            resident_weight[name] += weight
            compute_sm_cycles[name] += resident.grant.compute_sms * execution.cycles
            cache_sm_cycles[name] += resident.grant.cache_sms * execution.cycles
    timelines = {}
    for name in order:
        cycles = resident_cycles[name]
        weight = resident_weight[name]
        timelines[name] = AppTimeline(
            application=name,
            instructions=instructions[name],
            resident_cycles=cycles,
            transition_cycles=transition_cycles[name],
            ipc=instructions[name] / cycles if cycles > 0 else 0.0,
            slice_ipc=weighted_ipc[name] / weight if weight > 0 else 0.0,
            uncontended_slice_ipc=(
                weighted_uncontended_ipc[name] / weight if weight > 0 else 0.0
            ),
            mean_compute_sms=compute_sm_cycles[name] / cycles if cycles > 0 else 0.0,
            mean_cache_sms=cache_sm_cycles[name] / cycles if cycles > 0 else 0.0,
        )
    return timelines


def _normalized_progress(
    timelines: Mapping[str, AppTimeline], reference_ipc: Mapping[str, float]
) -> Dict[str, float]:
    """Per-application ``slice_ipc / solo reference`` (the one shared path)."""
    progress = {}
    for name, timeline in timelines.items():
        reference = reference_ipc[name]
        progress[name] = timeline.slice_ipc / reference if reference > 0 else 0.0
    return progress


def weighted_speedup(
    result: ScenarioRunResult, reference_ipc: Mapping[str, float]
) -> float:
    """Multi-tenant weighted speedup against per-application solo references.

    ``sum_app(shared slice IPC / solo slice IPC)`` — the standard
    multiprogram throughput metric; equals the number of tenants when
    co-residency costs nothing, and both sides use the equal-slice
    aggregation (see :attr:`AppTimeline.slice_ipc`).  ``reference_ipc``
    typically comes from
    :meth:`~repro.scenarios.engine.ScenarioEngine.solo_reference_ipcs`.
    """
    return sum(_normalized_progress(per_app_timelines(result), reference_ipc).values())


def fairness(
    result: ScenarioRunResult, reference_ipc: Mapping[str, float]
) -> float:
    """Min/max ratio of the per-application normalized progress (1 = fair).

    The usual co-run fairness index: each application's shared-mode IPC is
    normalized to its solo reference, and the worst-treated tenant's
    progress is divided by the best-treated one's.
    """
    ratios = list(
        _normalized_progress(per_app_timelines(result), reference_ipc).values()
    )
    if not ratios or max(ratios) <= 0:
        return 0.0
    return min(ratios) / max(ratios)


@dataclass(frozen=True)
class AppContention:
    """One application's co-residency cost against its solo reference.

    ``contention_cycles`` is the extra time the application's retired
    instructions took at its shared equal-slice IPC compared to retiring
    them at the solo reference IPC (negative when sharing beat the
    reference).  It decomposes exactly into the two channels a co-resident
    loses through:

    * ``capacity_grant_cycles`` — solo reference down to the *uncontended*
      shared IPC: the cost of running at the arbitrated extended-LLC grant
      (and compute share) instead of owning the whole idle pool, with the
      full memory system still to itself;
    * ``bandwidth_interference_cycles`` — uncontended down to the contended
      IPC: the cost of sharing DRAM/LLC/NoC bandwidth with the
      co-residents, at identical grants (nonzero only when the contention
      fixed point actually throttled a shared channel).

    ``transition_cycles`` is the part of its resident time spent in
    reconfiguration stalls, reported separately.
    """

    application: str
    ipc: float
    uncontended_ipc: float
    reference_ipc: float
    normalized_progress: float
    contention_cycles: float
    capacity_grant_cycles: float
    bandwidth_interference_cycles: float
    transition_cycles: float


@dataclass(frozen=True)
class ContentionBreakdown:
    """Contention-overhead breakdown of one co-run timeline."""

    per_app: Tuple[AppContention, ...]
    weighted_speedup: float
    fairness: float

    @property
    def contention_cycles(self) -> float:
        """Total extra cycles across applications vs their solo references."""
        return sum(app.contention_cycles for app in self.per_app)

    @property
    def capacity_grant_cycles(self) -> float:
        """Total cycles lost to arbitrated extended-LLC grants (vs solo pools)."""
        return sum(app.capacity_grant_cycles for app in self.per_app)

    @property
    def bandwidth_interference_cycles(self) -> float:
        """Total cycles lost to shared DRAM/LLC/NoC bandwidth interference."""
        return sum(app.bandwidth_interference_cycles for app in self.per_app)


def _breakdown_from(
    timelines: Mapping[str, AppTimeline], reference_ipc: Mapping[str, float]
) -> ContentionBreakdown:
    """Build a :class:`ContentionBreakdown` from one timeline aggregation."""
    progress = _normalized_progress(timelines, reference_ipc)
    per_app = []
    for name, timeline in timelines.items():
        reference = reference_ipc[name]
        shared_cycles = (
            timeline.instructions / timeline.slice_ipc
            if timeline.slice_ipc > 0
            else 0.0
        )
        uncontended_cycles = (
            timeline.instructions / timeline.uncontended_slice_ipc
            if timeline.uncontended_slice_ipc > 0
            else 0.0
        )
        ideal_cycles = timeline.instructions / reference if reference > 0 else 0.0
        per_app.append(
            AppContention(
                application=name,
                ipc=timeline.slice_ipc,
                uncontended_ipc=timeline.uncontended_slice_ipc,
                reference_ipc=reference,
                normalized_progress=progress[name],
                contention_cycles=shared_cycles - ideal_cycles,
                capacity_grant_cycles=uncontended_cycles - ideal_cycles,
                bandwidth_interference_cycles=shared_cycles - uncontended_cycles,
                transition_cycles=timeline.transition_cycles,
            )
        )
    ratios = list(progress.values())
    return ContentionBreakdown(
        per_app=tuple(per_app),
        weighted_speedup=sum(ratios),
        fairness=min(ratios) / max(ratios) if ratios and max(ratios) > 0 else 0.0,
    )


def contention_breakdown(
    result: ScenarioRunResult, reference_ipc: Mapping[str, float]
) -> ContentionBreakdown:
    """Break one timeline's co-residency cost down per application.

    Pure post-processing: the references are per-application solo IPCs
    (see :meth:`~repro.scenarios.engine.ScenarioEngine.solo_reference_ipcs`),
    so computing the breakdown never runs a simulation.
    """
    return _breakdown_from(per_app_timelines(result), reference_ipc)


def corun_table(
    result: ScenarioRunResult, reference_ipc: Mapping[str, float]
) -> str:
    """Per-application co-run report (shares, IPC, progress, contention).

    The contention column is split into its two components: cycles lost to
    the arbitrated extended-LLC *grant* (solo pool vs arbitrated slice,
    full bandwidth on both sides) and cycles lost to shared *bandwidth*
    interference (identical grant, contended vs whole-GPU envelope).
    """
    timelines = per_app_timelines(result)
    breakdown = _breakdown_from(timelines, reference_ipc)
    rows = []
    for app in breakdown.per_app:
        timeline = timelines[app.application]
        rows.append(
            [
                app.application,
                timeline.mean_compute_sms,
                timeline.mean_cache_sms,
                app.ipc,
                app.uncontended_ipc,
                app.reference_ipc,
                f"{app.normalized_progress:.3f}",
                app.capacity_grant_cycles,
                app.bandwidth_interference_cycles,
                app.transition_cycles,
            ]
        )
    title = (
        f"Co-run {result.scenario.name!r} on {result.system} "
        f"({result.policy_name} policy): weighted speedup "
        f"{breakdown.weighted_speedup:.3f}, fairness {breakdown.fairness:.3f}"
    )
    return format_table(
        [
            "app", "mean compute", "mean cache",
            "IPC", "uncontended IPC", "solo IPC", "progress",
            "grant cycles", "bandwidth cycles", "transition cycles",
        ],
        rows,
        title=title,
    )


# -- streaming aggregation -----------------------------------------------------------


def _grouped_weights(
    pairs: Union[Mapping[float, float], Iterable[Tuple[float, float]]],
) -> Dict[float, float]:
    """Group (value, weight) pairs into a value → total-weight mapping.

    Weights of equal values are summed in input order, so grouping a raw
    per-phase pair list produces bitwise the same totals as the
    accumulator's incremental grouping.
    """
    if isinstance(pairs, Mapping):
        return dict(pairs)
    grouped: Dict[float, float] = {}
    for value, weight in pairs:
        grouped[value] = grouped.get(value, 0.0) + weight
    return grouped


def weighted_percentile(
    pairs: Union[Mapping[float, float], Iterable[Tuple[float, float]]],
    fraction: float,
) -> float:
    """Weighted nearest-rank percentile of (value, weight) pairs.

    The smallest value whose cumulative weight (in ascending value order)
    reaches ``fraction`` of the total weight — the weighted analogue of the
    nearest-rank percentile the telemetry layer reports.  Accepts either a
    raw pair iterable or an already-grouped value → weight mapping;
    both produce identical results for the same underlying pairs.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    grouped = _grouped_weights(pairs)
    values = sorted(grouped)
    total = 0.0
    for value in values:
        total += grouped[value]
    if not values or total <= 0.0:
        return 0.0
    threshold = fraction * total
    cumulative = 0.0
    for value in values:
        cumulative += grouped[value]
        if cumulative >= threshold:
            return value
    return values[-1]


def phase_slowdowns(
    result: ScenarioRunResult,
    reference_ipc: Optional[Mapping[str, float]] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-application (slowdown, duration weight) pairs, in phase order.

    A resident's phase slowdown is ``reference IPC / contended IPC`` —
    how much slower the phase ran than its reference.  With
    ``reference_ipc`` (solo references from
    :meth:`~repro.scenarios.engine.ScenarioEngine.solo_reference_ipcs`)
    the slowdown is relative to running alone; without it, relative to the
    resident's own **uncontended** IPC, isolating shared-bandwidth
    interference.  This is the O(phases) reference the streaming
    accumulator's grouped slowdown state is tested against.
    """
    pairs: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in result.scenario.applications
    }
    for execution in result.phases:
        weight = execution.phase.duration_weight
        for resident in execution.residents:
            reference = (
                reference_ipc[resident.application]
                if reference_ipc is not None
                else resident.uncontended_ipc
            )
            ipc = resident.stats.ipc
            slowdown = reference / ipc if ipc > 0.0 and reference > 0.0 else 0.0
            pairs[resident.application].append((slowdown, weight))
    return pairs


@dataclass(frozen=True)
class SlowdownStats:
    """Weighted phase-slowdown percentiles of one application.

    Attributes:
        application: The application name.
        weight: Total duration weight of the phases it was resident in.
        p50/p95/p99: Weighted nearest-rank percentiles of its per-phase
            slowdown (see :func:`phase_slowdowns`) — the fleet SLA view:
            p99 is the slowdown its worst 1% of resident time exceeded.
        max: The worst per-phase slowdown.
    """

    application: str
    weight: float
    p50: float
    p95: float
    p99: float
    max: float


def slowdown_stats(
    application: str,
    pairs: Union[Mapping[float, float], Iterable[Tuple[float, float]]],
) -> SlowdownStats:
    """Fold (slowdown, weight) pairs into :class:`SlowdownStats`."""
    grouped = _grouped_weights(pairs)
    values = sorted(grouped)
    total = 0.0
    for value in values:
        total += grouped[value]
    return SlowdownStats(
        application=application,
        weight=total,
        p50=weighted_percentile(grouped, 0.50),
        p95=weighted_percentile(grouped, 0.95),
        p99=weighted_percentile(grouped, 0.99),
        max=values[-1] if values else 0.0,
    )


@dataclass(frozen=True)
class ScenarioAggregates:
    """Every timeline-level aggregate of one run, computed in one pass.

    Field-for-field bit-identical to the list-based functions: matching
    :func:`time_weighted_ipc`, :func:`scenario_energy_j`,
    :func:`transition_overheads` and :func:`per_app_timelines`, plus the
    per-application :class:`SlowdownStats` that only the streaming pass
    provides.
    """

    phases: int
    total_instructions: float
    compute_cycles: float
    transition_cycles: float
    total_cycles: float
    time_weighted_ipc: float
    energy_j: float
    transitions: TransitionOverheads
    timelines: Dict[str, AppTimeline]
    slowdowns: Dict[str, SlowdownStats]


class ScenarioAccumulator:
    """Streaming one-pass aggregation of a timeline run.

    Feed phases **in timeline order** via :meth:`add` (float sums are
    order-sensitive; phase order is what the list-based reductions use),
    then read :meth:`aggregates`.  Running state is O(applications +
    distinct slowdown values) — for a signature-deduplicated fleet run
    that is O(signatures), never O(phases), so folding a lazy
    :class:`~repro.scenarios.engine.SignaturePhases` view aggregates a
    10k-phase timeline without ever materializing a 10k-element list.

    ``reference_ipc`` selects the slowdown reference exactly as in
    :func:`phase_slowdowns`; every other aggregate ignores it.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        energies: ComponentEnergies = DEFAULT_ENERGIES,
        reference_ipc: Optional[Mapping[str, float]] = None,
    ) -> None:
        self._scenario = scenario
        self._energies = energies
        self._reference_ipc = reference_ipc
        order = scenario.applications
        self._phases = 0
        self._instructions = 0.0
        self._compute_cycles = 0.0
        self._transition_cycles = 0.0
        self._transitions = 0
        self._flush_cycles = 0.0
        self._warmup_cycles = 0.0
        self._flushed = 0.0
        self._filled = 0.0
        self._energy = 0.0
        self._app_instructions = {name: 0.0 for name in order}
        self._app_resident_cycles = {name: 0.0 for name in order}
        self._app_transition_cycles = {name: 0.0 for name in order}
        self._app_weighted_ipc = {name: 0.0 for name in order}
        self._app_weighted_uncontended_ipc = {name: 0.0 for name in order}
        self._app_resident_weight = {name: 0.0 for name in order}
        self._app_compute_sm_cycles = {name: 0.0 for name in order}
        self._app_cache_sm_cycles = {name: 0.0 for name in order}
        self._slowdowns: Dict[str, Dict[float, float]] = {
            name: {} for name in order
        }

    def add(self, execution: PhaseExecution) -> None:
        """Fold one phase into the running aggregates."""
        self._phases += 1
        self._instructions += execution.instructions
        self._compute_cycles += execution.compute_cycles
        cost = execution.decision.transition
        stall = cost.total_cycles
        self._transition_cycles += stall
        if not cost.is_zero:
            self._transitions += 1
            self._flush_cycles += cost.flush_cycles
            self._warmup_cycles += cost.warmup_cycles
            self._flushed += cost.flushed_dirty_bytes
            self._filled += cost.warmup_fill_bytes
        cycles = execution.cycles
        weight = execution.phase.duration_weight
        for resident in execution.residents:
            name = resident.application
            breakdown = resident.stats.energy
            if breakdown is not None and resident.stats.instructions > 0:
                scale = resident.instructions / resident.stats.instructions
                self._energy += breakdown.total_j * scale
            self._app_instructions[name] += resident.instructions
            self._app_resident_cycles[name] += cycles
            self._app_transition_cycles[name] += stall
            self._app_weighted_ipc[name] += weight * resident.stats.ipc
            self._app_weighted_uncontended_ipc[name] += (
                weight * resident.uncontended_ipc
            )
            self._app_resident_weight[name] += weight
            self._app_compute_sm_cycles[name] += (
                resident.grant.compute_sms * cycles
            )
            self._app_cache_sm_cycles[name] += resident.grant.cache_sms * cycles
            reference = (
                self._reference_ipc[name]
                if self._reference_ipc is not None
                else resident.uncontended_ipc
            )
            ipc = resident.stats.ipc
            slowdown = (
                reference / ipc if ipc > 0.0 and reference > 0.0 else 0.0
            )
            grouped = self._slowdowns[name]
            grouped[slowdown] = grouped.get(slowdown, 0.0) + weight

    @classmethod
    def from_result(
        cls,
        result: ScenarioRunResult,
        energies: ComponentEnergies = DEFAULT_ENERGIES,
        reference_ipc: Optional[Mapping[str, float]] = None,
    ) -> "ScenarioAccumulator":
        """Fold every phase of ``result`` (lazily — one phase at a time)."""
        accumulator = cls(
            result.scenario, energies=energies, reference_ipc=reference_ipc
        )
        for execution in result.phases:
            accumulator.add(execution)
        return accumulator

    def aggregates(self) -> ScenarioAggregates:
        """The aggregates of everything folded so far."""
        total_cycles = self._compute_cycles + self._transition_cycles
        overhead_cycles = self._flush_cycles + self._warmup_cycles
        transitions = TransitionOverheads(
            transitions=self._transitions,
            flush_cycles=self._flush_cycles,
            warmup_cycles=self._warmup_cycles,
            flushed_dirty_bytes=self._flushed,
            warmup_fill_bytes=self._filled,
            dram_energy_j=(
                (self._flushed + self._filled)
                * self._energies.dram_pj_per_byte
                * _PJ_TO_J
            ),
            overhead_fraction=(
                overhead_cycles / total_cycles if total_cycles > 0 else 0.0
            ),
        )
        timelines = {}
        for name in self._scenario.applications:
            cycles = self._app_resident_cycles[name]
            weight = self._app_resident_weight[name]
            timelines[name] = AppTimeline(
                application=name,
                instructions=self._app_instructions[name],
                resident_cycles=cycles,
                transition_cycles=self._app_transition_cycles[name],
                ipc=(
                    self._app_instructions[name] / cycles
                    if cycles > 0
                    else 0.0
                ),
                slice_ipc=(
                    self._app_weighted_ipc[name] / weight if weight > 0 else 0.0
                ),
                uncontended_slice_ipc=(
                    self._app_weighted_uncontended_ipc[name] / weight
                    if weight > 0
                    else 0.0
                ),
                mean_compute_sms=(
                    self._app_compute_sm_cycles[name] / cycles
                    if cycles > 0
                    else 0.0
                ),
                mean_cache_sms=(
                    self._app_cache_sm_cycles[name] / cycles
                    if cycles > 0
                    else 0.0
                ),
            )
        return ScenarioAggregates(
            phases=self._phases,
            total_instructions=self._instructions,
            compute_cycles=self._compute_cycles,
            transition_cycles=self._transition_cycles,
            total_cycles=total_cycles,
            time_weighted_ipc=(
                self._instructions / total_cycles if total_cycles > 0 else 0.0
            ),
            energy_j=self._energy + transitions.dram_energy_j,
            transitions=transitions,
            timelines=timelines,
            slowdowns={
                name: slowdown_stats(name, self._slowdowns[name])
                for name in self._scenario.applications
            },
        )


def compare_runs(
    results: Mapping[str, ScenarioRunResult],
    energies: ComponentEnergies = DEFAULT_ENERGIES,
) -> str:
    """Side-by-side timeline comparison (one row per labelled run)."""
    rows = []
    for label, result in results.items():
        overheads = transition_overheads(result, energies)
        rows.append(
            [
                label,
                result.system,
                result.policy_name,
                time_weighted_ipc(result),
                result.total_cycles,
                overheads.total_cycles,
                f"{overheads.overhead_fraction:.3%}",
                scenario_energy_j(result, energies),
            ]
        )
    return format_table(
        [
            "run", "system", "policy", "tw-IPC",
            "total cycles", "transition cycles", "overhead", "energy (J)",
        ],
        rows,
        title="Timeline comparison:",
    )
