"""Parameter sweeps behind Figures 1 and 2.

* :func:`sm_count_sweep` — normalized IPC as the number of SMs grows from 10
  to 68 (Figure 1).
* :func:`llc_scaling_sweep` — best-configuration speedup with 2x and 4x
  conventional LLC capacities (Figure 2).

All sweeps execute through an :class:`~repro.runner.runner.ExperimentRunner`
(the process-wide one by default), so the individual simulations are
disk-cached and can be fanned out over worker processes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.runner.runner import ExperimentRunner, active_runner
from repro.sim.simulator import SimulationConfig
from repro.sim.stats import SimulationStats
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY
from repro.workloads.applications import ApplicationProfile, get_application

#: SM counts plotted on the Figure 1 x-axes.
FIGURE1_SM_COUNTS: Tuple[int, ...] = (10, 20, 30, 42, 50, 60, 68)


def sweep_config(
    gpu: GPUConfig,
    num_compute_sms: int,
    fidelity: Fidelity,
    power_gate_unused: bool = True,
    system_name: str = "sweep",
    seed: int = 1,
) -> SimulationConfig:
    """The config of one Figure-1-style sweep point.

    Public so analytic re-scoring sweeps (:mod:`repro.analysis.rescoring`)
    can address the very same replay keys the sweep populated.
    """
    return SimulationConfig(
        gpu=gpu,
        num_compute_sms=num_compute_sms,
        power_gate_unused=power_gate_unused,
        capacity_scale=fidelity.capacity_scale,
        trace_accesses=fidelity.trace_accesses,
        warmup_accesses=fidelity.warmup_accesses,
        system_name=system_name,
        seed=seed,
    )


def sm_count_sweep(
    application: str | ApplicationProfile,
    sm_counts: Sequence[int] = FIGURE1_SM_COUNTS,
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[int, SimulationStats]:
    """Simulate one application at each SM count (Figure 1 raw data)."""
    profile = application if isinstance(application, ApplicationProfile) else get_application(application)
    runner = runner or active_runner()
    counts = [count for count in sm_counts if count <= gpu.num_sms]
    configs = [sweep_config(gpu, count, fidelity) for count in counts]
    stats = runner.run_configs(profile, configs)
    return dict(zip(counts, stats))


def normalized_ipc_curve(
    sweep: Dict[int, SimulationStats]
) -> Dict[int, float]:
    """Normalize a SM-count sweep to its smallest SM count (the Figure 1 y-axis)."""
    if not sweep:
        return {}
    base_count = min(sweep)
    base_ipc = sweep[base_count].ipc
    if base_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return {count: stats.ipc / base_ipc for count, stats in sorted(sweep.items())}


def best_configuration(
    application: str | ApplicationProfile,
    gpu: GPUConfig,
    sm_candidates: Sequence[int] = FIGURE1_SM_COUNTS,
    fidelity: Fidelity = STANDARD_FIDELITY,
    runner: Optional[ExperimentRunner] = None,
) -> Tuple[int, SimulationStats]:
    """Best SM count and its stats for ``application`` on ``gpu``."""
    sweep = sm_count_sweep(application, sm_candidates, gpu, fidelity, runner=runner)
    if not sweep:
        raise ValueError("no SM candidate fits the GPU")
    best_count = max(sweep, key=lambda count: sweep[count].ipc)
    return best_count, sweep[best_count]


def llc_scaling_sweep(
    application: str | ApplicationProfile,
    scale_factors: Sequence[float] = (1.0, 2.0, 4.0),
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
    sm_candidates: Sequence[int] = FIGURE1_SM_COUNTS,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[float, SimulationStats]:
    """Best-configuration performance at several conventional LLC sizes (Figure 2).

    For each LLC scale factor, the SM count is re-optimized (the paper varies
    the core count and reports the maximum observed performance).
    """
    profile = application if isinstance(application, ApplicationProfile) else get_application(application)
    results: Dict[float, SimulationStats] = {}
    for factor in scale_factors:
        scaled_gpu = gpu if factor == 1.0 else gpu.with_llc_scale(factor)
        _, stats = best_configuration(
            profile, scaled_gpu, sm_candidates, fidelity, runner=runner
        )
        results[factor] = stats
    return results


def llc_scaling_speedups(sweep: Dict[float, SimulationStats]) -> Dict[float, float]:
    """Normalized IPC relative to the 1x LLC entry (the Figure 2 y-axis)."""
    if 1.0 not in sweep:
        raise ValueError("the sweep must include the 1.0x baseline")
    base = sweep[1.0].ipc
    if base <= 0:
        raise ValueError("baseline IPC must be positive")
    return {factor: stats.ipc / base for factor, stats in sorted(sweep.items())}
