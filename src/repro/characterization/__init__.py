"""Characterization of the extended LLC kernel (§5, Figure 11)."""

from repro.characterization.extended_llc_kernel import (
    CharacterizationPoint,
    ExtendedLLCCharacterization,
    WARP_COUNTS,
    combined_configuration,
)

__all__ = [
    "CharacterizationPoint",
    "ExtendedLLCCharacterization",
    "WARP_COUNTS",
    "combined_configuration",
]
