"""Characterization of the extended LLC kernel (§5, Figure 11).

The paper measures four metrics of the extended LLC kernel on a real
RTX 3080 — capacity, access latency, access bandwidth and energy per byte —
for the three implementation alternatives (register file, shared memory, L1)
and five warp counts (1, 8, 16, 32, 48).  We reproduce the curves from the
same first principles the paper cites:

* **Capacity** follows the per-store capacity models
  (:class:`~repro.core.register_file_store.RegisterFileStore` & co.).
* **Latency** is the kernel dispatch + tag lookup + data-array access +
  Indirect-MOV cost, plus the NoC round trip, plus a warp-scheduling wait
  that grows with the number of kernel warps (the paper's explanation of why
  more warps raise latency).
* **Bandwidth** grows with the number of warps (more requests in flight) but
  is throttled by the interconnect, saturating around ~37 GB/s for the
  register file variant — an order of magnitude below the raw register file
  bandwidth, as the paper observes.  An ``ideal_interconnect`` switch removes
  that throttle, reproducing the paper's 290/106/97 GB/s ideal numbers.
* **Energy per byte** divides a fixed per-access energy budget (cache-mode SM
  activity + NoC + controller) by the achieved bandwidth, so it falls as warp
  count (and throughput) grows — matching the measured trend — with the
  register file variant cheapest per byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.config import ExtendedLLCTiming
from repro.core.l1_store import L1Store
from repro.core.register_file_store import RegisterFileStore
from repro.core.shared_memory_store import SharedMemoryStore

#: The warp counts evaluated in Figure 11.
WARP_COUNTS: Tuple[int, ...] = (1, 8, 16, 32, 48)

#: The three implementation alternatives of §5.
STORE_KINDS: Tuple[str, ...] = ("register_file", "shared_memory", "l1")


@dataclass(frozen=True)
class CharacterizationPoint:
    """One point of Figure 11: a store kind at a warp count."""

    store: str
    num_warps: int
    capacity_kib: float
    latency_ns: float
    bandwidth_gbps: float
    energy_pj_per_byte: float


class ExtendedLLCCharacterization:
    """Analytical model of the §5 real-GPU characterization.

    Args:
        timing: Latency primitives of the extended LLC kernel.
        register_file_bytes: Register file capacity per SM.
        l1_shared_bytes: Unified L1/shared capacity per SM.
        noc_bandwidth_gbps: Effective per-SM interconnect bandwidth available
            to extended LLC traffic (the bottleneck the paper identifies).
        block_size: Extended LLC block size.
    """

    def __init__(
        self,
        timing: ExtendedLLCTiming | None = None,
        register_file_bytes: int = 256 * 1024,
        l1_shared_bytes: int = 128 * 1024,
        noc_bandwidth_gbps: float = 37.0,
        block_size: int = 128,
    ) -> None:
        self.timing = timing or ExtendedLLCTiming()
        self.register_file_bytes = register_file_bytes
        self.l1_shared_bytes = l1_shared_bytes
        self.noc_bandwidth_gbps = noc_bandwidth_gbps
        self.block_size = block_size

    # -- capacity (Figure 11a) ------------------------------------------------------

    def capacity_bytes(self, store: str, num_warps: int) -> int:
        """Extended LLC data capacity of ``store`` at ``num_warps`` warps."""
        if store == "register_file":
            return RegisterFileStore.capacity_bytes_for_warps(
                num_warps, register_file_bytes=self.register_file_bytes, block_size=self.block_size
            )
        if store == "shared_memory":
            return SharedMemoryStore.capacity_bytes_for_warps(
                num_warps, shared_memory_bytes=self.l1_shared_bytes, block_size=self.block_size
            )
        if store == "l1":
            return L1Store.capacity_bytes_for_warps(
                num_warps, l1_bytes=self.l1_shared_bytes, block_size=self.block_size
            )
        raise ValueError(f"unknown store {store!r}")

    # -- latency (Figure 11b) ---------------------------------------------------------

    def latency_ns(self, store: str, num_warps: int, ideal_interconnect: bool = False) -> float:
        """Average extended LLC access latency for ``store`` at ``num_warps`` warps."""
        if num_warps <= 0:
            raise ValueError("num_warps must be positive")
        base = self.timing.access_latency_ns(store)
        noc = 0.0 if ideal_interconnect else 2.0 * self.timing.noc_one_way_ns
        # Requests wait for their set's warp to reach its scheduling slot; the
        # wait grows with the number of resident kernel warps.
        scheduling_wait = self.timing.warp_scheduling_slot_ns * num_warps
        # A single warp adds a serialization penalty instead (it must finish
        # the previous request before taking a new one).
        serialization = self.timing.kernel_dispatch_ns if num_warps == 1 else 0.0
        return base + noc + scheduling_wait + serialization + 120.0

    # -- bandwidth (Figure 11c) --------------------------------------------------------

    #: Per-request pipeline occupancy of one kernel warp (ns); calibrated so the
    #: ideal-interconnect experiment reproduces the paper's 290/106/97 GB/s.
    _OCCUPANCY_NS = {"register_file": 21.0, "shared_memory": 58.0, "l1": 63.0}

    def bandwidth_gbps(self, store: str, num_warps: int, ideal_interconnect: bool = False) -> float:
        """Extended LLC access bandwidth for ``store`` at ``num_warps`` warps.

        Each kernel warp serves one request at a time; throughput is the warp
        count divided by the per-request occupancy.  The non-ideal case adds
        the interconnect round trip to every request's occupancy and caps the
        aggregate at the per-SM NoC bandwidth — the bottleneck the paper
        identifies (~37 GB/s vs the register file's 1 TB/s).
        """
        if num_warps <= 0:
            raise ValueError("num_warps must be positive")
        occupancy_ns = self._OCCUPANCY_NS[store]
        store_limit = {
            "register_file": self.timing.register_file_bandwidth_gbps,
            "shared_memory": self.timing.shared_memory_bandwidth_gbps,
            "l1": self.timing.l1_bandwidth_gbps,
        }[store]
        if ideal_interconnect:
            raw_gbps = num_warps * self.block_size / occupancy_ns
            return min(raw_gbps, store_limit)
        occupancy_ns += 2.0 * self.timing.noc_one_way_ns
        raw_gbps = num_warps * self.block_size / occupancy_ns
        return min(raw_gbps, store_limit, self.noc_bandwidth_gbps)

    # -- energy per byte (Figure 11d) ----------------------------------------------------

    def energy_pj_per_byte(self, store: str, num_warps: int) -> float:
        """Extended LLC energy per byte for ``store`` at ``num_warps`` warps.

        Modelled as a fixed power envelope (cache-mode SM + NoC + LLC-partition
        logic involved in each access) amortized over the achieved bandwidth,
        plus a per-byte array-access component that differs by store.
        """
        bandwidth = self.bandwidth_gbps(store, num_warps)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        array_pj = {"register_file": 12.0, "shared_memory": 22.0, "l1": 26.0}[store]
        # SM + interconnect power attributable to the kernel; grows mildly
        # with the number of active kernel warps.
        envelope_watts = 0.15 + 0.03 * num_warps
        amortized_pj = envelope_watts / (bandwidth * 1e9) * 1e12
        return array_pj + amortized_pj

    # -- figure assembly ------------------------------------------------------------------

    def point(self, store: str, num_warps: int) -> CharacterizationPoint:
        """One Figure 11 point."""
        return CharacterizationPoint(
            store=store,
            num_warps=num_warps,
            capacity_kib=self.capacity_bytes(store, num_warps) / 1024.0,
            latency_ns=self.latency_ns(store, num_warps),
            bandwidth_gbps=self.bandwidth_gbps(store, num_warps),
            energy_pj_per_byte=self.energy_pj_per_byte(store, num_warps),
        )

    def figure11(self, warp_counts: Sequence[int] = WARP_COUNTS) -> List[CharacterizationPoint]:
        """All Figure 11 points (three stores x the evaluated warp counts)."""
        return [self.point(store, warps) for store in STORE_KINDS for warps in warp_counts]

    def ideal_interconnect_bandwidths(self, num_warps: int = 48) -> Dict[str, float]:
        """The paper's ideal-interconnect experiment (290 / 106 / 97 GB/s at 48 warps)."""
        return {
            store: self.bandwidth_gbps(store, num_warps, ideal_interconnect=True)
            for store in STORE_KINDS
        }


def combined_configuration(
    characterization: ExtendedLLCCharacterization | None = None,
    rf_warps: int = 32,
    l1_warps: int = 16,
) -> Dict[str, float]:
    """The paper's chosen RF+L1 combination (32 + 16 warps).

    Returns the headline numbers §5 quotes for the combined extended LLC:
    capacity (KiB), average latency (ns), average bandwidth (GB/s) and energy
    per byte (pJ/B) per cache-mode SM.
    """
    model = characterization or ExtendedLLCCharacterization()
    rf_capacity = model.capacity_bytes("register_file", rf_warps)
    l1_capacity = model.capacity_bytes("l1", l1_warps)
    total_capacity = rf_capacity + l1_capacity
    rf_weight = rf_capacity / total_capacity
    l1_weight = l1_capacity / total_capacity

    latency = (
        model.latency_ns("register_file", rf_warps) * rf_weight
        + model.latency_ns("l1", l1_warps) * l1_weight
    )
    bandwidth = min(
        model.noc_bandwidth_gbps,
        model.bandwidth_gbps("register_file", rf_warps) * rf_weight
        + model.bandwidth_gbps("l1", l1_warps) * l1_weight,
    )
    energy = (
        model.energy_pj_per_byte("register_file", rf_warps) * rf_weight
        + model.energy_pj_per_byte("l1", l1_warps) * l1_weight
    )
    return {
        "capacity_kib": total_capacity / 1024.0,
        "latency_ns": latency,
        "bandwidth_gbps": bandwidth,
        "energy_pj_per_byte": energy,
        "rf_warps": float(rf_warps),
        "l1_warps": float(l1_warps),
    }
