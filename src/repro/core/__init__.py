"""Morpheus: the paper's primary contribution.

This subpackage implements both halves of the hardware/software co-design:

* **Hardware** — the per-LLC-partition :class:`~repro.core.controller.MorpheusController`
  with its :class:`~repro.core.address_separation.AddressSeparator`,
  dual-Bloom-filter :class:`~repro.core.hit_miss_predictor.HitMissPredictor`
  and :class:`~repro.core.query_logic.ExtendedLLCQueryLogic` (request queue,
  warp status table, read/write data buffers).
* **Software** — the extended LLC kernel
  (:class:`~repro.core.extended_llc.ExtendedLLCKernel`) that lays the extended
  LLC tag/data arrays out in the register file
  (:class:`~repro.core.register_file_store.RegisterFileStore`), shared memory
  and L1 of cache-mode SMs, including the Indirect-MOV procedure and BDI
  cache compression.
"""

from repro.core.address_separation import AddressSeparator
from repro.core.bloom_filter import BloomFilter
from repro.core.compression import (
    BDICompressor,
    CompressionLevel,
    CompressionLevelAllocator,
)
from repro.core.config import ExtendedLLCTiming, MorpheusConfig
from repro.core.controller import MorpheusController, PredictorMode
from repro.core.extended_llc import ExtendedLLC, ExtendedLLCKernel
from repro.core.hit_miss_predictor import HitMissPredictor
from repro.core.indirect_mov import IndirectMovImplementation, IndirectMovModel
from repro.core.l1_store import L1Store
from repro.core.query_logic import (
    ExtendedLLCQueryLogic,
    RequestQueue,
    WarpStatusTable,
)
from repro.core.register_file_store import RegisterFileStore
from repro.core.shared_memory_store import SharedMemoryStore

__all__ = [
    "AddressSeparator",
    "BDICompressor",
    "BloomFilter",
    "CompressionLevel",
    "CompressionLevelAllocator",
    "ExtendedLLC",
    "ExtendedLLCKernel",
    "ExtendedLLCQueryLogic",
    "ExtendedLLCTiming",
    "HitMissPredictor",
    "IndirectMovImplementation",
    "IndirectMovModel",
    "L1Store",
    "MorpheusConfig",
    "MorpheusController",
    "PredictorMode",
    "RegisterFileStore",
    "RequestQueue",
    "SharedMemoryStore",
    "WarpStatusTable",
]
