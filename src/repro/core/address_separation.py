"""Static address separation between the conventional and extended LLC (§4.1.1).

A Morpheus-enabled GPU has two LLCs, so every cache block must belong to
exactly one of them.  Morpheus divides the (partition-local) address space
*statically* into two regions whose sizes are proportional to the capacities
of the conventional slice and of the extended LLC served by that partition.
The same principle is reused *inside* the extended LLC kernel to split blocks
between the register file, shared memory and L1 stores — proportionally to
each store's capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class SeparationDecision:
    """Outcome of routing one address."""

    target: str            # "conventional" or "extended"
    extended_set: int = -1  # extended LLC set index when target == "extended"
    cache_sm_slot: int = -1  # which cache-mode SM slot owns that set


class AddressSeparator:
    """Routes partition-local block addresses between the two LLCs.

    The decision is made on the block's *partition-local* index (the
    interleaving across partitions happened upstream), using a modulo split
    over a fixed period so both LLCs see a representative sample of the
    address space:

    * ``period = conventional_share + extended_share`` (in block units),
    * blocks whose ``local_index % period < conventional_share`` go to the
      conventional slice, the rest to the extended LLC.

    Args:
        conventional_capacity_bytes: Capacity of the partition's conventional
            LLC slice.
        extended_capacity_bytes: Extended LLC capacity served through this
            partition (0 disables the extended LLC).
        block_size: Cache block size in bytes.
        num_extended_sets: Extended LLC sets behind this partition; used to
            map an extended-bound block to its set and owning cache-SM slot.
        granularity_blocks: Size of one share unit, in blocks.  The default
            (64 blocks = 8 KiB) keeps the interleaving fine enough that both
            LLCs observe every access pattern.
    """

    def __init__(
        self,
        conventional_capacity_bytes: int,
        extended_capacity_bytes: int,
        block_size: int = 128,
        num_extended_sets: int = 256,
        granularity_blocks: int = 64,
    ) -> None:
        if conventional_capacity_bytes <= 0:
            raise ValueError("conventional_capacity_bytes must be positive")
        if extended_capacity_bytes < 0:
            raise ValueError("extended_capacity_bytes must be non-negative")
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if num_extended_sets <= 0:
            raise ValueError("num_extended_sets must be positive")
        if granularity_blocks <= 0:
            raise ValueError("granularity_blocks must be positive")

        self.conventional_capacity_bytes = conventional_capacity_bytes
        self.extended_capacity_bytes = extended_capacity_bytes
        self.block_size = block_size
        self.num_extended_sets = num_extended_sets
        self.granularity_blocks = granularity_blocks

        total = conventional_capacity_bytes + extended_capacity_bytes
        # Shares in granularity units, at least 1 unit for the conventional LLC.
        self._conventional_units = max(
            1, round(self.conventional_capacity_bytes / total * self._total_units(total))
        )
        self._extended_units = self._total_units(total) - self._conventional_units
        if extended_capacity_bytes == 0:
            self._conventional_units = 1
            self._extended_units = 0

    def _total_units(self, total_bytes: int) -> int:
        """Number of granularity units in the interleaving period (>= 2)."""
        # A period of 16 units gives ~6 % resolution on the capacity split.
        return 16

    # -- public API -----------------------------------------------------------

    @property
    def extended_fraction(self) -> float:
        """Fraction of the address space routed to the extended LLC."""
        period = self._conventional_units + self._extended_units
        return self._extended_units / period if period else 0.0

    def route(self, address: int) -> SeparationDecision:
        """Decide which LLC serves the block containing ``address``."""
        if address < 0:
            raise ValueError("address must be non-negative")
        if self._extended_units == 0:
            return SeparationDecision(target="conventional")

        block_index = address // self.block_size
        unit_index = block_index // self.granularity_blocks
        period = self._conventional_units + self._extended_units
        position = unit_index % period
        if position < self._conventional_units:
            return SeparationDecision(target="conventional")

        extended_set = block_index % self.num_extended_sets
        return SeparationDecision(
            target="extended",
            extended_set=extended_set,
            cache_sm_slot=extended_set,
        )

    def is_extended(self, address: int) -> bool:
        """Convenience wrapper: True when ``address`` belongs to the extended LLC."""
        return self.route(address).target == "extended"


def proportional_split(
    capacities: Sequence[Tuple[str, int]], address: int, block_size: int = 128
) -> str:
    """Split an address across named regions proportionally to their capacities.

    This is the intra-SM analogue of :class:`AddressSeparator` used by the
    extended LLC kernel to pick the register file, shared memory or L1 store
    for a given block (§4.2, task 3).

    Args:
        capacities: ``(name, capacity_bytes)`` pairs; zero-capacity regions
            never receive blocks.
        address: Byte address of the block.
        block_size: Cache block size.

    Returns:
        The name of the region responsible for the block.
    """
    live = [(name, cap) for name, cap in capacities if cap > 0]
    if not live:
        raise ValueError("at least one region must have non-zero capacity")
    total = sum(cap for _, cap in live)
    block_index = address // block_size
    # Use 64 slots of the period for reasonable resolution.
    period = 64
    position = block_index % period
    cursor = 0
    for name, cap in live:
        share = max(1, round(cap / total * period))
        cursor += share
        if position < cursor:
            return name
    return live[-1][0]
