"""Bloom filters used by the Morpheus hit/miss predictor.

A Bloom filter answers set-membership queries with no false negatives and a
tunable false-positive rate.  The paper sizes each filter at 32 bytes
(256 bits) per extended LLC set and uses two filters per set, cleared
alternately (§4.1.2).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List


class BloomFilter:
    """A standard (non-counting) Bloom filter over integer keys.

    Args:
        size_bytes: Bit-array size in bytes (32 in the paper).
        num_hashes: Number of hash functions.
    """

    def __init__(self, size_bytes: int = 32, num_hashes: int = 4) -> None:
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.size_bytes = size_bytes
        self.num_bits = size_bytes * 8
        self.num_hashes = num_hashes
        self._bits = 0
        self._insertions = 0

    def _hash_positions(self, key: int) -> List[int]:
        """Bit positions for ``key`` using double hashing over a blake2 digest."""
        digest = hashlib.blake2b(
            int(key).to_bytes(16, "little", signed=False), digest_size=16
        ).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return [(h1 + i * h2) % self.num_bits for i in range(self.num_hashes)]

    def insert(self, key: int) -> None:
        """Insert ``key`` into the filter."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        for pos in self._hash_positions(key):
            self._bits |= 1 << pos
        self._insertions += 1

    def query(self, key: int) -> bool:
        """Return True if ``key`` *may* be in the set (never a false negative)."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        return all(self._bits >> pos & 1 for pos in self._hash_positions(key))

    def insert_all(self, keys: Iterable[int]) -> None:
        """Insert every key in ``keys``."""
        for key in keys:
            self.insert(key)

    def clear(self) -> None:
        """Reset the filter to empty."""
        self._bits = 0
        self._insertions = 0

    @property
    def insertions(self) -> int:
        """Number of insert operations since the last clear."""
        return self._insertions

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits currently set (a proxy for the false-positive rate)."""
        return bin(self._bits).count("1") / self.num_bits

    def estimated_false_positive_rate(self) -> float:
        """Estimated false-positive probability at the current fill level."""
        return self.fill_ratio ** self.num_hashes

    def __contains__(self, key: int) -> bool:
        return self.query(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(size_bytes={self.size_bytes}, num_hashes={self.num_hashes}, "
            f"fill={self.fill_ratio:.3f})"
        )
