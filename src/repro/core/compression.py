"""Base-Delta-Immediate (BDI) cache compression for the extended LLC (§4.3.1).

The extended LLC kernel mediates every register-file/shared-memory insertion,
so it can transparently store *compressed* blocks and fit more of them into
each extended LLC set.  The paper defines three compression levels for a
128-byte block:

* **high** — compressible 4x, stored in 32 bytes,
* **low** — compressible 2x, stored in 64 bytes,
* **uncompressed** — stored as-is in 128 bytes.

Blocks are compressed with BDI: the block is split into fixed segments, one
segment becomes the base, and only the deltas of the other segments are
stored.  Because the achievable level is data dependent and unknown ahead of
time, the kernel re-balances the registers assigned to each level every
``epoch`` cycles from observed level counts
(:class:`CompressionLevelAllocator`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class CompressionLevel(enum.Enum):
    """Compression level of one extended LLC block."""

    HIGH = "high"            # 4x -> 32 bytes
    LOW = "low"              # 2x -> 64 bytes
    UNCOMPRESSED = "uncompressed"

    @property
    def compressed_size(self) -> int:
        """Stored size in bytes of a 128-byte block at this level."""
        return {CompressionLevel.HIGH: 32, CompressionLevel.LOW: 64, CompressionLevel.UNCOMPRESSED: 128}[self]

    @property
    def ratio(self) -> float:
        """Compression ratio (original / stored)."""
        return 128 / self.compressed_size


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one block."""

    level: CompressionLevel
    stored_bytes: int
    base: int = 0
    delta_bits: int = 0


class BDICompressor:
    """Base-Delta-Immediate compression over 4-byte segments of a 128-byte block.

    The functional model works on a block expressed as a list of 32 unsigned
    32-bit segment values.  The first segment is the base; the block is
    classified by the number of bits needed to represent the largest absolute
    delta from the base:

    * deltas fit in 1 byte  -> HIGH (4x),
    * deltas fit in 2 bytes -> LOW (2x),
    * otherwise             -> UNCOMPRESSED.
    """

    SEGMENT_BYTES = 4
    BLOCK_BYTES = 128
    SEGMENTS_PER_BLOCK = BLOCK_BYTES // SEGMENT_BYTES

    def classify(self, segments: Sequence[int]) -> CompressionResult:
        """Classify a block given as 32 segment values."""
        if len(segments) != self.SEGMENTS_PER_BLOCK:
            raise ValueError(
                f"a block has {self.SEGMENTS_PER_BLOCK} segments, got {len(segments)}"
            )
        for value in segments:
            if not 0 <= value < 2 ** 32:
                raise ValueError("segment values must be unsigned 32-bit integers")
        base = segments[0]
        max_delta = max(abs(value - base) for value in segments)
        if max_delta < 2 ** 7:
            level = CompressionLevel.HIGH
            delta_bits = 8
        elif max_delta < 2 ** 15:
            level = CompressionLevel.LOW
            delta_bits = 16
        else:
            level = CompressionLevel.UNCOMPRESSED
            delta_bits = 32
        return CompressionResult(
            level=level, stored_bytes=level.compressed_size, base=base, delta_bits=delta_bits
        )

    def compress(self, segments: Sequence[int]) -> Tuple[CompressionResult, List[int]]:
        """Compress a block, returning the classification and the stored deltas."""
        result = self.classify(segments)
        if result.level == CompressionLevel.UNCOMPRESSED:
            return result, list(segments)
        deltas = [value - result.base for value in segments]
        return result, deltas

    def decompress(self, result: CompressionResult, payload: Sequence[int]) -> List[int]:
        """Reconstruct the original 32 segments from a compressed payload."""
        if result.level == CompressionLevel.UNCOMPRESSED:
            return list(payload)
        return [result.base + delta for delta in payload]


@dataclass
class LevelCounts:
    """Observed number of blocks at each compression level during an epoch."""

    high: int = 0
    low: int = 0
    uncompressed: int = 0

    @property
    def total(self) -> int:
        """Total classified blocks."""
        return self.high + self.low + self.uncompressed

    def record(self, level: CompressionLevel) -> None:
        """Count one block at ``level``."""
        if level == CompressionLevel.HIGH:
            self.high += 1
        elif level == CompressionLevel.LOW:
            self.low += 1
        else:
            self.uncompressed += 1


class CompressionLevelAllocator:
    """Adapts the registers assigned to each compression level every epoch.

    The extended LLC kernel starts with every data register assigned to the
    uncompressed level; at the end of each epoch (10,000 cycles in the paper)
    it re-partitions registers proportionally to the number of blocks observed
    at each level, which determines the *effective capacity gain* of the
    compressed extended LLC.
    """

    def __init__(self, total_registers: int = 32, epoch_cycles: int = 10_000) -> None:
        if total_registers <= 0:
            raise ValueError("total_registers must be positive")
        if epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        self.total_registers = total_registers
        self.epoch_cycles = epoch_cycles
        self.allocation: Dict[CompressionLevel, int] = {
            CompressionLevel.HIGH: 0,
            CompressionLevel.LOW: 0,
            CompressionLevel.UNCOMPRESSED: total_registers,
        }
        self._epoch_counts = LevelCounts()
        self._cycles_into_epoch = 0
        self.epochs_completed = 0

    def observe(self, level: CompressionLevel, cycles: int = 1) -> None:
        """Record a block classification and advance epoch time by ``cycles``."""
        self._epoch_counts.record(level)
        self.advance(cycles)

    def advance(self, cycles: int) -> None:
        """Advance epoch time, re-allocating registers at epoch boundaries."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._cycles_into_epoch += cycles
        while self._cycles_into_epoch >= self.epoch_cycles:
            self._cycles_into_epoch -= self.epoch_cycles
            self._rebalance()

    def _rebalance(self) -> None:
        counts = self._epoch_counts
        total = counts.total
        if total == 0:
            self.epochs_completed += 1
            return
        high = round(self.total_registers * counts.high / total)
        low = round(self.total_registers * counts.low / total)
        high = min(high, self.total_registers)
        low = min(low, self.total_registers - high)
        uncompressed = self.total_registers - high - low
        self.allocation = {
            CompressionLevel.HIGH: high,
            CompressionLevel.LOW: low,
            CompressionLevel.UNCOMPRESSED: uncompressed,
        }
        self._epoch_counts = LevelCounts()
        self.epochs_completed += 1

    def effective_blocks_per_register_group(self) -> float:
        """Average number of logical blocks stored per physical 128-byte register slot."""
        alloc = self.allocation
        total = self.total_registers
        if total == 0:
            return 1.0
        return (
            alloc[CompressionLevel.HIGH] * 4
            + alloc[CompressionLevel.LOW] * 2
            + alloc[CompressionLevel.UNCOMPRESSED] * 1
        ) / total

    def capacity_gain(self) -> float:
        """Effective capacity multiplier from compression (>= 1.0)."""
        return max(1.0, self.effective_blocks_per_register_group())


def effective_capacity_factor(
    high_fraction: float, low_fraction: float
) -> float:
    """Effective capacity multiplier for a workload's block compressibility mix.

    Args:
        high_fraction: Fraction of blocks compressible 4x.
        low_fraction: Fraction compressible 2x (the remainder is uncompressed).

    Returns:
        The steady-state capacity multiplier the extended LLC achieves once
        the level allocator has converged for this mix.
    """
    if not 0.0 <= high_fraction <= 1.0 or not 0.0 <= low_fraction <= 1.0:
        raise ValueError("fractions must be in [0, 1]")
    if high_fraction + low_fraction > 1.0 + 1e-9:
        raise ValueError("high_fraction + low_fraction must not exceed 1")
    uncompressed = max(0.0, 1.0 - high_fraction - low_fraction)
    # Average stored bytes per 128-byte logical block.
    avg_stored = high_fraction * 32 + low_fraction * 64 + uncompressed * 128
    return 128.0 / avg_stored
