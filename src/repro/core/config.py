"""Morpheus configuration: extended-LLC timing, layout and controller sizing.

Numbers come from the paper:

* §5 characterization — per-unit access latencies (register file 2 ns, shared
  memory 25 ns, L1 34 ns), extended LLC access latency >= 300 ns dominated by
  the NoC round trip, extended LLC via RF+L1 combined configuration of 32 RF
  warps + 16 L1 warps giving 328 KiB capacity, 185 ns average latency,
  34 GB/s bandwidth and 61 pJ/B.
* §4.1.2 / Fig. 5 — conventional LLC miss 608 ns, extended LLC miss 773 ns;
  predicted misses are as fast as conventional misses.
* §4.1.2 cost paragraph — two 32-byte Bloom filters per extended LLC set,
  up to 256 extended LLC sets per partition, 16 KiB per partition.
* §4.1.3 / §7.5 — 5 KiB query logic storage per partition, 21 KiB total
  overhead per partition (~4 % of the partition's conventional slice).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KIB = 1024


@dataclass(frozen=True)
class ExtendedLLCTiming:
    """Latency/bandwidth primitives of the extended LLC kernel (in nanoseconds / GB/s).

    These are converted to core cycles by the controller using the GPU clock.
    """

    register_file_access_ns: float = 2.0
    shared_memory_access_ns: float = 25.0
    l1_access_ns: float = 34.0
    noc_one_way_ns: float = 42.0
    tag_lookup_ns: float = 30.0
    kernel_dispatch_ns: float = 55.0
    warp_scheduling_slot_ns: float = 2.2
    indirect_mov_software_ns: float = 18.0
    indirect_mov_hardware_ns: float = 4.0
    compression_overhead_ns: float = 12.0
    decompression_overhead_ns: float = 10.0
    register_file_bandwidth_gbps: float = 1000.0
    shared_memory_bandwidth_gbps: float = 170.0
    l1_bandwidth_gbps: float = 170.0
    per_sm_extended_bandwidth_gbps: float = 34.0

    def access_latency_ns(
        self,
        store: str,
        indirect_mov_hardware: bool = False,
        compressed: bool = False,
    ) -> float:
        """One extended-LLC data access serviced by ``store`` on a cache-mode SM.

        The latency excludes the NoC round trip (added by the controller) and
        includes kernel dispatch, tag lookup, the data-array access, the
        Indirect-MOV procedure (register file and shared memory stores only)
        and decompression if the block is compressed.
        """
        base = self.kernel_dispatch_ns + self.tag_lookup_ns
        if store == "register_file":
            base += self.register_file_access_ns
            base += (
                self.indirect_mov_hardware_ns
                if indirect_mov_hardware
                else self.indirect_mov_software_ns
            )
        elif store == "shared_memory":
            base += self.shared_memory_access_ns
            base += (
                self.indirect_mov_hardware_ns
                if indirect_mov_hardware
                else self.indirect_mov_software_ns
            )
        elif store == "l1":
            base += self.l1_access_ns
        else:
            raise ValueError(f"unknown store {store!r}")
        if compressed:
            base += self.decompression_overhead_ns
        return base


@dataclass(frozen=True)
class MorpheusConfig:
    """Configuration of the Morpheus controller and extended LLC kernel.

    Attributes:
        enable_compression: Use BDI compression in the extended LLC kernel
            (the Morpheus-Compression / Morpheus-ALL variants).
        enable_indirect_mov_isa: Use the native Indirect-MOV instruction
            (the Morpheus-Indirect-MOV / Morpheus-ALL variants).
        predictor: Hit/miss predictor flavour (``"bloom"``, ``"none"``,
            ``"perfect"``); Fig. 13 compares these.
        rf_warps: Warps of the extended LLC kernel assigned to the register
            file store (32 in the paper's combined configuration).
        l1_warps: Warps assigned to the L1 store (16 in the paper).
        shared_memory_warps: Warps assigned to the shared-memory store
            (0 by default; L1 and shared memory are unified on the RTX 3080).
        extended_llc_associativity: Blocks per extended LLC set (32).
        block_size: Cache block size in bytes (128).
        bloom_filter_bytes: Size of each Bloom filter (32 B).
        bloom_filters_per_set: Two alternating filters per set.
        max_extended_sets_per_partition: Warp status table rows (256).
        query_logic_storage_bytes: Request queue + warp status table +
            read/write data buffers per partition (5 KiB).
        max_cache_mode_fraction: At most 75 % of SMs may be in cache mode.
        registers_reserved_per_warp: Auxiliary registers reserved by the
            extended LLC kernel per warp.
        timing: Latency/bandwidth primitives.
    """

    enable_compression: bool = False
    enable_indirect_mov_isa: bool = False
    predictor: str = "bloom"
    rf_warps: int = 32
    l1_warps: int = 16
    shared_memory_warps: int = 0
    extended_llc_associativity: int = 32
    block_size: int = 128
    bloom_filter_bytes: int = 32
    bloom_filters_per_set: int = 2
    max_extended_sets_per_partition: int = 256
    query_logic_storage_bytes: int = 5 * KIB
    max_cache_mode_fraction: float = 0.75
    registers_reserved_per_warp: int = 8
    compression_epoch_cycles: int = 10_000
    timing: ExtendedLLCTiming = field(default_factory=ExtendedLLCTiming)

    def __post_init__(self) -> None:
        if self.predictor not in ("bloom", "none", "perfect"):
            raise ValueError(f"unknown predictor {self.predictor!r}")
        if self.rf_warps < 0 or self.l1_warps < 0 or self.shared_memory_warps < 0:
            raise ValueError("warp allocations must be non-negative")
        if self.rf_warps + self.l1_warps + self.shared_memory_warps == 0:
            raise ValueError("the extended LLC kernel needs at least one warp")
        if not 0.0 < self.max_cache_mode_fraction <= 1.0:
            raise ValueError("max_cache_mode_fraction must be in (0, 1]")
        if self.extended_llc_associativity <= 0:
            raise ValueError("extended_llc_associativity must be positive")
        if self.block_size <= 0 or self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a positive power of two")

    # -- controller storage overheads (§7.5) ----------------------------------

    @property
    def total_warps(self) -> int:
        """Warps used by the extended LLC kernel per cache-mode SM."""
        return self.rf_warps + self.l1_warps + self.shared_memory_warps

    @property
    def bloom_filter_storage_bytes_per_partition(self) -> int:
        """Bloom filter storage per LLC partition (16 KiB in the paper)."""
        return (
            self.bloom_filter_bytes
            * self.bloom_filters_per_set
            * self.max_extended_sets_per_partition
        )

    @property
    def controller_storage_bytes_per_partition(self) -> int:
        """Total Morpheus controller storage per LLC partition (21 KiB)."""
        return self.bloom_filter_storage_bytes_per_partition + self.query_logic_storage_bytes

    # -- variant helpers -------------------------------------------------------

    def with_optimizations(
        self, compression: bool | None = None, indirect_mov: bool | None = None
    ) -> "MorpheusConfig":
        """Return a copy toggling the two optimizations (builds the four variants)."""
        return replace(
            self,
            enable_compression=self.enable_compression if compression is None else compression,
            enable_indirect_mov_isa=(
                self.enable_indirect_mov_isa if indirect_mov is None else indirect_mov
            ),
        )

    def with_predictor(self, predictor: str) -> "MorpheusConfig":
        """Return a copy using a different hit/miss predictor flavour."""
        return replace(self, predictor=predictor)


BASIC_MORPHEUS = MorpheusConfig()
"""Morpheus-Basic: no compression, software Indirect-MOV, Bloom predictor."""

MORPHEUS_ALL = MorpheusConfig(enable_compression=True, enable_indirect_mov_isa=True)
"""Morpheus-ALL: both optimizations enabled."""
