"""The Morpheus controller (§4.1): one hardware unit per LLC partition.

The controller performs the three tasks the paper assigns it:

1. **Address separation** between the conventional LLC slice and the extended
   LLC (:class:`~repro.core.address_separation.AddressSeparator`).
2. **Communication** with the extended LLC: outstanding requests are tracked
   in the :class:`~repro.core.query_logic.ExtendedLLCQueryLogic` (request
   queue, warp status table, read/write data buffers), and extended-LLC
   traffic pays an extra interconnect round trip to reach the owning
   cache-mode SM.
3. **Hit/miss prediction** with the dual Bloom filter scheme
   (:class:`~repro.core.hit_miss_predictor.HitMissPredictor`), so that
   predicted extended-LLC misses go straight to DRAM and cost no more than a
   conventional LLC miss (Fig. 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.address_separation import AddressSeparator
from repro.core.config import MorpheusConfig
from repro.core.extended_llc import ExtendedLLC
from repro.core.hit_miss_predictor import HitMissPredictor
from repro.core.query_logic import ExtendedLLCQueryLogic
from repro.memory.llc import LLCPartition
from repro.memory.request import MemoryRequest

DramAccessFn = Callable[[MemoryRequest, float], float]
NocRoundTripFn = Callable[[int, float], float]


class PredictorMode(enum.Enum):
    """Hit/miss predictor flavour used by the controller (Fig. 13 ablation)."""

    BLOOM = "bloom"
    NONE = "none"
    PERFECT = "perfect"


@dataclass
class ControllerStats:
    """Per-controller (per-partition) statistics."""

    requests: int = 0
    conventional_requests: int = 0
    extended_requests: int = 0
    conventional_hits: int = 0
    extended_hits: int = 0
    extended_misses: int = 0
    predicted_misses: int = 0
    false_positive_trips: int = 0
    dram_accesses: int = 0
    writebacks: int = 0

    @property
    def extended_hit_rate(self) -> float:
        """Hit rate of extended-LLC-bound requests."""
        if self.extended_requests == 0:
            return 0.0
        return self.extended_hits / self.extended_requests

    @property
    def llc_hits(self) -> int:
        """Hits in either LLC (conventional or extended)."""
        return self.conventional_hits + self.extended_hits

    @property
    def llc_hit_rate(self) -> float:
        """Overall LLC hit rate observed by this controller."""
        if self.requests == 0:
            return 0.0
        return self.llc_hits / self.requests


@dataclass
class AccessOutcome:
    """Result of one LLC request processed by the Morpheus controller."""

    hit_level: str                      # "llc", "extended_llc" or "dram"
    latency_cycles: float
    served_by_extended_llc: bool = False
    predicted_miss: bool = False
    false_positive: bool = False
    writebacks: List[int] = field(default_factory=list)
    store_kind: str = ""


class MorpheusController:
    """The per-partition Morpheus controller.

    Args:
        partition: The conventional LLC slice colocated with this controller.
        extended_llc: The aggregate extended LLC (``None`` or an empty one
            disables Morpheus and the controller degenerates to a plain LLC
            partition front-end).
        config: Morpheus configuration.
        core_clock_ghz: GPU core clock, used to convert the timing model's
            nanoseconds into cycles.
        dram_access: Callback ``(request, at_cycle) -> latency_cycles`` used
            to fetch blocks from DRAM.  A constant-latency default is used
            when the simulator does not inject one.
        noc_round_trip: Callback ``(size_bytes, at_cycle) -> latency_cycles``
            for the extra controller <-> cache-mode-SM round trip.  Defaults
            to twice the timing model's one-way latency.
    """

    def __init__(
        self,
        partition: LLCPartition,
        extended_llc: Optional[ExtendedLLC],
        config: MorpheusConfig | None = None,
        core_clock_ghz: float = 1.44,
        dram_access: Optional[DramAccessFn] = None,
        noc_round_trip: Optional[NocRoundTripFn] = None,
    ) -> None:
        self.partition = partition
        self.extended_llc = extended_llc if extended_llc is not None and extended_llc.enabled else None
        self.config = config or MorpheusConfig()
        self.core_clock_ghz = core_clock_ghz
        self.predictor_mode = PredictorMode(self.config.predictor)

        extended_capacity = (
            int(self.extended_llc.effective_capacity_bytes()) if self.extended_llc else 0
        )
        num_partitions = self.partition.config.num_partitions
        per_partition_extended = extended_capacity // num_partitions if num_partitions else 0
        self.separator = AddressSeparator(
            conventional_capacity_bytes=self.partition.cache.capacity_bytes,
            extended_capacity_bytes=per_partition_extended,
            block_size=self.config.block_size,
            num_extended_sets=max(1, self.extended_sets_per_partition()),
        )
        self.predictor = HitMissPredictor(
            num_sets=max(1, self.extended_sets_per_partition()),
            associativity=self.config.extended_llc_associativity,
            filter_bytes=self.config.bloom_filter_bytes,
        )
        self.query_logic = ExtendedLLCQueryLogic(
            num_sets=max(1, self.extended_sets_per_partition()),
            block_size=self.config.block_size,
        )
        self._dram_access = dram_access
        self._noc_round_trip = noc_round_trip
        self.stats = ControllerStats()

    # -- helpers --------------------------------------------------------------

    def extended_sets_per_partition(self) -> int:
        """Extended LLC sets this partition's controller is responsible for."""
        if not self.extended_llc:
            return 1
        total = self.extended_llc.total_sets
        per_partition = total // self.partition.config.num_partitions
        return min(self.config.max_extended_sets_per_partition, max(1, per_partition))

    def _ns_to_cycles(self, ns: float) -> float:
        return ns * self.core_clock_ghz

    def _default_dram_latency(self, request: MemoryRequest, at_cycle: float) -> float:
        # ~600 ns at the core clock; the simulator normally injects the real
        # DRAM model which adds queueing on top.
        return 600.0 * self.core_clock_ghz

    def _default_noc_round_trip(self, size_bytes: int, at_cycle: float) -> float:
        return self._ns_to_cycles(2.0 * self.config.timing.noc_one_way_ns)

    def _dram(self, request: MemoryRequest, at_cycle: float) -> float:
        fn = self._dram_access or self._default_dram_latency
        self.stats.dram_accesses += 1
        return fn(request, at_cycle)

    def _noc(self, size_bytes: int, at_cycle: float) -> float:
        fn = self._noc_round_trip or self._default_noc_round_trip
        return fn(size_bytes, at_cycle)

    # -- the LLC lookup procedure (Figure 3 / Figure 6a) ------------------------------

    def access(self, request: MemoryRequest, now_cycle: float = 0.0) -> AccessOutcome:
        """Process one LLC request arriving at this partition."""
        self.stats.requests += 1
        decision = self.separator.route(request.address)

        if decision.target == "conventional" or not self.extended_llc:
            return self._access_conventional(request, now_cycle)
        return self._access_extended(request, now_cycle, decision.extended_set)

    def _access_conventional(self, request: MemoryRequest, now_cycle: float) -> AccessOutcome:
        self.stats.conventional_requests += 1
        hit, latency, writeback = self.partition.access(request, now_cycle)
        writebacks = [writeback] if writeback is not None else []
        if writebacks:
            self.stats.writebacks += len(writebacks)
        if hit:
            self.stats.conventional_hits += 1
            return AccessOutcome(
                hit_level="llc", latency_cycles=latency, writebacks=writebacks
            )
        dram_latency = self._dram(request, now_cycle + latency)
        return AccessOutcome(
            hit_level="dram",
            latency_cycles=latency + dram_latency,
            writebacks=writebacks,
        )

    def _predict(self, set_index: int, global_set: int, tag: int, address: int) -> bool:
        """Predict whether the extended LLC holds ``address`` (True = hit)."""
        if self.predictor_mode == PredictorMode.NONE:
            return True  # always forward: equivalent to predicting a hit
        if self.predictor_mode == PredictorMode.PERFECT:
            assert self.extended_llc is not None
            return self.extended_llc.resident(global_set, address)
        return self.predictor.predict(set_index, tag)

    def _global_set(self, set_index: int) -> int:
        """Map this partition's local extended set index onto the global extended LLC.

        Each partition's controller owns a disjoint slice of the extended LLC
        sets so that the full extended capacity is used across partitions.
        """
        return self.partition.partition_id * self.extended_sets_per_partition() + set_index

    def _access_extended(
        self, request: MemoryRequest, now_cycle: float, set_index: int
    ) -> AccessOutcome:
        assert self.extended_llc is not None
        self.stats.extended_requests += 1
        tag = request.address // self.config.block_size
        global_set = self._global_set(set_index)

        # The request is buffered by the query logic; the controller's own
        # pipeline latency is folded into the timing model's dispatch term.
        self.query_logic.admit(request)

        predicted_hit = self._predict(set_index, global_set, tag, request.address)
        actual_resident = self.extended_llc.resident(global_set, request.address)
        if self.predictor_mode == PredictorMode.BLOOM:
            self.predictor.record_outcome(predicted_hit, actual_resident)

        if not predicted_hit:
            # Predicted miss: go straight to DRAM (as fast as a conventional miss),
            # then install the block in the extended LLC.
            self.stats.predicted_misses += 1
            self.stats.extended_misses += 1
            self.query_logic.request_queue.dequeue()
            dram_latency = self._dram(request, now_cycle)
            fill = self.extended_llc.fill(global_set, request.address, dirty=request.is_write)
            self.predictor.record_access(set_index, tag)
            writebacks = list(fill.writebacks)
            if writebacks:
                self.stats.writebacks += len(writebacks)
            latency = self.partition.config.hit_latency_cycles * 0.25 + dram_latency
            return AccessOutcome(
                hit_level="dram",
                latency_cycles=latency,
                predicted_miss=True,
                writebacks=writebacks,
                store_kind=fill.store_kind,
            )

        # Predicted hit: pay the NoC round trip to the cache-mode SM and run
        # the extended LLC kernel's lookup there.
        dispatched = self.query_logic.dispatch(set_index % self.query_logic.warp_status.num_rows)
        noc_latency = self._noc(request.size_bytes, now_cycle)
        result = self.extended_llc.access(global_set, request.address, is_write=request.is_write)
        service_latency = self._ns_to_cycles(result.service_latency_ns)
        if dispatched is not None:
            self.query_logic.complete(set_index % self.query_logic.warp_status.num_rows, result.hit)

        if result.hit:
            self.stats.extended_hits += 1
            self.predictor.record_access(set_index, tag)
            return AccessOutcome(
                hit_level="extended_llc",
                latency_cycles=noc_latency + service_latency,
                served_by_extended_llc=True,
                store_kind=result.store_kind,
            )

        # False positive (or no-prediction miss): the round trip was wasted;
        # fetch from DRAM and fill the extended LLC.
        self.stats.extended_misses += 1
        if self.predictor_mode != PredictorMode.PERFECT:
            self.stats.false_positive_trips += 1
        dram_latency = self._dram(request, now_cycle + noc_latency + service_latency)
        fill = self.extended_llc.fill(global_set, request.address, dirty=request.is_write)
        self.predictor.record_access(set_index, tag)
        writebacks = list(fill.writebacks)
        if writebacks:
            self.stats.writebacks += len(writebacks)
        return AccessOutcome(
            hit_level="dram",
            latency_cycles=noc_latency + service_latency + dram_latency,
            false_positive=True,
            writebacks=writebacks,
            store_kind=fill.store_kind,
        )

    # -- overhead reporting (§7.5) ---------------------------------------------------

    def storage_overhead_bytes(self) -> int:
        """On-chip storage added by this controller (Bloom filters + query logic)."""
        return (
            self.config.bloom_filter_storage_bytes_per_partition
            + self.config.query_logic_storage_bytes
        )

    def reset(self) -> None:
        """Reset predictor, query logic and statistics (LLC contents preserved)."""
        self.predictor.reset()
        self.query_logic.reset()
        self.stats = ControllerStats()
