"""The extended LLC: software-managed cache capacity on cache-mode SMs (§4.2).

Two classes model the software half of Morpheus:

* :class:`ExtendedLLCKernel` — one instance of the helper kernel running on a
  single cache-mode SM.  It owns the SM's register-file, L1 and (optionally)
  shared-memory stores, routes blocks between them with the same static
  address-separation principle as the Morpheus controller (proportional to
  each store's capacity), performs tag lookups, LRU fills/evictions,
  Indirect-MOV data accesses and BDI compression.
* :class:`ExtendedLLC` — the aggregate extended LLC formed by all cache-mode
  SMs.  It maps a global extended LLC set index onto the owning SM and that
  SM's local warp/set, and exposes aggregate capacity to the address
  separator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.address_separation import proportional_split
from repro.core.compression import CompressionLevel, effective_capacity_factor
from repro.core.config import MorpheusConfig
from repro.core.indirect_mov import IndirectMovImplementation, IndirectMovModel
from repro.core.l1_store import L1Store
from repro.core.register_file_store import RegisterFileStore
from repro.core.shared_memory_store import SharedMemoryStore
from repro.core.store_base import ExtendedLLCStore


@dataclass(frozen=True)
class Compressibility:
    """A workload's block compressibility mix (fractions of 4x / 2x blocks)."""

    high_fraction: float = 0.0
    low_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.high_fraction <= 1.0 or not 0.0 <= self.low_fraction <= 1.0:
            raise ValueError("fractions must be in [0, 1]")
        if self.high_fraction + self.low_fraction > 1.0 + 1e-9:
            raise ValueError("high_fraction + low_fraction must not exceed 1")

    def capacity_factor(self) -> float:
        """Effective extended-LLC capacity multiplier under BDI compression."""
        return effective_capacity_factor(self.high_fraction, self.low_fraction)

    def level_for_tag(self, tag: int) -> CompressionLevel:
        """Deterministic per-block compression level consistent with the mix."""
        digest = hashlib.blake2b(int(tag).to_bytes(16, "little"), digest_size=8).digest()
        draw = int.from_bytes(digest, "little") / 2 ** 64
        if draw < self.high_fraction:
            return CompressionLevel.HIGH
        if draw < self.high_fraction + self.low_fraction:
            return CompressionLevel.LOW
        return CompressionLevel.UNCOMPRESSED


@dataclass
class ExtendedAccessResult:
    """Outcome of one extended LLC access on a cache-mode SM."""

    hit: bool
    store_kind: str
    service_latency_ns: float
    writebacks: List[int] = field(default_factory=list)
    compression: CompressionLevel = CompressionLevel.UNCOMPRESSED


class ExtendedLLCKernel:
    """The extended LLC kernel instance running on one cache-mode SM.

    Args:
        sm_id: The cache-mode SM hosting this kernel instance.
        config: Morpheus configuration (warp split, compression, ISA option).
        register_file_bytes: Register file capacity of the SM.
        l1_shared_bytes: Unified L1/shared-memory capacity of the SM.
        compressibility: The running workload's block compressibility mix
            (drives BDI levels when compression is enabled).
    """

    def __init__(
        self,
        sm_id: int,
        config: MorpheusConfig,
        register_file_bytes: int = 256 * 1024,
        l1_shared_bytes: int = 128 * 1024,
        compressibility: Compressibility | None = None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.compressibility = compressibility or Compressibility()
        self.indirect_mov = IndirectMovModel(
            num_data_registers=config.extended_llc_associativity,
            software_latency_ns=config.timing.indirect_mov_software_ns,
            hardware_latency_ns=config.timing.indirect_mov_hardware_ns,
        )

        self.register_file_store = RegisterFileStore(
            num_warps=max(1, config.rf_warps),
            register_file_bytes=register_file_bytes,
            aux_registers_per_warp=config.registers_reserved_per_warp,
            compression_enabled=config.enable_compression,
            block_size=config.block_size,
        ) if config.rf_warps > 0 else None

        self.l1_store = L1Store(
            num_warps=max(1, config.l1_warps),
            l1_bytes=l1_shared_bytes,
            block_size=config.block_size,
        ) if config.l1_warps > 0 else None

        self.shared_memory_store = SharedMemoryStore(
            num_warps=max(1, config.shared_memory_warps),
            shared_memory_bytes=l1_shared_bytes,
            compression_enabled=config.enable_compression,
            block_size=config.block_size,
        ) if config.shared_memory_warps > 0 else None

        self.stores: Dict[str, ExtendedLLCStore] = {}
        if self.register_file_store is not None:
            self.stores["register_file"] = self.register_file_store
        if self.l1_store is not None:
            self.stores["l1"] = self.l1_store
        if self.shared_memory_store is not None:
            self.stores["shared_memory"] = self.shared_memory_store
        if not self.stores:
            raise ValueError("the extended LLC kernel needs at least one store")

    # -- capacity ------------------------------------------------------------------

    @property
    def num_sets(self) -> int:
        """Extended LLC sets this SM contributes (one per kernel warp)."""
        return self.config.total_warps

    def physical_capacity_bytes(self) -> int:
        """Raw data capacity contributed by this SM (no compression)."""
        return sum(store.data_capacity_bytes() for store in self.stores.values())

    def effective_capacity_bytes(self) -> float:
        """Capacity including the compression gain on compressible stores."""
        total = 0.0
        factor = self.compressibility.capacity_factor()
        for store in self.stores.values():
            gain = factor if (self.config.enable_compression and store.supports_compression) else 1.0
            total += store.data_capacity_bytes() * gain
        return total

    # -- request servicing ------------------------------------------------------------

    def _store_for(self, address: int) -> Tuple[str, ExtendedLLCStore]:
        """Pick the store responsible for ``address`` (proportional split, §4.2 task 3)."""
        capacities = [(name, store.data_capacity_bytes()) for name, store in self.stores.items()]
        name = proportional_split(capacities, address, self.config.block_size)
        return name, self.stores[name]

    def _local_set(self, store: ExtendedLLCStore, set_index: int) -> int:
        return set_index % store.num_warps

    def _access_latency_ns(self, store_kind: str, compressed: bool) -> float:
        impl_hw = self.config.enable_indirect_mov_isa
        return self.config.timing.access_latency_ns(
            store_kind, indirect_mov_hardware=impl_hw, compressed=compressed
        )

    def access(self, set_index: int, address: int, is_write: bool = False) -> ExtendedAccessResult:
        """Serve one extended LLC request on this SM.

        Performs the tag lookup (Algorithm 1) in the responsible store's set;
        on a hit, the block is retrieved via Indirect-MOV (register file /
        shared memory) or an ordinary L1 access, with decompression if the
        block was stored compressed.  On a miss nothing is filled — the caller
        decides whether to fill after fetching the block from DRAM
        (:meth:`fill`).
        """
        store_kind, store = self._store_for(address)
        local_set = self._local_set(store, set_index)
        tag = address // self.config.block_size
        hit = store.access(local_set, tag, is_write=is_write)

        compressed = False
        if hit and self.config.enable_compression and store.supports_compression:
            meta = store.set_for(local_set).metadata(tag)
            compressed = meta is not None and meta.compression != CompressionLevel.UNCOMPRESSED

        latency = self._access_latency_ns(store_kind, compressed)
        return ExtendedAccessResult(
            hit=hit,
            store_kind=store_kind,
            service_latency_ns=latency,
            compression=(
                store.set_for(local_set).metadata(tag).compression
                if hit and store.set_for(local_set).metadata(tag) is not None
                else CompressionLevel.UNCOMPRESSED
            ),
        )

    def fill(self, set_index: int, address: int, dirty: bool = False) -> ExtendedAccessResult:
        """Insert a block fetched from DRAM after an extended LLC miss.

        The block is compressed (when enabled and supported by the target
        store) and installed with LRU replacement; dirty victims are returned
        as writeback addresses.
        """
        store_kind, store = self._store_for(address)
        local_set = self._local_set(store, set_index)
        tag = address // self.config.block_size

        level = CompressionLevel.UNCOMPRESSED
        if self.config.enable_compression and store.supports_compression:
            level = self.compressibility.level_for_tag(tag)

        evicted = store.fill(local_set, tag, dirty=dirty, compression=level)
        writebacks = [victim_tag * self.config.block_size for victim_tag, was_dirty in evicted if was_dirty]

        latency = self._access_latency_ns(store_kind, level != CompressionLevel.UNCOMPRESSED)
        if self.config.enable_compression and store.supports_compression:
            latency += self.config.timing.compression_overhead_ns
        return ExtendedAccessResult(
            hit=False,
            store_kind=store_kind,
            service_latency_ns=latency,
            writebacks=writebacks,
            compression=level,
        )

    def resident(self, set_index: int, address: int) -> bool:
        """Whether the block containing ``address`` currently resides on this SM."""
        _, store = self._store_for(address)
        local_set = self._local_set(store, set_index)
        return store.set_for(local_set).lookup(address // self.config.block_size)

    def reset(self) -> None:
        """Drop all cached blocks."""
        for store in self.stores.values():
            store.reset()


class ExtendedLLC:
    """The aggregate extended LLC across every cache-mode SM.

    Args:
        cache_sm_ids: SMs operating in cache mode.
        config: Morpheus configuration.
        register_file_bytes: Per-SM register file capacity.
        l1_shared_bytes: Per-SM unified L1/shared capacity.
        compressibility: Workload compressibility mix.
    """

    def __init__(
        self,
        cache_sm_ids: List[int],
        config: MorpheusConfig,
        register_file_bytes: int = 256 * 1024,
        l1_shared_bytes: int = 128 * 1024,
        compressibility: Compressibility | None = None,
    ) -> None:
        self.config = config
        self.cache_sm_ids = list(cache_sm_ids)
        self.kernels: Dict[int, ExtendedLLCKernel] = {
            sm_id: ExtendedLLCKernel(
                sm_id,
                config,
                register_file_bytes=register_file_bytes,
                l1_shared_bytes=l1_shared_bytes,
                compressibility=compressibility,
            )
            for sm_id in self.cache_sm_ids
        }

    @property
    def enabled(self) -> bool:
        """Whether any SM is lending capacity."""
        return bool(self.kernels)

    @property
    def total_sets(self) -> int:
        """Total extended LLC sets across all cache-mode SMs."""
        return sum(kernel.num_sets for kernel in self.kernels.values())

    def physical_capacity_bytes(self) -> int:
        """Raw extended LLC capacity (no compression gain)."""
        return sum(kernel.physical_capacity_bytes() for kernel in self.kernels.values())

    def effective_capacity_bytes(self) -> float:
        """Extended LLC capacity including compression gains."""
        return sum(kernel.effective_capacity_bytes() for kernel in self.kernels.values())

    def owner_of_set(self, global_set_index: int) -> Tuple[int, ExtendedLLCKernel, int]:
        """Map a global extended set index to ``(sm_id, kernel, local_set_index)``."""
        if not self.kernels:
            raise RuntimeError("the extended LLC has no cache-mode SMs")
        if global_set_index < 0:
            raise ValueError("global_set_index must be non-negative")
        ordered = [self.kernels[sm_id] for sm_id in self.cache_sm_ids]
        index = global_set_index % self.total_sets
        for kernel in ordered:
            if index < kernel.num_sets:
                return kernel.sm_id, kernel, index
            index -= kernel.num_sets
        # Unreachable given the modulo above.
        kernel = ordered[-1]
        return kernel.sm_id, kernel, kernel.num_sets - 1

    def access(self, global_set_index: int, address: int, is_write: bool = False) -> ExtendedAccessResult:
        """Serve an extended LLC request on the owning cache-mode SM."""
        _, kernel, local_set = self.owner_of_set(global_set_index)
        return kernel.access(local_set, address, is_write=is_write)

    def fill(self, global_set_index: int, address: int, dirty: bool = False) -> ExtendedAccessResult:
        """Fill a block into the owning SM after a DRAM fetch."""
        _, kernel, local_set = self.owner_of_set(global_set_index)
        return kernel.fill(local_set, address, dirty=dirty)

    def resident(self, global_set_index: int, address: int) -> bool:
        """Whether ``address`` is currently cached anywhere in the extended LLC."""
        _, kernel, local_set = self.owner_of_set(global_set_index)
        return kernel.resident(local_set, address)

    def per_sm_bandwidth_gbps(self) -> float:
        """Extended LLC bandwidth contributed by each cache-mode SM (GB/s)."""
        return self.config.timing.per_sm_extended_bandwidth_gbps

    def aggregate_bandwidth_gbps(self) -> float:
        """Total extended LLC bandwidth across cache-mode SMs (GB/s)."""
        return self.per_sm_bandwidth_gbps() * len(self.kernels)

    def reset(self) -> None:
        """Drop all cached blocks on every cache-mode SM."""
        for kernel in self.kernels.values():
            kernel.reset()
