"""The dual-Bloom-filter extended-LLC hit/miss predictor (§4.1.2).

Extended LLC misses cost more than conventional LLC misses (773 ns vs 608 ns
in Fig. 5) because they pay an extra NoC round trip plus a software tag
lookup.  The Morpheus controller therefore predicts the outcome of each
extended-LLC lookup and sends predicted misses straight to DRAM.

Correctness requires that the predictor never produce a *false negative*
(predicting "miss" for a block that is actually cached would return stale
data from DRAM).  False positives merely waste the round trip.  The paper's
scheme keeps two Bloom filters per extended LLC set:

* **BF1** always contains at least all blocks currently in the set --
  querying BF1 can therefore never yield a false negative.
* **BF2** contains the *n* most recently used blocks of the set.

Every access inserts the block into both filters.  Once *n* reaches the set's
associativity, BF2 is guaranteed (under LRU) to contain every resident block,
so BF1 is cleared, the filters swap roles and the scheme repeats — bounding
the false-positive build-up from evicted blocks lingering in BF1.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.core.bloom_filter import BloomFilter


@dataclass
class PredictorStats:
    """Prediction outcome counters (ground truth supplied by the caller)."""

    predictions: int = 0
    predicted_hits: int = 0
    predicted_misses: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    swaps: int = 0

    @property
    def false_positive_rate(self) -> float:
        """Fraction of predictions that were hit-predictions on absent blocks."""
        if self.predictions == 0:
            return 0.0
        return self.false_positives / self.predictions

    @property
    def false_negative_rate(self) -> float:
        """Fraction of predictions that wrongly predicted miss (must stay zero)."""
        if self.predictions == 0:
            return 0.0
        return self.false_negatives / self.predictions

    def to_jsonable(self) -> Dict[str, int]:
        """Render the counters as a JSON-compatible field dict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, payload: Dict[str, int]) -> "PredictorStats":
        """Rebuild stats from :meth:`to_jsonable` output (bit-identical)."""
        return cls(**payload)


class _SetPredictor:
    """Dual Bloom filter state for a single extended LLC set."""

    def __init__(self, associativity: int, filter_bytes: int, num_hashes: int) -> None:
        self.associativity = associativity
        self.bf1 = BloomFilter(filter_bytes, num_hashes)
        self.bf2 = BloomFilter(filter_bytes, num_hashes)
        # Tags known to be in BF2 since its last clear; len() is the paper's n.
        self._bf2_tags: Set[int] = set()
        self.swaps = 0

    def predict_hit(self, tag: int) -> bool:
        """Predict whether ``tag`` currently resides in the set (query BF1)."""
        return self.bf1.query(tag)

    def record_access(self, tag: int) -> None:
        """Update both filters on an access (insert or reuse) of ``tag``.

        Maintains the two invariants and performs the BF1 <- BF2 swap when n
        reaches the associativity (flow diagram of Figure 6(b)).
        """
        self.bf1.insert(tag)
        self.bf2.insert(tag)
        self._bf2_tags.add(tag)
        if len(self._bf2_tags) >= self.associativity:
            self.bf1.clear()
            self.bf1, self.bf2 = self.bf2, self.bf1
            self._bf2_tags.clear()
            self.swaps += 1


class HitMissPredictor:
    """Per-partition hit/miss predictor: one dual-filter unit per extended LLC set.

    Args:
        num_sets: Extended LLC sets handled by this partition's controller
            (up to 256 on the modelled RTX 3080).
        associativity: Blocks per extended LLC set (32).
        filter_bytes: Size of each Bloom filter (32 B).
        num_hashes: Hash functions per filter.
    """

    def __init__(
        self,
        num_sets: int = 256,
        associativity: int = 32,
        filter_bytes: int = 32,
        num_hashes: int = 4,
    ) -> None:
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self.num_sets = num_sets
        self.associativity = associativity
        self.filter_bytes = filter_bytes
        self._sets: Dict[int, _SetPredictor] = {}
        self._num_hashes = num_hashes
        self.stats = PredictorStats()

    def _set_predictor(self, set_index: int) -> _SetPredictor:
        if not 0 <= set_index < self.num_sets:
            raise ValueError(f"set_index {set_index} out of range [0, {self.num_sets})")
        predictor = self._sets.get(set_index)
        if predictor is None:
            predictor = _SetPredictor(self.associativity, self.filter_bytes, self._num_hashes)
            self._sets[set_index] = predictor
        return predictor

    def predict(self, set_index: int, tag: int) -> bool:
        """Predict a hit (True) or miss (False) for ``tag`` in ``set_index``."""
        predictor = self._set_predictor(set_index)
        hit = predictor.predict_hit(tag)
        self.stats.predictions += 1
        if hit:
            self.stats.predicted_hits += 1
        else:
            self.stats.predicted_misses += 1
        return hit

    def record_outcome(self, predicted_hit: bool, actual_hit: bool) -> None:
        """Record ground truth so false-positive/negative rates can be audited."""
        if predicted_hit and not actual_hit:
            self.stats.false_positives += 1
        elif not predicted_hit and actual_hit:
            self.stats.false_negatives += 1

    def record_access(self, set_index: int, tag: int) -> None:
        """Inform the predictor that ``tag`` was inserted into / reused in its set."""
        predictor = self._set_predictor(set_index)
        before = predictor.swaps
        predictor.record_access(tag)
        if predictor.swaps != before:
            self.stats.swaps += 1

    def storage_bytes(self) -> int:
        """Total Bloom filter storage provisioned by this predictor."""
        return self.num_sets * 2 * self.filter_bytes

    def reset(self) -> None:
        """Drop all per-set state and statistics."""
        self._sets.clear()
        self.stats = PredictorStats()
