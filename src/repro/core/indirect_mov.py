"""The Indirect-MOV procedure and its native ISA variant (§4.2.1, §4.3.2).

The extended LLC kernel stores each cache block of a set in a different warp
register.  After the tag lookup it therefore needs to read *the register
whose index is held in another register* — an indirect register access that
NVIDIA's PTX ISA does not provide directly.

Two implementations are modelled:

* **Software** (Algorithm 2): a ``brx.idx`` branch into a 32-case switch where
  case *i* executes ``MOV Ri, Raux``.  Three instructions (branch, MOV,
  return) with two of them branches causing irregular control flow.
* **Hardware** (§4.3.2): a new Indirect-MOV instruction where the operand
  collector performs two sequential register file reads — first the index
  register, then the indirectly addressed register — selected by a single
  added multiplexer.

The functional model executes the access on a register-array abstraction so
that tests can confirm both variants return identical data; the cost model
exposes instruction counts and latencies for the performance simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence


class IndirectMovImplementation(enum.Enum):
    """Which Indirect-MOV flavour the extended LLC kernel uses."""

    SOFTWARE_BRX = "software_brx"
    HARDWARE_ISA = "hardware_isa"


@dataclass(frozen=True)
class IndirectMovCost:
    """Cost of one indirect register access."""

    instructions: int
    register_file_reads: int
    branches: int
    latency_ns: float


class IndirectMovModel:
    """Functional + cost model of indirect register file accesses.

    Args:
        num_data_registers: Number of data-array registers addressable by the
            procedure (32 branch targets in Algorithm 2).
        software_latency_ns: Latency of the software switch-case procedure.
        hardware_latency_ns: Latency of the native instruction.
    """

    def __init__(
        self,
        num_data_registers: int = 32,
        software_latency_ns: float = 18.0,
        hardware_latency_ns: float = 4.0,
    ) -> None:
        if num_data_registers <= 0:
            raise ValueError("num_data_registers must be positive")
        if software_latency_ns <= 0 or hardware_latency_ns <= 0:
            raise ValueError("latencies must be positive")
        self.num_data_registers = num_data_registers
        self.software_latency_ns = software_latency_ns
        self.hardware_latency_ns = hardware_latency_ns

    # -- functional model ------------------------------------------------------

    def read(
        self,
        registers: Sequence[object],
        index_register_value: int,
        implementation: IndirectMovImplementation,
    ) -> object:
        """Read ``registers[index_register_value]`` via the chosen implementation.

        Both implementations must return the same value; the distinction is
        purely in cost.  ``index_register_value`` models the contents of the
        auxiliary register produced by the tag lookup (R_aux3).
        """
        if not 0 <= index_register_value < self.num_data_registers:
            raise ValueError(
                f"register index {index_register_value} out of range "
                f"[0, {self.num_data_registers})"
            )
        if index_register_value >= len(registers):
            raise ValueError("register index exceeds the provided register array")
        if implementation == IndirectMovImplementation.SOFTWARE_BRX:
            return self._read_software(registers, index_register_value)
        return self._read_hardware(registers, index_register_value)

    def _read_software(self, registers: Sequence[object], index: int) -> object:
        """Emulate the brx.idx switch: dispatch to the case for ``index``."""
        # Build the branch-target list L0..L{n-1}; each target reads one register.
        branch_targets = [lambda i=i: registers[i] for i in range(self.num_data_registers)]
        return branch_targets[index]()

    def _read_hardware(self, registers: Sequence[object], index: int) -> object:
        """Emulate the operand collector's two sequential register file reads."""
        # First read: the register holding the index (modelled by `index` itself).
        # Second read: the indirectly addressed data register.
        return registers[index]

    def write(
        self,
        registers: List[object],
        index_register_value: int,
        value: object,
        implementation: IndirectMovImplementation,
    ) -> None:
        """Write ``value`` into ``registers[index_register_value]`` (miss fills)."""
        if not 0 <= index_register_value < self.num_data_registers:
            raise ValueError(
                f"register index {index_register_value} out of range "
                f"[0, {self.num_data_registers})"
            )
        if index_register_value >= len(registers):
            raise ValueError("register index exceeds the provided register array")
        registers[index_register_value] = value

    # -- cost model ------------------------------------------------------------

    def cost(self, implementation: IndirectMovImplementation) -> IndirectMovCost:
        """Per-access cost of the chosen implementation."""
        if implementation == IndirectMovImplementation.SOFTWARE_BRX:
            return IndirectMovCost(
                instructions=3,            # brx.idx + MOV + return
                register_file_reads=2,
                branches=2,                # brx.idx and return are branches
                latency_ns=self.software_latency_ns,
            )
        return IndirectMovCost(
            instructions=1,                # the native Indirect-MOV instruction
            register_file_reads=2,         # two sequential operand collector reads
            branches=0,
            latency_ns=self.hardware_latency_ns,
        )

    def latency_ns(self, implementation: IndirectMovImplementation) -> float:
        """Latency of one indirect access for ``implementation``."""
        return self.cost(implementation).latency_ns

    def speedup_of_hardware(self) -> float:
        """Latency ratio software / hardware (the benefit of the new instruction)."""
        return self.software_latency_ns / self.hardware_latency_ns
