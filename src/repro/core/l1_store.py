"""Extended LLC via the L1 cache (§4.2.2).

When a block belongs to the L1 region of the extended LLC, the extended LLC
kernel simply forwards the request to the cache-mode SM's L1 with ordinary
load/store instructions: the L1's own hardware handles tags, replacement and
fills.  On a miss, the L1 fetches the block from main memory directly — the
Morpheus controller ensures such fills bypass the conventional LLC, because
the block's address range belongs to the extended LLC.

Because the L1 manages blocks in hardware, the extended LLC kernel cannot
apply BDI compression to this region (footnote 4 of the paper).
"""

from __future__ import annotations

from repro.core.store_base import ExtendedLLCStore


class L1Store(ExtendedLLCStore):
    """The L1-cache region of the extended LLC on one cache-mode SM.

    Args:
        num_warps: Extended LLC kernel warps assigned to the L1 region
            (16 in the paper's combined configuration).
        l1_bytes: Unified L1/shared-memory capacity devoted to the extended
            LLC (128 KiB on the RTX 3080; flat with warp count).
    """

    store_kind = "l1"
    supports_compression = False

    def __init__(
        self,
        num_warps: int = 16,
        l1_bytes: int = 128 * 1024,
        compression_enabled: bool = False,
        block_size: int = 128,
    ) -> None:
        if l1_bytes <= 0:
            raise ValueError("l1_bytes must be positive")
        self.l1_bytes = l1_bytes
        total_blocks = l1_bytes // block_size
        ways = max(1, total_blocks // num_warps)
        super().__init__(
            num_warps=num_warps,
            ways_per_set=ways,
            # Compression never applies to the L1 region (hardware-managed).
            compression_enabled=False,
            block_size=block_size,
        )

    @classmethod
    def capacity_bytes_for_warps(
        cls, num_warps: int, l1_bytes: int = 128 * 1024, block_size: int = 128
    ) -> int:
        """Capacity offered at ``num_warps`` (flat: the whole L1 is always used)."""
        if num_warps <= 0:
            raise ValueError("num_warps must be positive")
        blocks = l1_bytes // block_size
        return (blocks // num_warps) * num_warps * block_size

    def fills_bypass_conventional_llc(self) -> bool:
        """L1-region misses fetch from DRAM directly, bypassing the conventional LLC."""
        return True
