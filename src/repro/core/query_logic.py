"""The extended LLC query logic unit (§4.1.3).

The Morpheus controller tracks outstanding extended LLC requests with four
structures, all memory-mapped so the extended LLC kernel warps can read and
write them with plain load/store instructions:

* a **request queue** that buffers bursts so the NoC is not clogged,
* a **warp status table** with one row per extended LLC set, tracking the
  warp assigned to that set (busy bit, op, tag, origin, result, data pointer),
* a **read data buffer** holding cache blocks returned by the kernel, and
* a **write data buffer** holding dirty blocks headed to the extended LLC.

Each extended LLC kernel warp serves exactly one request at a time, which is
also what guarantees atomicity of read-modify-write operations on extended
LLC blocks (§4.2.3).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.memory.request import MemoryRequest


class WarpOp(enum.Enum):
    """Operation a warp-status-table row is currently serving."""

    READ = "read"
    WRITE = "write"
    ATOMIC = "atomic"


class WarpResult(enum.Enum):
    """Result field of a warp status table row."""

    PENDING = "pending"
    HIT = "hit"
    MISS = "miss"


@dataclass
class WarpStatusRow:
    """One row of the warp status table (one extended LLC set / kernel warp)."""

    set_index: int
    busy: bool = False
    tag: int = -1
    origin_sm: int = -1
    op: WarpOp = WarpOp.READ
    result: WarpResult = WarpResult.PENDING
    data_buffer_index: int = -1
    requests_served: int = 0


class WarpStatusTable:
    """The warp status table: one row per extended LLC set in this partition."""

    def __init__(self, num_rows: int = 256) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        self.num_rows = num_rows
        self._rows: List[WarpStatusRow] = [WarpStatusRow(set_index=i) for i in range(num_rows)]

    def row(self, set_index: int) -> WarpStatusRow:
        """Row for ``set_index``."""
        if not 0 <= set_index < self.num_rows:
            raise ValueError(f"set_index {set_index} out of range [0, {self.num_rows})")
        return self._rows[set_index]

    def is_busy(self, set_index: int) -> bool:
        """Whether the warp assigned to ``set_index`` is serving a request."""
        return self.row(set_index).busy

    def begin(self, set_index: int, request: MemoryRequest, data_buffer_index: int = -1) -> WarpStatusRow:
        """Mark the set's warp busy with ``request``.  Raises if already busy."""
        row = self.row(set_index)
        if row.busy:
            raise RuntimeError(f"warp for set {set_index} is already busy")
        row.busy = True
        row.tag = request.address
        row.origin_sm = request.sm_id
        if request.access_type.name == "ATOMIC":
            row.op = WarpOp.ATOMIC
        elif request.is_write:
            row.op = WarpOp.WRITE
        else:
            row.op = WarpOp.READ
        row.result = WarpResult.PENDING
        row.data_buffer_index = data_buffer_index
        return row

    def complete(self, set_index: int, hit: bool) -> WarpStatusRow:
        """Record the lookup outcome and free the warp."""
        row = self.row(set_index)
        if not row.busy:
            raise RuntimeError(f"warp for set {set_index} is not busy")
        row.busy = False
        row.result = WarpResult.HIT if hit else WarpResult.MISS
        row.requests_served += 1
        return row

    def busy_count(self) -> int:
        """Number of rows currently serving a request."""
        return sum(1 for row in self._rows if row.busy)

    def reset(self) -> None:
        """Clear all rows."""
        self._rows = [WarpStatusRow(set_index=i) for i in range(self.num_rows)]


class DataBuffer:
    """A fixed pool of cache-block-sized payload slots (read or write buffer)."""

    def __init__(self, num_entries: int = 16, block_size: int = 128) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.block_size = block_size
        self._free: Deque[int] = deque(range(num_entries))
        self._in_use: Dict[int, int] = {}

    @property
    def available(self) -> int:
        """Free slots."""
        return len(self._free)

    def allocate(self, block_address: int) -> Optional[int]:
        """Reserve a slot for ``block_address``; returns the index or ``None`` if full."""
        if not self._free:
            return None
        index = self._free.popleft()
        self._in_use[index] = block_address
        return index

    def release(self, index: int) -> None:
        """Free a previously allocated slot."""
        if index not in self._in_use:
            raise ValueError(f"buffer slot {index} is not allocated")
        del self._in_use[index]
        self._free.append(index)

    def storage_bytes(self) -> int:
        """Total payload storage of this buffer."""
        return self.num_entries * self.block_size

    def reset(self) -> None:
        """Free every slot."""
        self._free = deque(range(self.num_entries))
        self._in_use.clear()


class RequestQueue:
    """FIFO of extended LLC requests waiting for their set's warp to free up."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._queue: Deque[MemoryRequest] = deque()
        self.enqueued = 0
        self.rejected = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """True when no further request can be buffered."""
        return len(self._queue) >= self.capacity

    def enqueue(self, request: MemoryRequest) -> bool:
        """Buffer ``request``; returns False (back-pressure) when the queue is full."""
        if self.full:
            self.rejected += 1
            return False
        self._queue.append(request)
        self.enqueued += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))
        return True

    def dequeue(self) -> Optional[MemoryRequest]:
        """Pop the oldest buffered request, or ``None`` when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def peek(self) -> Optional[MemoryRequest]:
        """Oldest buffered request without removing it."""
        return self._queue[0] if self._queue else None

    def reset(self) -> None:
        """Drop all buffered requests and statistics."""
        self._queue.clear()
        self.enqueued = 0
        self.rejected = 0
        self.max_occupancy = 0


class ExtendedLLCQueryLogic:
    """Request queue + warp status table + read/write data buffers for one partition."""

    def __init__(
        self,
        num_sets: int = 256,
        queue_capacity: int = 64,
        buffer_entries: int = 16,
        block_size: int = 128,
    ) -> None:
        self.request_queue = RequestQueue(queue_capacity)
        self.warp_status = WarpStatusTable(num_sets)
        self.read_buffer = DataBuffer(buffer_entries, block_size)
        self.write_buffer = DataBuffer(buffer_entries, block_size)
        self.block_size = block_size

    def admit(self, request: MemoryRequest) -> bool:
        """Buffer an incoming extended LLC request (returns False on back-pressure)."""
        return self.request_queue.enqueue(request)

    def dispatch(self, set_index: int) -> Optional[MemoryRequest]:
        """Dequeue the next request if the target set's warp is idle.

        The simulator calls this with the set of the queue head; a request is
        only released when its warp is not busy, matching §4.1.3 ("a given
        request is de-queued as soon as the warp assigned to the request's
        extended LLC set is ready").
        """
        head = self.request_queue.peek()
        if head is None:
            return None
        if self.warp_status.is_busy(set_index):
            return None
        request = self.request_queue.dequeue()
        assert request is not None
        buffer = self.write_buffer if request.is_write else self.read_buffer
        slot = buffer.allocate(request.address)
        self.warp_status.begin(set_index, request, data_buffer_index=slot if slot is not None else -1)
        return request

    def complete(self, set_index: int, hit: bool) -> None:
        """Finish the request being served by ``set_index``'s warp and free its buffer."""
        row = self.warp_status.complete(set_index, hit)
        if row.data_buffer_index >= 0:
            buffer = self.write_buffer if row.op == WarpOp.WRITE else self.read_buffer
            try:
                buffer.release(row.data_buffer_index)
            except ValueError:
                pass

    def storage_bytes(self) -> int:
        """Approximate on-chip storage of the query logic unit (≈5 KiB)."""
        # 16 bytes of metadata per warp status row plus the two payload buffers
        # and queue head/tail pointers.
        row_bytes = 8
        return (
            self.warp_status.num_rows * row_bytes
            + self.read_buffer.storage_bytes()
            + self.write_buffer.storage_bytes()
            + 64
        )

    def reset(self) -> None:
        """Reset every component."""
        self.request_queue.reset()
        self.warp_status.reset()
        self.read_buffer.reset()
        self.write_buffer.reset()
