"""Extended LLC via the register file (§4.2.1, Figure 8).

Each warp of the extended LLC kernel implements one fully associative
extended LLC set in its own registers: 32 data-array registers (one 128-byte
warp register per cache block), one metadata register (thread *i* holds block
*i*'s LRU counter, dirty bit, valid bit and tag) and a handful of auxiliary
registers for the kernel's own execution.

The capacity model reproduces the paper's Figure 11(a) behaviour:

* with **few warps** capacity is limited by the maximum number of registers
  per thread (256), so a single warp can only expose ~31 KiB;
* **eight warps** roughly saturate the register file (~240 KiB of data);
* with **more warps** the per-warp auxiliary registers eat into the data
  capacity, so 48 warps expose 48 sets x 32 blocks x 128 B = 192 KiB.
"""

from __future__ import annotations

from repro.core.store_base import ExtendedLLCStore


class RegisterFileStore(ExtendedLLCStore):
    """The register-file region of the extended LLC on one cache-mode SM.

    Args:
        num_warps: Extended LLC kernel warps assigned to the register file.
        register_file_bytes: Register file capacity of the SM (256 KiB on the
            RTX 3080).
        max_registers_per_thread: Architectural per-thread register limit.
        aux_registers_per_warp: Warp registers reserved for the kernel's own
            execution context (addresses, loop counters, the metadata
            register, compression bases).
        threads_per_warp: SIMD width (32).
        compression_enabled: Apply BDI compression to stored blocks.
    """

    store_kind = "register_file"
    supports_compression = True

    def __init__(
        self,
        num_warps: int = 32,
        register_file_bytes: int = 256 * 1024,
        max_registers_per_thread: int = 256,
        aux_registers_per_warp: int = 10,
        threads_per_warp: int = 32,
        compression_enabled: bool = False,
        block_size: int = 128,
    ) -> None:
        if register_file_bytes <= 0:
            raise ValueError("register_file_bytes must be positive")
        if max_registers_per_thread <= 0:
            raise ValueError("max_registers_per_thread must be positive")
        if aux_registers_per_warp < 0:
            raise ValueError("aux_registers_per_warp must be non-negative")

        self.register_file_bytes = register_file_bytes
        self.max_registers_per_thread = max_registers_per_thread
        self.aux_registers_per_warp = aux_registers_per_warp
        self.threads_per_warp = threads_per_warp

        ways = self.data_registers_per_warp(
            num_warps,
            register_file_bytes,
            max_registers_per_thread,
            aux_registers_per_warp,
            threads_per_warp,
            block_size,
        )
        super().__init__(
            num_warps=num_warps,
            ways_per_set=max(1, ways),
            compression_enabled=compression_enabled,
            block_size=block_size,
        )

    @staticmethod
    def data_registers_per_warp(
        num_warps: int,
        register_file_bytes: int = 256 * 1024,
        max_registers_per_thread: int = 256,
        aux_registers_per_warp: int = 10,
        threads_per_warp: int = 32,
        block_size: int = 128,
    ) -> int:
        """Number of 128-byte data-array registers available to each warp.

        A *warp register* is one architectural register across the 32 threads
        of a warp (32 x 4 B = 128 B), i.e. exactly one extended LLC block.
        Each warp can use at most ``min(RF / num_warps, max_registers_per_thread)``
        warp registers, minus the auxiliary registers reserved for kernel
        execution.
        """
        if num_warps <= 0:
            raise ValueError("num_warps must be positive")
        warp_register_bytes = threads_per_warp * 4
        total_warp_registers = register_file_bytes // warp_register_bytes
        per_warp = min(total_warp_registers // num_warps, max_registers_per_thread)
        return max(0, per_warp - aux_registers_per_warp)

    @classmethod
    def capacity_bytes_for_warps(
        cls,
        num_warps: int,
        register_file_bytes: int = 256 * 1024,
        aux_registers_per_warp: int = 10,
        block_size: int = 128,
    ) -> int:
        """Extended LLC data capacity (bytes) the register file offers at ``num_warps``.

        This is the curve plotted in Figure 11(a) for the register file store.
        """
        ways = cls.data_registers_per_warp(
            num_warps,
            register_file_bytes=register_file_bytes,
            aux_registers_per_warp=aux_registers_per_warp,
            block_size=block_size,
        )
        return num_warps * ways * block_size

    def effective_capacity_bytes(self, compression_gain: float = 1.0) -> float:
        """Capacity including the effective gain from BDI compression."""
        if compression_gain < 1.0:
            raise ValueError("compression_gain must be >= 1.0")
        gain = compression_gain if self.compression_enabled else 1.0
        return self.data_capacity_bytes() * gain
