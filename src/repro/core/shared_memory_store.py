"""Extended LLC via shared memory (§4.2.2).

Shared memory has no hardware tag store, so the extended LLC kernel keeps the
tags of shared-memory-resident blocks in the register file (faster tag
lookups) and only the data arrays live in shared memory.  The data address is
computed from the extended LLC set number and the block index produced by the
tag lookup.

On the RTX 3080 the L1 and shared memory are unified (128 KiB total), so the
shared memory store and the L1 store compete for the same physical capacity;
the paper therefore only combines the register file store with the L1 store.
"""

from __future__ import annotations

from repro.core.store_base import ExtendedLLCStore


class SharedMemoryStore(ExtendedLLCStore):
    """The shared-memory region of the extended LLC on one cache-mode SM.

    Args:
        num_warps: Extended LLC kernel warps assigned to shared memory
            (each owns one set).
        shared_memory_bytes: Shared memory capacity devoted to the extended
            LLC data array.  The whole space is used regardless of warp count
            (Figure 11(a): the shared-memory capacity curve is flat).
        compression_enabled: Apply BDI compression to stored blocks.
    """

    store_kind = "shared_memory"
    supports_compression = True

    def __init__(
        self,
        num_warps: int = 8,
        shared_memory_bytes: int = 128 * 1024,
        compression_enabled: bool = False,
        block_size: int = 128,
    ) -> None:
        if shared_memory_bytes <= 0:
            raise ValueError("shared_memory_bytes must be positive")
        self.shared_memory_bytes = shared_memory_bytes
        total_blocks = shared_memory_bytes // block_size
        ways = max(1, total_blocks // num_warps)
        super().__init__(
            num_warps=num_warps,
            ways_per_set=ways,
            compression_enabled=compression_enabled,
            block_size=block_size,
        )

    @classmethod
    def capacity_bytes_for_warps(
        cls, num_warps: int, shared_memory_bytes: int = 128 * 1024, block_size: int = 128
    ) -> int:
        """Capacity offered at ``num_warps`` (flat: the whole space is always used)."""
        if num_warps <= 0:
            raise ValueError("num_warps must be positive")
        blocks = shared_memory_bytes // block_size
        # Round down to a whole number of blocks per set so sets are uniform.
        return (blocks // num_warps) * num_warps * block_size

    def tag_storage_location(self) -> str:
        """Where this store keeps its tags (the register file, per §4.2.2)."""
        return "register_file"
