"""Common machinery shared by the extended LLC's on-chip memory stores.

Each cache-mode SM lends three kinds of on-chip memory to the extended LLC:
its register file, its shared memory and its L1 cache.  All three behave as a
collection of fully associative extended LLC *sets* (one set per extended LLC
kernel warp) holding 128-byte blocks with valid/dirty bits, tags and LRU
counters — exactly the structure the extended LLC kernel lays out in Figure 8
and queries with Algorithm 1.  They differ in capacity, access latency,
bandwidth and whether compression applies, which the concrete store classes
(:mod:`repro.core.register_file_store`, :mod:`repro.core.shared_memory_store`,
:mod:`repro.core.l1_store`) specialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.compression import BDICompressor, CompressionLevel


@dataclass
class ExtendedBlockMetadata:
    """Metadata block for one extended LLC block (Figure 8, item 4).

    Holds the tag, valid bit, dirty bit and LRU counter that the extended LLC
    kernel keeps coalesced in the per-set metadata register, plus the block's
    compression level when compression is enabled.
    """

    tag: int = -1
    valid: bool = False
    dirty: bool = False
    lru_counter: int = 0
    compression: CompressionLevel = CompressionLevel.UNCOMPRESSED


@dataclass
class StoreStats:
    """Access statistics of one extended LLC store."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate over all lookups (0.0 with no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0


class ExtendedLLCSet:
    """One fully associative extended LLC set owned by one kernel warp.

    Args:
        base_ways: Number of 128-byte block slots physically available
            (32 data-array registers in the register file layout).
        compression_enabled: When True, compressed blocks occupy fewer bytes
            so more logical blocks fit into the same physical storage.
        block_size: Logical block size in bytes.
    """

    def __init__(self, base_ways: int, compression_enabled: bool = False, block_size: int = 128) -> None:
        if base_ways <= 0:
            raise ValueError("base_ways must be positive")
        self.base_ways = base_ways
        self.compression_enabled = compression_enabled
        self.block_size = block_size
        self.physical_bytes = base_ways * block_size
        self._blocks: Dict[int, ExtendedBlockMetadata] = {}
        self._lru_clock = 0

    # -- capacity accounting ----------------------------------------------------

    def _stored_bytes(self) -> int:
        return sum(
            meta.compression.compressed_size if self.compression_enabled else self.block_size
            for meta in self._blocks.values()
        )

    def _bytes_for(self, level: CompressionLevel) -> int:
        return level.compressed_size if self.compression_enabled else self.block_size

    def occupancy(self) -> int:
        """Number of logical blocks resident in the set."""
        return len(self._blocks)

    def occupancy_bytes(self) -> int:
        """Physical bytes consumed by resident blocks."""
        return self._stored_bytes()

    # -- Algorithm 1: tag lookup --------------------------------------------------

    def lookup(self, tag: int) -> bool:
        """Tag lookup without state changes (the warp's ballot over metadata)."""
        meta = self._blocks.get(tag)
        return meta is not None and meta.valid

    def access(self, tag: int, is_write: bool = False) -> bool:
        """Look up ``tag``; on a hit update LRU (and dirty state for writes)."""
        meta = self._blocks.get(tag)
        if meta is None or not meta.valid:
            return False
        self._lru_clock += 1
        meta.lru_counter = self._lru_clock
        if is_write:
            meta.dirty = True
        return True

    # -- fills and evictions -------------------------------------------------------

    def fill(
        self,
        tag: int,
        dirty: bool = False,
        compression: CompressionLevel = CompressionLevel.UNCOMPRESSED,
    ) -> List[Tuple[int, bool]]:
        """Insert ``tag``, evicting LRU victims until the block fits.

        Returns a list of ``(victim_tag, was_dirty)`` pairs for every evicted
        block (empty when nothing had to be evicted).
        """
        if tag in self._blocks:
            meta = self._blocks[tag]
            meta.valid = True
            meta.dirty = meta.dirty or dirty
            meta.compression = compression
            self._lru_clock += 1
            meta.lru_counter = self._lru_clock
            return []

        needed = self._bytes_for(compression)
        evicted: List[Tuple[int, bool]] = []
        while self._stored_bytes() + needed > self.physical_bytes and self._blocks:
            victim_tag = min(self._blocks, key=lambda t: self._blocks[t].lru_counter)
            victim = self._blocks.pop(victim_tag)
            evicted.append((victim_tag, victim.dirty))

        self._lru_clock += 1
        self._blocks[tag] = ExtendedBlockMetadata(
            tag=tag,
            valid=True,
            dirty=dirty,
            lru_counter=self._lru_clock,
            compression=compression,
        )
        return evicted

    def invalidate(self, tag: int) -> Optional[ExtendedBlockMetadata]:
        """Remove ``tag`` from the set, returning its metadata if present."""
        return self._blocks.pop(tag, None)

    def tags(self) -> List[int]:
        """Tags of all resident blocks."""
        return list(self._blocks)

    def metadata(self, tag: int) -> Optional[ExtendedBlockMetadata]:
        """Metadata of a resident block (or None)."""
        return self._blocks.get(tag)


class ExtendedLLCStore:
    """A set of extended LLC sets backed by one kind of on-chip memory.

    Concrete subclasses provide the capacity model (how many block slots the
    underlying memory offers per warp) and the timing label used by the
    controller to pick access latencies.
    """

    #: Label used by :class:`repro.core.config.ExtendedLLCTiming`.
    store_kind = "register_file"
    #: Whether BDI compression can be applied to blocks in this store
    #: (the L1 store handles blocks in hardware, so compression does not apply).
    supports_compression = True

    def __init__(
        self,
        num_warps: int,
        ways_per_set: int,
        compression_enabled: bool = False,
        block_size: int = 128,
    ) -> None:
        if num_warps <= 0:
            raise ValueError("num_warps must be positive")
        if ways_per_set <= 0:
            raise ValueError("ways_per_set must be positive")
        self.num_warps = num_warps
        self.ways_per_set = ways_per_set
        self.block_size = block_size
        self.compression_enabled = compression_enabled and self.supports_compression
        self.sets: List[ExtendedLLCSet] = [
            ExtendedLLCSet(ways_per_set, self.compression_enabled, block_size)
            for _ in range(num_warps)
        ]
        self.stats = StoreStats()
        self._compressor = BDICompressor()

    # -- capacity ----------------------------------------------------------------

    def data_capacity_bytes(self) -> int:
        """Physical data capacity offered to the extended LLC."""
        return self.num_warps * self.ways_per_set * self.block_size

    # -- access path ----------------------------------------------------------------

    def set_for(self, set_index: int) -> ExtendedLLCSet:
        """The set owned by warp ``set_index`` (local to this store)."""
        if not 0 <= set_index < self.num_warps:
            raise ValueError(f"set_index {set_index} out of range [0, {self.num_warps})")
        return self.sets[set_index]

    def access(self, set_index: int, tag: int, is_write: bool = False) -> bool:
        """Serve one extended LLC request against this store; True on a hit."""
        hit = self.set_for(set_index).access(tag, is_write)
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit

    def fill(
        self,
        set_index: int,
        tag: int,
        dirty: bool = False,
        compression: CompressionLevel = CompressionLevel.UNCOMPRESSED,
    ) -> List[Tuple[int, bool]]:
        """Install a block after a miss; returns evicted ``(tag, dirty)`` pairs."""
        if not self.compression_enabled:
            compression = CompressionLevel.UNCOMPRESSED
        evicted = self.set_for(set_index).fill(tag, dirty=dirty, compression=compression)
        self.stats.fills += 1
        self.stats.evictions += len(evicted)
        self.stats.dirty_evictions += sum(1 for _, was_dirty in evicted if was_dirty)
        return evicted

    def occupancy_blocks(self) -> int:
        """Logical blocks resident across all sets."""
        return sum(s.occupancy() for s in self.sets)

    def reset(self) -> None:
        """Drop all contents and statistics."""
        self.sets = [
            ExtendedLLCSet(self.ways_per_set, self.compression_enabled, self.block_size)
            for _ in range(self.num_warps)
        ]
        self.stats = StoreStats()
