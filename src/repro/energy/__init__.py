"""Energy modelling (the AccelWattch-style component model)."""

from repro.energy.components import ComponentEnergies, DEFAULT_ENERGIES
from repro.energy.model import EnergyBreakdown, EnergyModel

__all__ = [
    "ComponentEnergies",
    "DEFAULT_ENERGIES",
    "EnergyBreakdown",
    "EnergyModel",
]
