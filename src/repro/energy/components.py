"""Per-component energy constants.

The paper reports the key numbers we need: ~10 pJ/B for the conventional LLC,
~53-61 pJ/B for the extended LLC (register file + L1 combination), and cites
off-chip DRAM accesses as the dominant energy consumer that Morpheus reduces.
Off-chip GDDR6X access energy is taken as ~20 pJ/bit (≈160 pJ/B) including
I/O, consistent with the literature the paper builds on.  Static/idle power
uses AccelWattch-style constants for an Ampere-class GPU.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentEnergies:
    """Energy constants used by :class:`repro.energy.model.EnergyModel`.

    All per-byte numbers are in picojoules per byte, powers in watts.
    """

    dram_pj_per_byte: float = 160.0
    llc_pj_per_byte: float = 10.0
    extended_llc_pj_per_byte: float = 61.0
    l1_pj_per_byte: float = 8.0
    noc_pj_per_byte: float = 5.0
    core_dynamic_pj_per_instruction: float = 120.0
    sm_static_watts: float = 1.1
    sm_cache_mode_watts: float = 0.55
    base_static_watts: float = 45.0
    morpheus_controller_watts: float = 0.28
    core_clock_ghz: float = 1.44

    def __post_init__(self) -> None:
        for name in (
            "dram_pj_per_byte",
            "llc_pj_per_byte",
            "extended_llc_pj_per_byte",
            "l1_pj_per_byte",
            "noc_pj_per_byte",
            "core_dynamic_pj_per_instruction",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.core_clock_ghz <= 0:
            raise ValueError("core_clock_ghz must be positive")


DEFAULT_ENERGIES = ComponentEnergies()
"""Default energy constants for the RTX 3080-class baseline."""
