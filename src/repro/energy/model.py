"""GPU energy model.

Combines dynamic energy (per byte moved through each memory-hierarchy level,
per instruction executed) with static power integrated over the modelled
execution time.  This is the component-level equivalent of AccelWattch used
for the paper's performance/watt results (Figure 12 bottom): the conclusions
there rest on (1) how many off-chip accesses each system performs and (2) how
long it runs, both of which the model captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.components import ComponentEnergies, DEFAULT_ENERGIES


@dataclass
class EnergyBreakdown:
    """Energy totals (joules) broken down by component."""

    dram_j: float = 0.0
    llc_j: float = 0.0
    extended_llc_j: float = 0.0
    l1_j: float = 0.0
    noc_j: float = 0.0
    core_dynamic_j: float = 0.0
    static_j: float = 0.0
    morpheus_controller_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Total GPU energy in joules."""
        return (
            self.dram_j
            + self.llc_j
            + self.extended_llc_j
            + self.l1_j
            + self.noc_j
            + self.core_dynamic_j
            + self.static_j
            + self.morpheus_controller_j
        )

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dictionary (for reports)."""
        return {
            "dram": self.dram_j,
            "llc": self.llc_j,
            "extended_llc": self.extended_llc_j,
            "l1": self.l1_j,
            "noc": self.noc_j,
            "core_dynamic": self.core_dynamic_j,
            "static": self.static_j,
            "morpheus_controller": self.morpheus_controller_j,
        }


class EnergyModel:
    """Computes GPU energy and performance/watt from simulation activity counts."""

    def __init__(self, energies: ComponentEnergies | None = None) -> None:
        self.energies = energies or DEFAULT_ENERGIES

    def compute(
        self,
        execution_cycles: float,
        instructions: float,
        dram_bytes: float,
        llc_bytes: float,
        extended_llc_bytes: float,
        l1_bytes: float,
        noc_bytes: float,
        num_compute_sms: int,
        num_cache_sms: int = 0,
        num_gated_sms: int = 0,
        morpheus_enabled: bool = False,
    ) -> EnergyBreakdown:
        """Compute the energy breakdown of one simulated execution.

        Args:
            execution_cycles: Modelled execution time in core cycles.
            instructions: Application instructions executed.
            dram_bytes: Bytes moved to/from off-chip DRAM.
            llc_bytes: Bytes served by the conventional LLC.
            extended_llc_bytes: Bytes served by the extended LLC.
            l1_bytes: Bytes served by the per-SM L1 caches.
            noc_bytes: Bytes carried by the interconnect.
            num_compute_sms: SMs executing application threads.
            num_cache_sms: SMs in cache mode (Morpheus).
            num_gated_sms: Power-gated SMs (IBL-style baselines).
            morpheus_enabled: Whether the Morpheus controller is powered.
        """
        if execution_cycles < 0:
            raise ValueError("execution_cycles must be non-negative")
        e = self.energies
        pj_to_j = 1e-12

        seconds = execution_cycles / (e.core_clock_ghz * 1e9)
        static_watts = (
            e.base_static_watts
            + num_compute_sms * e.sm_static_watts
            + num_cache_sms * e.sm_cache_mode_watts
            # Power-gated SMs contribute (almost) nothing.
            + num_gated_sms * 0.02 * e.sm_static_watts
        )
        controller_j = (e.morpheus_controller_watts * seconds) if morpheus_enabled else 0.0

        return EnergyBreakdown(
            dram_j=dram_bytes * e.dram_pj_per_byte * pj_to_j,
            llc_j=llc_bytes * e.llc_pj_per_byte * pj_to_j,
            extended_llc_j=extended_llc_bytes * e.extended_llc_pj_per_byte * pj_to_j,
            l1_j=l1_bytes * e.l1_pj_per_byte * pj_to_j,
            noc_j=noc_bytes * e.noc_pj_per_byte * pj_to_j,
            core_dynamic_j=instructions * e.core_dynamic_pj_per_instruction * pj_to_j,
            static_j=static_watts * seconds,
            morpheus_controller_j=controller_j,
        )

    def performance_per_watt(
        self, ipc: float, breakdown: EnergyBreakdown, execution_cycles: float
    ) -> float:
        """IPC per watt for a run with the given energy breakdown."""
        if execution_cycles <= 0:
            return 0.0
        seconds = execution_cycles / (self.energies.core_clock_ghz * 1e9)
        if seconds <= 0:
            return 0.0
        watts = breakdown.total_j / seconds
        if watts <= 0:
            return 0.0
        return ipc / watts

    def average_power_watts(self, breakdown: EnergyBreakdown, execution_cycles: float) -> float:
        """Average GPU power over the run."""
        if execution_cycles <= 0:
            return 0.0
        seconds = execution_cycles / (self.energies.core_clock_ghz * 1e9)
        return breakdown.total_j / seconds if seconds > 0 else 0.0

    def morpheus_controller_power_fraction(self, total_watts: float) -> float:
        """Fraction of total GPU power consumed by the Morpheus controller (§7.5)."""
        if total_watts <= 0:
            return 0.0
        return self.energies.morpheus_controller_watts / total_watts
