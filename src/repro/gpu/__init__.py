"""GPU core substrate: configuration, SMs, warps, kernels and scheduling."""

from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.gpu.kernel import KernelLaunch, ThreadBlock
from repro.gpu.scheduler import CTAScheduler, TwoLevelWarpScheduler
from repro.gpu.sm import CoreMode, StreamingMultiprocessor
from repro.gpu.warp import Warp, WarpState

__all__ = [
    "CTAScheduler",
    "CoreMode",
    "GPUConfig",
    "KernelLaunch",
    "RTX3080_CONFIG",
    "StreamingMultiprocessor",
    "ThreadBlock",
    "TwoLevelWarpScheduler",
    "Warp",
    "WarpState",
]
