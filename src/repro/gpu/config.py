"""GPU hardware configuration (Table 1 of the paper).

The baseline models an NVIDIA RTX 3080 (GA102): 68 SMs, a two-level warp
scheduler, a 320-bit GDDR6X interface with 10 GiB of memory, a 5 MiB
conventional LLC split over 10 partitions, 128 KiB of unified L1/shared
memory per SM and a 256 KiB register file per SM.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.interconnect.network import InterconnectConfig
from repro.memory.dram import DRAMConfig
from repro.memory.llc import LLCConfig

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class GPUConfig:
    """Top-level GPU configuration.

    Attributes mirror Table 1 plus the per-component configs needed by the
    simulator.  All latency values are in core cycles at ``core_clock_ghz``.
    """

    name: str = "rtx3080"
    num_sms: int = 68
    core_clock_ghz: float = 1.44
    warps_per_sm: int = 48
    threads_per_warp: int = 32
    max_threads_per_sm: int = 1536
    cuda_cores_per_sm: int = 128
    register_file_bytes_per_sm: int = 256 * KIB
    registers_per_warp: int = 42
    l1_shared_bytes_per_sm: int = 128 * KIB
    l1_cache_bytes_per_sm: int = 64 * KIB
    l1_hit_latency_cycles: float = 32.0
    warp_scheduler: str = "two-level"
    block_size: int = 128

    llc: LLCConfig = field(default_factory=LLCConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.warps_per_sm <= 0:
            raise ValueError("warps_per_sm must be positive")
        if self.threads_per_warp <= 0:
            raise ValueError("threads_per_warp must be positive")
        if self.llc.num_partitions != self.interconnect.num_partitions:
            raise ValueError(
                "LLC and interconnect must agree on the number of partitions "
                f"({self.llc.num_partitions} vs {self.interconnect.num_partitions})"
            )

    # -- derived quantities --------------------------------------------------

    @property
    def num_llc_partitions(self) -> int:
        """Number of LLC partitions / memory controllers."""
        return self.llc.num_partitions

    @property
    def peak_ipc_per_sm(self) -> float:
        """Peak instructions per cycle of one SM (one per CUDA core, SIMD width 32)."""
        return self.cuda_cores_per_sm / self.threads_per_warp

    @property
    def peak_dram_bandwidth_gbps(self) -> float:
        """Aggregate off-chip bandwidth."""
        return self.dram.total_bandwidth_gbps

    @property
    def total_register_file_bytes(self) -> int:
        """Register file capacity across all SMs."""
        return self.register_file_bytes_per_sm * self.num_sms

    # -- derived configurations ----------------------------------------------

    def with_num_sms(self, num_sms: int) -> "GPUConfig":
        """Return a copy restricted to ``num_sms`` SMs (core scaling studies)."""
        if not 1 <= num_sms <= self.num_sms:
            raise ValueError(f"num_sms must be in [1, {self.num_sms}], got {num_sms}")
        return replace(self, num_sms=num_sms)

    def with_llc_scale(self, factor: float) -> "GPUConfig":
        """Return a copy with the conventional LLC scaled by ``factor`` (2x / 4x studies)."""
        return replace(self, llc=self.llc.scaled_capacity(factor))

    def with_llc_capacity(self, capacity_bytes: int) -> "GPUConfig":
        """Return a copy with an exact conventional LLC capacity."""
        return replace(self, llc=self.llc.with_capacity(capacity_bytes))

    def with_frequency_boost(self, factor: float) -> "GPUConfig":
        """Return a copy with memory-system clocks boosted by ``factor``.

        Models the Frequency-Boost baseline: interconnect, LLC and DRAM run
        ``factor``x faster (latencies shrink, bandwidths grow).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        boosted_llc = LLCConfig(
            capacity_bytes=self.llc.capacity_bytes,
            num_partitions=self.llc.num_partitions,
            block_size=self.llc.block_size,
            associativity=self.llc.associativity,
            hit_latency_cycles=self.llc.hit_latency_cycles / factor,
            bandwidth_gbps_per_partition=self.llc.bandwidth_gbps_per_partition * factor,
            core_clock_ghz=self.llc.core_clock_ghz,
            mshr_entries=self.llc.mshr_entries,
        )
        boosted_noc = InterconnectConfig(
            num_partitions=self.interconnect.num_partitions,
            one_way_latency_cycles=self.interconnect.one_way_latency_cycles / factor,
            bytes_per_cycle_per_port=self.interconnect.bytes_per_cycle_per_port * factor,
            congestion_knee=self.interconnect.congestion_knee,
            max_congestion_penalty=self.interconnect.max_congestion_penalty,
        )
        return replace(
            self,
            llc=boosted_llc,
            dram=self.dram.scaled(factor),
            interconnect=boosted_noc,
        )

    def with_extra_l1(self, extra_bytes_per_sm: int) -> "GPUConfig":
        """Return a copy with ``extra_bytes_per_sm`` added to each SM's L1.

        Models the Unified-SM-Mem baseline, which folds unused register file
        space into the L1 data cache.
        """
        if extra_bytes_per_sm < 0:
            raise ValueError("extra_bytes_per_sm must be non-negative")
        return replace(
            self,
            l1_cache_bytes_per_sm=self.l1_cache_bytes_per_sm + extra_bytes_per_sm,
            l1_shared_bytes_per_sm=self.l1_shared_bytes_per_sm + extra_bytes_per_sm,
        )


RTX3080_CONFIG = GPUConfig()
"""The default baseline configuration used throughout the reproduction."""
