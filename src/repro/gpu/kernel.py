"""GPU kernel launches and thread blocks (CTAs).

A GPU program consists of kernels launched as grids of thread blocks
(Cooperative Thread Arrays).  The CTA scheduler assigns CTAs to SMs in
compute mode; Morpheus additionally launches the *extended LLC kernel* (a
special helper kernel, see :mod:`repro.core.extended_llc`) on SMs in cache
mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class ThreadBlock:
    """One CTA: a block of threads assigned to a single SM as a unit."""

    cta_id: int
    num_threads: int = 256

    def __post_init__(self) -> None:
        if self.cta_id < 0:
            raise ValueError("cta_id must be non-negative")
        if self.num_threads <= 0:
            raise ValueError("num_threads must be positive")

    def num_warps(self, threads_per_warp: int = 32) -> int:
        """Number of warps needed to run this CTA."""
        if threads_per_warp <= 0:
            raise ValueError("threads_per_warp must be positive")
        return math.ceil(self.num_threads / threads_per_warp)


@dataclass(frozen=True)
class KernelLaunch:
    """A kernel launch: a grid of identical thread blocks.

    Attributes:
        name: Kernel name (usually the application name).
        grid_size: Number of CTAs in the grid.
        cta_threads: Threads per CTA.
        is_helper: True for Morpheus's extended LLC kernel, which is not part
            of the application and is excluded from application IPC.
    """

    name: str
    grid_size: int
    cta_threads: int = 256
    is_helper: bool = False

    def __post_init__(self) -> None:
        if self.grid_size <= 0:
            raise ValueError("grid_size must be positive")
        if self.cta_threads <= 0:
            raise ValueError("cta_threads must be positive")

    @property
    def total_threads(self) -> int:
        """Total number of threads launched."""
        return self.grid_size * self.cta_threads

    def thread_blocks(self) -> List[ThreadBlock]:
        """Materialize the grid as a list of CTAs."""
        return [ThreadBlock(cta_id=i, num_threads=self.cta_threads) for i in range(self.grid_size)]

    def warps_per_cta(self, threads_per_warp: int = 32) -> int:
        """Warps per CTA at the given warp width."""
        return ThreadBlock(0, self.cta_threads).num_warps(threads_per_warp)

    def total_warps(self, threads_per_warp: int = 32) -> int:
        """Total warps across the whole grid."""
        return self.grid_size * self.warps_per_cta(threads_per_warp)
