"""Warp and CTA scheduling.

Two schedulers are modelled:

* :class:`TwoLevelWarpScheduler` — the baseline warp scheduler (Table 1 cites
  the two-level scheduler of Narasiman et al. / Gebhart et al.): warps are
  split into an *active* set that is considered for issue every cycle and a
  *pending* set; warps move between sets when they block on or return from
  long-latency memory operations.
* :class:`CTAScheduler` — a simple round-robin CTA-to-SM assigner that fills
  compute-mode SMs up to their warp capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.gpu.kernel import KernelLaunch, ThreadBlock
from repro.gpu.warp import Warp, WarpState


class TwoLevelWarpScheduler:
    """Two-level round-robin warp scheduler.

    Args:
        warps: All warps resident on the SM.
        active_set_size: Maximum number of warps in the active (level-one) set.
    """

    def __init__(self, warps: Sequence[Warp], active_set_size: int = 8) -> None:
        if active_set_size <= 0:
            raise ValueError("active_set_size must be positive")
        self.active_set_size = active_set_size
        self._active: Deque[Warp] = deque()
        self._pending: Deque[Warp] = deque(warps)
        self._refill_active()

    def _refill_active(self) -> None:
        while len(self._active) < self.active_set_size and self._pending:
            candidate = self._pending.popleft()
            if candidate.is_finished:
                continue
            self._active.append(candidate)

    @property
    def active_warps(self) -> List[Warp]:
        """Warps currently in the active set (issue candidates)."""
        return list(self._active)

    @property
    def pending_warps(self) -> List[Warp]:
        """Warps currently in the pending set."""
        return list(self._pending)

    def select_warp(self, now_cycle: float = 0.0) -> Optional[Warp]:
        """Pick the next ready warp to issue, rotating the active set.

        Warps whose outstanding memory request has completed (``wakeup_cycle``
        reached) are woken before selection.  Returns ``None`` when no warp is
        ready this cycle.
        """
        self._wake_ready(now_cycle)
        for _ in range(len(self._active)):
            warp = self._active[0]
            self._active.rotate(-1)
            if warp.is_finished:
                self._demote(warp)
                continue
            if warp.is_ready:
                return warp
            if warp.state == WarpState.WAITING_MEMORY:
                self._demote(warp)
        return None

    def _wake_ready(self, now_cycle: float) -> None:
        for warp in list(self._pending):
            if warp.state == WarpState.WAITING_MEMORY and warp.wakeup_cycle <= now_cycle:
                if warp.pending_request_id is not None:
                    warp.complete_memory_request(warp.pending_request_id)
                else:
                    warp.state = WarpState.READY
        self._refill_active()

    def _demote(self, warp: Warp) -> None:
        try:
            self._active.remove(warp)
        except ValueError:
            return
        if not warp.is_finished:
            self._pending.append(warp)
        self._refill_active()

    def all_finished(self) -> bool:
        """True when every scheduled warp has retired."""
        return all(w.is_finished for w in list(self._active) + list(self._pending))


@dataclass
class CTAAssignment:
    """Record of one CTA placed on one SM."""

    cta: ThreadBlock
    sm_id: int


class CTAScheduler:
    """Round-robin CTA-to-SM assignment over the compute-mode SMs."""

    def __init__(self, compute_sm_ids: Sequence[int], warps_per_sm: int = 48) -> None:
        if not compute_sm_ids:
            raise ValueError("at least one compute-mode SM is required")
        if warps_per_sm <= 0:
            raise ValueError("warps_per_sm must be positive")
        self.compute_sm_ids = list(compute_sm_ids)
        self.warps_per_sm = warps_per_sm
        self._occupancy: Dict[int, int] = {sm_id: 0 for sm_id in self.compute_sm_ids}
        self._next = 0

    def assign(self, kernel: KernelLaunch, threads_per_warp: int = 32) -> List[CTAAssignment]:
        """Assign as many CTAs of ``kernel`` as fit concurrently.

        Returns the list of assignments of the first wave.  (Subsequent waves
        reuse the same SMs once earlier CTAs drain; the simulator models the
        steady state so only the first wave's shape matters.)
        """
        assignments: List[CTAAssignment] = []
        warps_needed = kernel.warps_per_cta(threads_per_warp)
        for cta in kernel.thread_blocks():
            placed = False
            for _ in range(len(self.compute_sm_ids)):
                sm_id = self.compute_sm_ids[self._next % len(self.compute_sm_ids)]
                self._next += 1
                if self._occupancy[sm_id] + warps_needed <= self.warps_per_sm:
                    self._occupancy[sm_id] += warps_needed
                    assignments.append(CTAAssignment(cta=cta, sm_id=sm_id))
                    placed = True
                    break
            if not placed:
                break
        return assignments

    def occupancy(self) -> Dict[int, int]:
        """Warps resident per SM."""
        return dict(self._occupancy)

    def release(self, sm_id: int, warps: int) -> None:
        """Return ``warps`` of capacity to ``sm_id`` when a CTA drains."""
        if sm_id not in self._occupancy:
            raise ValueError(f"unknown SM {sm_id}")
        self._occupancy[sm_id] = max(0, self._occupancy[sm_id] - warps)
