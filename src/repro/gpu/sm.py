"""Streaming multiprocessor (SM) model.

Each SM owns a private L1 data cache (unified with shared memory on Ampere),
a register file and a set of warps.  In Morpheus an SM is either in *compute
mode* (it executes application threads normally) or *cache mode* (it runs the
extended LLC kernel, lending its on-chip memories to the extended LLC; see
:mod:`repro.core.extended_llc`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.gpu.config import GPUConfig
from repro.gpu.warp import Warp
from repro.memory.cache import SetAssociativeCache
from repro.memory.mshr import MSHRFile
from repro.memory.request import MemoryRequest


class CoreMode(enum.Enum):
    """Execution mode of an SM in a Morpheus-enabled GPU."""

    COMPUTE = "compute"
    CACHE = "cache"


@dataclass
class SMStats:
    """Per-SM execution statistics."""

    instructions: int = 0
    memory_requests: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    active_cycles: float = 0.0

    @property
    def l1_hit_rate(self) -> float:
        """L1 hit rate over this SM's accesses."""
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0


class StreamingMultiprocessor:
    """One GPU core (SM).

    Args:
        sm_id: Index of the SM in the GPU.
        config: GPU configuration providing L1 size, warp count, etc.
        mode: Initial execution mode.
    """

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        mode: CoreMode = CoreMode.COMPUTE,
    ) -> None:
        if sm_id < 0:
            raise ValueError("sm_id must be non-negative")
        self.sm_id = sm_id
        self.config = config
        self.mode = mode
        l1_bytes = config.l1_cache_bytes_per_sm
        # Keep the L1 a clean multiple of block * ways.
        granule = config.block_size * 4
        l1_bytes = max(granule, (l1_bytes // granule) * granule)
        self.l1 = SetAssociativeCache(
            capacity_bytes=l1_bytes,
            block_size=config.block_size,
            associativity=4,
            name=f"l1-sm{sm_id}",
        )
        self.l1_mshrs = MSHRFile(num_entries=32)
        self.warps: List[Warp] = [Warp(warp_id=i) for i in range(config.warps_per_sm)]
        self.stats = SMStats()

    # -- mode management ----------------------------------------------------

    @property
    def is_compute_mode(self) -> bool:
        """True when the SM executes application threads."""
        return self.mode == CoreMode.COMPUTE

    @property
    def is_cache_mode(self) -> bool:
        """True when the SM runs the extended LLC kernel."""
        return self.mode == CoreMode.CACHE

    def set_mode(self, mode: CoreMode) -> None:
        """Switch execution mode; switching flushes the private L1."""
        if mode != self.mode:
            self.l1.flush()
            self.mode = mode

    # -- execution ----------------------------------------------------------

    def execute_instructions(self, count: int, cycles: float) -> None:
        """Account ``count`` instructions retired over ``cycles`` on this SM."""
        if count < 0 or cycles < 0:
            raise ValueError("count and cycles must be non-negative")
        self.stats.instructions += count
        self.stats.active_cycles += cycles

    def access_l1(self, request: MemoryRequest) -> Tuple[bool, Optional[int]]:
        """Access the private L1 on behalf of a compute-mode warp.

        Returns ``(hit, writeback_address)``; misses and dirty evictions must
        be forwarded toward the LLC by the caller (the simulator).
        """
        if not self.is_compute_mode:
            raise RuntimeError(
                f"SM {self.sm_id} is in cache mode; application accesses must not reach its L1"
            )
        hit, writeback = self.l1.access(request.address, is_write=request.is_write)
        self.stats.memory_requests += 1
        if hit:
            self.stats.l1_hits += 1
        else:
            self.stats.l1_misses += 1
        return hit, writeback

    # -- capacities exposed to the extended LLC kernel -----------------------

    def register_file_bytes(self) -> int:
        """Raw register file capacity of this SM."""
        return self.config.register_file_bytes_per_sm

    def unified_l1_shared_bytes(self) -> int:
        """Unified L1/shared-memory capacity of this SM."""
        return self.config.l1_shared_bytes_per_sm

    def reset(self) -> None:
        """Flush caches, reset warps and statistics."""
        self.l1.flush()
        self.l1.reset_stats()
        self.l1_mshrs.reset()
        self.warps = [Warp(warp_id=i) for i in range(self.config.warps_per_sm)]
        self.stats = SMStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamingMultiprocessor(sm_id={self.sm_id}, mode={self.mode.value})"
