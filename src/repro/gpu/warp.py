"""Warps: the SIMD execution granule of a GPU core.

Threads within a warp execute in lock step.  The simulator does not model
per-thread state; a warp is the unit of scheduling, of memory coalescing and
— in cache-mode SMs — the unit that owns one extended LLC set (one warp per
set, per §4.2 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class WarpState(enum.Enum):
    """Scheduling state of a warp."""

    READY = "ready"
    WAITING_MEMORY = "waiting_memory"
    BARRIER = "barrier"
    FINISHED = "finished"


@dataclass
class Warp:
    """One warp of 32 threads.

    Attributes:
        warp_id: Index of the warp within its SM.
        cta_id: Index of the thread block (CTA) the warp belongs to.
        state: Current scheduling state.
        instructions_executed: Dynamic instruction count attributed to this warp.
        memory_requests_issued: Memory requests this warp has injected.
        pending_request_id: The id of the outstanding memory request (if any);
            a warp issues at most one outstanding extended-LLC request at a
            time when acting as an extended-LLC-kernel warp.
        wakeup_cycle: Cycle at which a memory-waiting warp becomes ready again.
    """

    warp_id: int
    cta_id: int = 0
    state: WarpState = WarpState.READY
    instructions_executed: int = 0
    memory_requests_issued: int = 0
    pending_request_id: Optional[int] = None
    wakeup_cycle: float = 0.0

    def __post_init__(self) -> None:
        if self.warp_id < 0:
            raise ValueError("warp_id must be non-negative")

    @property
    def is_ready(self) -> bool:
        """Whether the warp can be issued this cycle."""
        return self.state == WarpState.READY

    @property
    def is_finished(self) -> bool:
        """Whether the warp has retired all of its instructions."""
        return self.state == WarpState.FINISHED

    def issue_memory_request(self, request_id: int, wakeup_cycle: float) -> None:
        """Mark the warp as blocked on an outstanding memory request."""
        if self.state == WarpState.FINISHED:
            raise RuntimeError("cannot issue from a finished warp")
        if self.pending_request_id is not None:
            raise RuntimeError(
                f"warp {self.warp_id} already has outstanding request {self.pending_request_id}"
            )
        self.pending_request_id = request_id
        self.state = WarpState.WAITING_MEMORY
        self.wakeup_cycle = wakeup_cycle
        self.memory_requests_issued += 1

    def complete_memory_request(self, request_id: int) -> None:
        """Unblock the warp when its outstanding request completes."""
        if self.pending_request_id != request_id:
            raise RuntimeError(
                f"warp {self.warp_id} completing unknown request {request_id} "
                f"(pending: {self.pending_request_id})"
            )
        self.pending_request_id = None
        if self.state == WarpState.WAITING_MEMORY:
            self.state = WarpState.READY

    def execute_instructions(self, count: int) -> None:
        """Retire ``count`` instructions on behalf of this warp."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.state == WarpState.FINISHED:
            raise RuntimeError("cannot execute on a finished warp")
        self.instructions_executed += count

    def finish(self) -> None:
        """Mark the warp as having completed its work."""
        self.state = WarpState.FINISHED
        self.pending_request_id = None
