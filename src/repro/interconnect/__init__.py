"""On-chip interconnection network between SMs and LLC partitions."""

from repro.interconnect.crossbar import CrossbarLink, CrossbarSwitch
from repro.interconnect.network import InterconnectConfig, InterconnectNetwork, NetworkStats

__all__ = [
    "CrossbarLink",
    "CrossbarSwitch",
    "InterconnectConfig",
    "InterconnectNetwork",
    "NetworkStats",
]
