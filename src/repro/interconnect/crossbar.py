"""Crossbar building blocks used by the interconnect model.

GPUs connect SMs to LLC/memory partitions through a crossbar-like network.
The Morpheus evaluation cares about three interconnect effects:

* the baseline one-way traversal latency between an SM and an LLC partition,
* the *extra* round trip that extended-LLC requests pay (Morpheus controller
  -> cache-mode SM -> Morpheus controller, Figure 5), and
* congestion: Morpheus roughly doubles NoC load (§7.4), inflating average
  latency by a few percent without saturating the network.

:class:`CrossbarLink` models one direction of one port with a bandwidth
account, and :class:`CrossbarSwitch` groups the links of a port pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CrossbarLink:
    """A single directed link with finite bandwidth.

    Args:
        bytes_per_cycle: Peak payload bandwidth of the link.
        base_latency_cycles: Unloaded traversal latency.
    """

    bytes_per_cycle: float
    base_latency_cycles: float
    busy_until_cycle: float = 0.0
    bytes_transferred: int = 0
    flits_transferred: int = 0

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if self.base_latency_cycles < 0:
            raise ValueError("base_latency_cycles must be non-negative")

    def transfer(self, size_bytes: int, now_cycle: float) -> float:
        """Send ``size_bytes`` over the link starting no earlier than ``now_cycle``.

        Returns the total latency (queueing + traversal + serialization).
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        start = max(now_cycle, self.busy_until_cycle)
        queue_delay = start - now_cycle
        serialization = size_bytes / self.bytes_per_cycle
        self.busy_until_cycle = start + serialization
        self.bytes_transferred += size_bytes
        self.flits_transferred += 1
        return queue_delay + self.base_latency_cycles + serialization

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of link bandwidth consumed over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.bytes_transferred / (self.bytes_per_cycle * elapsed_cycles))

    def reset(self) -> None:
        """Clear link occupancy and counters."""
        self.busy_until_cycle = 0.0
        self.bytes_transferred = 0
        self.flits_transferred = 0


class CrossbarSwitch:
    """A pair of request/response links attached to one network endpoint."""

    def __init__(self, bytes_per_cycle: float, base_latency_cycles: float) -> None:
        self.request_link = CrossbarLink(bytes_per_cycle, base_latency_cycles)
        self.response_link = CrossbarLink(bytes_per_cycle, base_latency_cycles)

    def send_request(self, size_bytes: int, now_cycle: float) -> float:
        """Forward a request flit; returns latency in cycles."""
        return self.request_link.transfer(size_bytes, now_cycle)

    def send_response(self, size_bytes: int, now_cycle: float) -> float:
        """Forward a response flit; returns latency in cycles."""
        return self.response_link.transfer(size_bytes, now_cycle)

    def total_bytes(self) -> int:
        """Bytes moved in both directions."""
        return self.request_link.bytes_transferred + self.response_link.bytes_transferred

    def reset(self) -> None:
        """Reset both directions."""
        self.request_link.reset()
        self.response_link.reset()
