"""The SM <-> LLC-partition interconnection network.

The network connects every SM to every LLC partition.  We model it as one
:class:`~repro.interconnect.crossbar.CrossbarSwitch` per LLC partition (the
partition side is the bandwidth bottleneck in GPUs) plus a load-dependent
latency term, and we track the statistics the paper reports in §7.4:
injection rate, throughput, and average latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.interconnect.crossbar import CrossbarSwitch


@dataclass(frozen=True)
class InterconnectConfig:
    """Interconnect parameters.

    The one-way latency default (~60 cycles, i.e. ~40 ns at 1.44 GHz)
    reflects the gap between the raw LLC array latency and the SM-observed
    LLC latency reported for Ampere-class GPUs.
    """

    num_partitions: int = 10
    one_way_latency_cycles: float = 60.0
    bytes_per_cycle_per_port: float = 208.0
    congestion_knee: float = 0.7
    max_congestion_penalty: float = 0.5

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.one_way_latency_cycles < 0:
            raise ValueError("one_way_latency_cycles must be non-negative")
        if self.bytes_per_cycle_per_port <= 0:
            raise ValueError("bytes_per_cycle_per_port must be positive")
        if not 0.0 < self.congestion_knee <= 1.0:
            raise ValueError("congestion_knee must be in (0, 1]")
        if self.max_congestion_penalty < 0:
            raise ValueError("max_congestion_penalty must be non-negative")


@dataclass
class NetworkStats:
    """Aggregate interconnect statistics (the §7.4 metrics)."""

    flits_injected: int = 0
    bytes_injected: int = 0
    total_latency_cycles: float = 0.0
    traversals: int = 0

    @property
    def average_latency_cycles(self) -> float:
        """Average per-traversal latency (0.0 when nothing was sent)."""
        if self.traversals == 0:
            return 0.0
        return self.total_latency_cycles / self.traversals

    def injection_rate(self, elapsed_cycles: float) -> float:
        """Flits injected per cycle over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.flits_injected / elapsed_cycles

    def throughput_bytes_per_cycle(self, elapsed_cycles: float) -> float:
        """Payload bytes delivered per cycle over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.bytes_injected / elapsed_cycles


class InterconnectNetwork:
    """Crossbar-style network between SMs and LLC partitions.

    The same network also carries Morpheus's extended-LLC traffic (controller
    to cache-mode SM and back), so Morpheus traversals simply call
    :meth:`traverse` one extra round trip.
    """

    def __init__(self, config: InterconnectConfig | None = None) -> None:
        self.config = config or InterconnectConfig()
        self._ports: List[CrossbarSwitch] = [
            CrossbarSwitch(self.config.bytes_per_cycle_per_port, self.config.one_way_latency_cycles)
            for _ in range(self.config.num_partitions)
        ]
        self.stats = NetworkStats()

    def _congestion_penalty(self, port: CrossbarSwitch, elapsed_cycles: float) -> float:
        """Latency multiplier (>= 1.0) from port utilization beyond the knee."""
        if elapsed_cycles <= 0:
            return 1.0
        utilization = port.request_link.utilization(elapsed_cycles)
        if utilization <= self.config.congestion_knee:
            return 1.0
        over = (utilization - self.config.congestion_knee) / (1.0 - self.config.congestion_knee)
        return 1.0 + over * self.config.max_congestion_penalty

    def traverse(
        self,
        partition_id: int,
        size_bytes: int,
        now_cycle: float,
        response_bytes: int = 128,
        elapsed_cycles: float = 0.0,
    ) -> float:
        """Send a request to ``partition_id`` and its response back.

        Returns the combined round-trip latency in cycles.  ``elapsed_cycles``
        (total simulated time so far) feeds the congestion model.
        """
        if not 0 <= partition_id < self.config.num_partitions:
            raise ValueError(f"partition_id {partition_id} out of range")
        port = self._ports[partition_id]
        penalty = self._congestion_penalty(port, elapsed_cycles)
        request_latency = port.send_request(size_bytes, now_cycle) * penalty
        response_latency = port.send_response(response_bytes, now_cycle + request_latency) * penalty

        total = request_latency + response_latency
        self.stats.flits_injected += 2
        self.stats.bytes_injected += size_bytes + response_bytes
        self.stats.total_latency_cycles += total
        self.stats.traversals += 1
        return total

    def one_way(self, partition_id: int, size_bytes: int, now_cycle: float) -> float:
        """Send a single one-way flit (e.g. a writeback that needs no response)."""
        if not 0 <= partition_id < self.config.num_partitions:
            raise ValueError(f"partition_id {partition_id} out of range")
        port = self._ports[partition_id]
        latency = port.send_request(size_bytes, now_cycle)
        self.stats.flits_injected += 1
        self.stats.bytes_injected += size_bytes
        self.stats.total_latency_cycles += latency
        self.stats.traversals += 1
        return latency

    def total_load_bytes(self) -> int:
        """Total payload carried by the network in both directions."""
        return sum(port.total_bytes() for port in self._ports)

    def reset(self) -> None:
        """Clear all ports and statistics."""
        for port in self._ports:
            port.reset()
        self.stats = NetworkStats()
