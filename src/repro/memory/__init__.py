"""Memory-hierarchy substrate: requests, caches, MSHRs, the banked LLC and DRAM.

This subpackage provides the building blocks of the baseline GPU memory
hierarchy that Morpheus extends:

* :mod:`repro.memory.request` -- memory request/response records that flow
  through every component of the simulated hierarchy.
* :mod:`repro.memory.replacement` -- replacement policies (LRU and friends).
* :mod:`repro.memory.cache` -- a generic set-associative cache model used for
  the per-SM L1 caches and the conventional LLC slices.
* :mod:`repro.memory.mshr` -- miss status holding registers used to merge
  outstanding misses.
* :mod:`repro.memory.address_mapping` -- static address interleaving across
  LLC partitions and DRAM channels.
* :mod:`repro.memory.llc` -- the banked conventional last level cache.
* :mod:`repro.memory.dram` -- a GDDR6X-style off-chip DRAM model.
"""

from repro.memory.address_mapping import AddressMapping
from repro.memory.cache import CacheBlock, CacheSet, CacheStats, SetAssociativeCache
from repro.memory.dram import DRAMConfig, DRAMModel
from repro.memory.llc import LLCPartition, BankedLLC
from repro.memory.mshr import MSHRFile
from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_replacement_policy,
)
from repro.memory.request import AccessType, MemoryRequest, MemoryResponse, RequestOrigin

__all__ = [
    "AccessType",
    "AddressMapping",
    "BankedLLC",
    "CacheBlock",
    "CacheSet",
    "CacheStats",
    "DRAMConfig",
    "DRAMModel",
    "FIFOPolicy",
    "LLCPartition",
    "LRUPolicy",
    "MSHRFile",
    "MemoryRequest",
    "MemoryResponse",
    "RandomPolicy",
    "ReplacementPolicy",
    "RequestOrigin",
    "SetAssociativeCache",
    "make_replacement_policy",
]
