"""Static address interleaving across LLC partitions and DRAM channels.

GPUs stripe the physical address space across LLC partitions (each colocated
with a memory controller) at cache-block granularity.  The same mapping is
used by the baseline and by Morpheus; Morpheus adds a *second* level of
separation inside the partition (see
:mod:`repro.core.address_separation`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AddressMapping:
    """Block-interleaved mapping of addresses onto partitions and channels.

    Args:
        num_partitions: Number of LLC partitions (10 on an RTX 3080).
        block_size: Interleaving granularity in bytes (one cache block).
        num_channels: Number of DRAM channels; defaults to one per partition.
    """

    num_partitions: int = 10
    block_size: int = 128
    num_channels: int = 0

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.block_size <= 0 or self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if self.num_channels < 0:
            raise ValueError("num_channels must be non-negative")
        if self.num_channels == 0:
            object.__setattr__(self, "num_channels", self.num_partitions)

    def block_number(self, address: int) -> int:
        """Global cache-block number of a byte address."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return address // self.block_size

    def partition_of(self, address: int) -> int:
        """LLC partition responsible for ``address``."""
        return self.block_number(address) % self.num_partitions

    def channel_of(self, address: int) -> int:
        """DRAM channel responsible for ``address``."""
        return self.block_number(address) % self.num_channels

    def partition_local_block(self, address: int) -> int:
        """Index of the block within its partition's slice of the address space."""
        return self.block_number(address) // self.num_partitions

    def addresses_for_partition(self, partition: int, count: int, start_block: int = 0) -> list:
        """Generate ``count`` block addresses that map to ``partition``.

        Useful in tests and microbenchmarks that need partition-local streams.
        """
        if not 0 <= partition < self.num_partitions:
            raise ValueError(f"partition {partition} out of range")
        if count < 0:
            raise ValueError("count must be non-negative")
        return [
            (start_block + i) * self.num_partitions * self.block_size + partition * self.block_size
            for i in range(count)
        ]
