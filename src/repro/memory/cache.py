"""A generic set-associative cache model.

This is the workhorse structure behind both the per-SM L1 caches and the
conventional LLC slices.  It is a *functional* model: it tracks tags, valid
and dirty bits and replacement state, and reports hits, misses and dirty
evictions.  Timing is layered on top by the components that own a cache
(:mod:`repro.memory.llc`, :mod:`repro.gpu.sm`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.replacement import ReplacementPolicy, make_replacement_policy


@dataclass
class CacheBlock:
    """One cache block: tag plus valid/dirty metadata."""

    tag: int
    valid: bool = True
    dirty: bool = False

    def __post_init__(self) -> None:
        if self.tag < 0:
            raise ValueError("tag must be non-negative")


@dataclass
class CacheStats:
    """Aggregate access statistics for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    fills: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0.0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new :class:`CacheStats` summing self and ``other``."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            dirty_evictions=self.dirty_evictions + other.dirty_evictions,
            fills=self.fills + other.fills,
            writes=self.writes + other.writes,
        )


class CacheSet:
    """One set of a set-associative cache."""

    def __init__(self, associativity: int, policy: str = "lru") -> None:
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self.associativity = associativity
        self._ways: List[Optional[CacheBlock]] = [None] * associativity
        self._policy: ReplacementPolicy = make_replacement_policy(policy, associativity)

    def lookup(self, tag: int) -> Optional[int]:
        """Return the way holding ``tag`` or ``None`` on a miss (no side effects)."""
        for way, block in enumerate(self._ways):
            if block is not None and block.valid and block.tag == tag:
                return way
        return None

    def access(self, tag: int, is_write: bool) -> bool:
        """Perform a lookup, updating replacement and dirty state on a hit.

        Returns ``True`` on a hit.
        """
        way = self.lookup(tag)
        if way is None:
            return False
        self._policy.on_access(way)
        if is_write:
            block = self._ways[way]
            assert block is not None
            block.dirty = True
        return True

    def fill(self, tag: int, dirty: bool = False) -> Optional[CacheBlock]:
        """Install ``tag`` into the set, returning the evicted block if any.

        If the tag is already present the existing block is refreshed in
        place and ``None`` is returned.
        """
        existing = self.lookup(tag)
        if existing is not None:
            block = self._ways[existing]
            assert block is not None
            block.dirty = block.dirty or dirty
            self._policy.on_access(existing)
            return None

        victim_block: Optional[CacheBlock] = None
        free_way = next((w for w, blk in enumerate(self._ways) if blk is None or not blk.valid), None)
        if free_way is None:
            valid_ways = [w for w, blk in enumerate(self._ways) if blk is not None and blk.valid]
            victim_way = self._policy.victim(valid_ways)
            victim_block = self._ways[victim_way]
            self._policy.on_invalidate(victim_way)
            free_way = victim_way

        self._ways[free_way] = CacheBlock(tag=tag, valid=True, dirty=dirty)
        self._policy.on_insert(free_way)
        return victim_block

    def invalidate(self, tag: int) -> Optional[CacheBlock]:
        """Remove ``tag`` from the set, returning the invalidated block if present."""
        way = self.lookup(tag)
        if way is None:
            return None
        block = self._ways[way]
        self._ways[way] = None
        self._policy.on_invalidate(way)
        return block

    def occupancy(self) -> int:
        """Number of valid blocks currently in the set."""
        return sum(1 for blk in self._ways if blk is not None and blk.valid)

    def tags(self) -> List[int]:
        """Tags of all valid blocks in the set (arbitrary order)."""
        return [blk.tag for blk in self._ways if blk is not None and blk.valid]


class SetAssociativeCache:
    """A set-associative cache keyed by byte addresses.

    Args:
        capacity_bytes: Total data capacity.
        block_size: Cache block (line) size in bytes; must be a power of two.
        associativity: Number of ways per set.
        policy: Replacement policy name (``"lru"``, ``"fifo"``, ``"random"``).
        write_allocate: Whether write misses allocate a block (GPU L2s do).
        name: Optional label for diagnostics.
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int = 128,
        associativity: int = 16,
        policy: str = "lru",
        write_allocate: bool = True,
        name: str = "cache",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if capacity_bytes % (block_size * associativity):
            raise ValueError(
                "capacity_bytes must be a multiple of block_size * associativity "
                f"(got {capacity_bytes} with block {block_size} x {associativity} ways)"
            )
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.associativity = associativity
        self.policy_name = policy
        self.write_allocate = write_allocate
        self.name = name
        self.num_sets = capacity_bytes // (block_size * associativity)
        self._sets = [CacheSet(associativity, policy) for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- address helpers ---------------------------------------------------

    def set_index(self, address: int) -> int:
        """Set index for a byte address."""
        return (address // self.block_size) % self.num_sets

    def tag_for(self, address: int) -> int:
        """Tag for a byte address."""
        return address // (self.block_size * self.num_sets)

    def block_address(self, address: int) -> int:
        """Align ``address`` down to the containing cache block."""
        return address - (address % self.block_size)

    def _rebuild_address(self, tag: int, set_index: int) -> int:
        return (tag * self.num_sets + set_index) * self.block_size

    # -- operations --------------------------------------------------------

    def probe(self, address: int) -> bool:
        """Check for presence without updating any state."""
        set_index = self.set_index(address)
        return self._sets[set_index].lookup(self.tag_for(address)) is not None

    def access(self, address: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access the cache for a load or store.

        On a hit, replacement state is updated (and the block is marked dirty
        for writes) and ``(True, None)`` is returned.  On a miss the block is
        filled (for reads, and for writes when ``write_allocate`` is set) and
        ``(False, writeback_address)`` is returned where ``writeback_address``
        is the block address of a dirty victim that must be written back, or
        ``None`` when no dirty eviction occurred.
        """
        set_index = self.set_index(address)
        tag = self.tag_for(address)
        cache_set = self._sets[set_index]

        if is_write:
            self.stats.writes += 1

        if cache_set.access(tag, is_write):
            self.stats.hits += 1
            return True, None

        self.stats.misses += 1
        writeback: Optional[int] = None
        if not is_write or self.write_allocate:
            victim = cache_set.fill(tag, dirty=is_write)
            self.stats.fills += 1
            if victim is not None:
                self.stats.evictions += 1
                if victim.dirty:
                    self.stats.dirty_evictions += 1
                    writeback = self._rebuild_address(victim.tag, set_index)
        return False, writeback

    def fill(self, address: int, dirty: bool = False) -> Optional[int]:
        """Install a block without counting a demand access.

        Returns the block address of a dirty victim requiring writeback, if any.
        """
        set_index = self.set_index(address)
        cache_set = self._sets[set_index]
        victim = cache_set.fill(self.tag_for(address), dirty=dirty)
        self.stats.fills += 1
        if victim is None:
            return None
        self.stats.evictions += 1
        if victim.dirty:
            self.stats.dirty_evictions += 1
            return self._rebuild_address(victim.tag, set_index)
        return None

    def invalidate(self, address: int) -> bool:
        """Invalidate the block containing ``address``.  Returns True if present."""
        set_index = self.set_index(address)
        return self._sets[set_index].invalidate(self.tag_for(address)) is not None

    def flush(self) -> int:
        """Invalidate every block.  Returns the number of dirty blocks dropped."""
        dirty = 0
        for cache_set in self._sets:
            for tag in list(cache_set.tags()):
                block = cache_set.invalidate(tag)
                if block is not None and block.dirty:
                    dirty += 1
        return dirty

    def occupancy(self) -> int:
        """Total number of valid blocks resident in the cache."""
        return sum(cache_set.occupancy() for cache_set in self._sets)

    def occupancy_bytes(self) -> int:
        """Total bytes of valid data resident in the cache."""
        return self.occupancy() * self.block_size

    def reset_stats(self) -> None:
        """Zero the access statistics (contents are preserved)."""
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, capacity={self.capacity_bytes}, "
            f"block={self.block_size}, ways={self.associativity}, sets={self.num_sets})"
        )
