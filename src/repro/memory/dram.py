"""Off-chip GDDR6X DRAM model.

The model captures the two properties the Morpheus evaluation depends on:

* a long access latency (~600 ns on the RTX 3080 per the paper's Figure 5
  discussion and the Turing/Ampere microbenchmarking literature), and
* a finite per-channel bandwidth (320-bit GDDR6X interface, ~760 GB/s
  aggregate, split across the memory partitions).

Bandwidth is modelled with per-channel token-bucket style accounting: each
channel can serve ``bandwidth_bytes_per_cycle`` of payload per core cycle and
requests queue behind earlier ones on the same channel.  Row-buffer locality
is modelled as a hit probability that shaves a fraction of the core latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.memory.request import MemoryRequest


@dataclass(frozen=True)
class DRAMConfig:
    """Configuration of the off-chip memory system.

    Default values approximate the 10 GiB, 320-bit GDDR6X system of the
    NVIDIA RTX 3080 (Table 1 of the paper), expressed in *core cycles* of a
    1.44 GHz GPU clock.
    """

    num_channels: int = 10
    capacity_bytes: int = 10 * 1024 ** 3
    access_latency_cycles: float = 864.0        # ~600 ns at 1.44 GHz
    bandwidth_gbps_per_channel: float = 76.0    # ~760 GB/s aggregate / 10 channels
    core_clock_ghz: float = 1.44
    row_buffer_hit_rate: float = 0.45
    row_buffer_hit_latency_factor: float = 0.75
    block_size: int = 128

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if self.access_latency_cycles <= 0:
            raise ValueError("access_latency_cycles must be positive")
        if self.bandwidth_gbps_per_channel <= 0:
            raise ValueError("bandwidth_gbps_per_channel must be positive")
        if not 0.0 <= self.row_buffer_hit_rate <= 1.0:
            raise ValueError("row_buffer_hit_rate must be in [0, 1]")

    @property
    def bytes_per_cycle_per_channel(self) -> float:
        """Channel bandwidth expressed in bytes per core cycle."""
        return self.bandwidth_gbps_per_channel / self.core_clock_ghz

    @property
    def total_bandwidth_gbps(self) -> float:
        """Aggregate off-chip bandwidth in GB/s."""
        return self.bandwidth_gbps_per_channel * self.num_channels

    def scaled(self, frequency_factor: float) -> "DRAMConfig":
        """Return a config with bandwidth scaled and latency reduced by ``frequency_factor``.

        Used by the Frequency-Boost baseline, which raises memory-system
        clocks by 10-20 % using the power headroom of gated cores.
        """
        if frequency_factor <= 0:
            raise ValueError("frequency_factor must be positive")
        return DRAMConfig(
            num_channels=self.num_channels,
            capacity_bytes=self.capacity_bytes,
            access_latency_cycles=self.access_latency_cycles / frequency_factor,
            bandwidth_gbps_per_channel=self.bandwidth_gbps_per_channel * frequency_factor,
            core_clock_ghz=self.core_clock_ghz,
            row_buffer_hit_rate=self.row_buffer_hit_rate,
            row_buffer_hit_latency_factor=self.row_buffer_hit_latency_factor,
            block_size=self.block_size,
        )


@dataclass
class _ChannelState:
    """Bookkeeping for one DRAM channel."""

    busy_until_cycle: float = 0.0
    bytes_served: int = 0
    accesses: int = 0


class DRAMModel:
    """Latency/bandwidth model of the off-chip DRAM.

    The model is deliberately simple but captures queueing: a request to a
    channel cannot start before the channel has finished transferring the
    previous request's payload, so sustained demand beyond the channel
    bandwidth inflates effective latency — exactly the behaviour that makes
    memory-bound GPU kernels saturate.
    """

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        self._channels: List[_ChannelState] = [
            _ChannelState() for _ in range(self.config.num_channels)
        ]
        self.total_accesses = 0
        self.total_bytes = 0
        self._row_toggle = 0

    def channel_of(self, address: int) -> int:
        """Channel serving ``address`` (block-interleaved)."""
        return (address // self.config.block_size) % self.config.num_channels

    def access(self, request: MemoryRequest, now_cycle: float) -> float:
        """Serve ``request`` starting no earlier than ``now_cycle``.

        Returns the latency in cycles from ``now_cycle`` until the data is
        available (including any queueing delay on the channel).
        """
        channel_id = self.channel_of(request.address)
        channel = self._channels[channel_id]

        start = max(now_cycle, channel.busy_until_cycle)
        queue_delay = start - now_cycle

        core_latency = self.config.access_latency_cycles
        # Deterministic row-buffer locality: a fixed fraction of accesses hit
        # the open row and pay a reduced latency.
        self._row_toggle += 1
        hit_threshold = int(round(self.config.row_buffer_hit_rate * 100))
        if (self._row_toggle * 37) % 100 < hit_threshold:
            core_latency *= self.config.row_buffer_hit_latency_factor

        transfer_cycles = request.size_bytes / self.config.bytes_per_cycle_per_channel
        channel.busy_until_cycle = start + transfer_cycles
        channel.bytes_served += request.size_bytes
        channel.accesses += 1

        self.total_accesses += 1
        self.total_bytes += request.size_bytes

        return queue_delay + core_latency + transfer_cycles

    def bandwidth_utilization(self, elapsed_cycles: float) -> float:
        """Fraction of peak bandwidth used over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        peak_bytes = (
            self.config.bytes_per_cycle_per_channel
            * self.config.num_channels
            * elapsed_cycles
        )
        if peak_bytes == 0:
            return 0.0
        return min(1.0, self.total_bytes / peak_bytes)

    def per_channel_accesses(self) -> Dict[int, int]:
        """Accesses served by each channel."""
        return {i: ch.accesses for i, ch in enumerate(self._channels)}

    def reset(self) -> None:
        """Clear all channel state and counters."""
        for channel in self._channels:
            channel.busy_until_cycle = 0.0
            channel.bytes_served = 0
            channel.accesses = 0
        self.total_accesses = 0
        self.total_bytes = 0
        self._row_toggle = 0
