"""The banked conventional last level cache (LLC).

The RTX 3080 baseline has a 5 MiB LLC distributed over 10 partitions, each
colocated with a memory controller.  Each :class:`LLCPartition` owns one
set-associative slice plus an MSHR file and a simple bandwidth model
(~300 GB/s per partition per the paper's §5 discussion).  The
:class:`BankedLLC` stitches partitions together using the block-interleaved
:class:`~repro.memory.address_mapping.AddressMapping`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memory.address_mapping import AddressMapping
from repro.memory.cache import CacheStats, SetAssociativeCache
from repro.memory.mshr import MSHRFile
from repro.memory.request import MemoryRequest


@dataclass(frozen=True)
class LLCConfig:
    """Configuration for the conventional LLC."""

    capacity_bytes: int = 5 * 1024 * 1024
    num_partitions: int = 10
    block_size: int = 128
    associativity: int = 16
    hit_latency_cycles: float = 230.0       # ~160 ns at 1.44 GHz
    bandwidth_gbps_per_partition: float = 300.0
    core_clock_ghz: float = 1.44
    mshr_entries: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.capacity_bytes % self.num_partitions:
            raise ValueError("capacity_bytes must divide evenly across partitions")

    @property
    def partition_capacity_bytes(self) -> int:
        """Data capacity of one partition's slice."""
        return self.capacity_bytes // self.num_partitions

    @property
    def bytes_per_cycle_per_partition(self) -> float:
        """Partition bandwidth in bytes per core cycle."""
        return self.bandwidth_gbps_per_partition / self.core_clock_ghz

    def with_capacity(self, capacity_bytes: int) -> "LLCConfig":
        """Return a copy with a different total capacity (same banking)."""
        return LLCConfig(
            capacity_bytes=capacity_bytes,
            num_partitions=self.num_partitions,
            block_size=self.block_size,
            associativity=self.associativity,
            hit_latency_cycles=self.hit_latency_cycles,
            bandwidth_gbps_per_partition=self.bandwidth_gbps_per_partition,
            core_clock_ghz=self.core_clock_ghz,
            mshr_entries=self.mshr_entries,
        )

    def scaled_capacity(self, factor: float) -> "LLCConfig":
        """Return a copy with capacity scaled by ``factor`` (e.g. the 4x-LLC baseline)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        new_capacity = int(self.capacity_bytes * factor)
        # Keep the capacity a clean multiple of partition * ways * block.
        granule = self.num_partitions * self.associativity * self.block_size
        new_capacity = max(granule, (new_capacity // granule) * granule)
        return self.with_capacity(new_capacity)


class LLCPartition:
    """One LLC partition: a cache slice, MSHRs and a bandwidth account."""

    def __init__(self, partition_id: int, config: LLCConfig) -> None:
        self.partition_id = partition_id
        self.config = config
        capacity = config.partition_capacity_bytes
        granule = config.block_size * config.associativity
        capacity = max(granule, (capacity // granule) * granule)
        self.cache = SetAssociativeCache(
            capacity_bytes=capacity,
            block_size=config.block_size,
            associativity=config.associativity,
            name=f"llc-partition-{partition_id}",
        )
        self.mshrs = MSHRFile(num_entries=config.mshr_entries)
        self._busy_until_cycle = 0.0
        self.bytes_served = 0
        self.requests_served = 0

    def access(self, request: MemoryRequest, now_cycle: float) -> Tuple[bool, float, Optional[int]]:
        """Look up ``request`` in this partition's slice.

        Returns ``(hit, latency_cycles, writeback_address)`` where latency
        includes the partition queueing delay and ``writeback_address`` is a
        dirty victim needing writeback to DRAM (or ``None``).
        """
        start = max(now_cycle, self._busy_until_cycle)
        queue_delay = start - now_cycle

        hit, writeback = self.cache.access(request.address, is_write=request.is_write)

        service_cycles = request.size_bytes / self.config.bytes_per_cycle_per_partition
        self._busy_until_cycle = start + service_cycles
        self.bytes_served += request.size_bytes
        self.requests_served += 1

        latency = queue_delay + self.config.hit_latency_cycles
        return hit, latency, writeback

    def throughput_gbps(self, elapsed_cycles: float) -> float:
        """Achieved throughput of this partition in GB/s over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        bytes_per_cycle = self.bytes_served / elapsed_cycles
        return bytes_per_cycle * self.config.core_clock_ghz

    def reset(self) -> None:
        """Clear contents, MSHRs and counters."""
        self.cache.flush()
        self.cache.reset_stats()
        self.mshrs.reset()
        self._busy_until_cycle = 0.0
        self.bytes_served = 0
        self.requests_served = 0


class BankedLLC:
    """The full conventional LLC: all partitions plus the address mapping."""

    def __init__(self, config: LLCConfig | None = None) -> None:
        self.config = config or LLCConfig()
        self.mapping = AddressMapping(
            num_partitions=self.config.num_partitions, block_size=self.config.block_size
        )
        self.partitions: List[LLCPartition] = [
            LLCPartition(i, self.config) for i in range(self.config.num_partitions)
        ]

    def partition_for(self, address: int) -> LLCPartition:
        """Partition responsible for ``address``."""
        return self.partitions[self.mapping.partition_of(address)]

    def access(self, request: MemoryRequest, now_cycle: float = 0.0) -> Tuple[bool, float, Optional[int]]:
        """Route ``request`` to its partition and access the slice there."""
        return self.partition_for(request.address).access(request, now_cycle)

    def aggregate_stats(self) -> CacheStats:
        """Combined hit/miss statistics across all partitions."""
        stats = CacheStats()
        for partition in self.partitions:
            stats = stats.merge(partition.cache.stats)
        return stats

    def total_capacity_bytes(self) -> int:
        """Actual modelled capacity (sum of partition slices)."""
        return sum(p.cache.capacity_bytes for p in self.partitions)

    def throughput_gbps(self, elapsed_cycles: float) -> float:
        """Aggregate achieved LLC throughput in GB/s."""
        return sum(p.throughput_gbps(elapsed_cycles) for p in self.partitions)

    def reset(self) -> None:
        """Reset every partition."""
        for partition in self.partitions:
            partition.reset()
