"""Miss status holding registers (MSHRs).

An MSHR file tracks outstanding misses per cache so that multiple requests to
the same in-flight block are merged instead of generating duplicate off-chip
traffic.  The number of MSHR entries bounds the memory-level parallelism a
cache can sustain, which is one of the inputs to the bottleneck performance
model in :mod:`repro.sim.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.request import MemoryRequest


@dataclass
class MSHREntry:
    """One outstanding miss and the requests merged onto it."""

    block_address: int
    primary: MemoryRequest
    merged: List[MemoryRequest] = field(default_factory=list)

    @property
    def request_count(self) -> int:
        """Primary plus merged requests waiting on this block."""
        return 1 + len(self.merged)


class MSHRFile:
    """A fixed-capacity set of MSHR entries keyed by block address.

    Args:
        num_entries: Maximum number of distinct in-flight blocks.
        max_merged_per_entry: Maximum secondary requests merged per entry
            (matching typical GPU L1/L2 designs).
    """

    def __init__(self, num_entries: int = 64, max_merged_per_entry: int = 8) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if max_merged_per_entry < 0:
            raise ValueError("max_merged_per_entry must be non-negative")
        self.num_entries = num_entries
        self.max_merged_per_entry = max_merged_per_entry
        self._entries: Dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no new block can be tracked."""
        return len(self._entries) >= self.num_entries

    def lookup(self, block_address: int) -> Optional[MSHREntry]:
        """Return the entry tracking ``block_address`` if one exists."""
        return self._entries.get(block_address)

    def allocate(self, request: MemoryRequest, block_address: int) -> Optional[MSHREntry]:
        """Allocate or merge a miss for ``block_address``.

        Returns the entry on success, or ``None`` when the request must stall
        (MSHR file full, or the entry's merge capacity is exhausted).
        """
        entry = self._entries.get(block_address)
        if entry is not None:
            if len(entry.merged) >= self.max_merged_per_entry:
                self.stalls += 1
                return None
            entry.merged.append(request)
            self.merges += 1
            return entry
        if self.full:
            self.stalls += 1
            return None
        entry = MSHREntry(block_address=block_address, primary=request)
        self._entries[block_address] = entry
        self.allocations += 1
        return entry

    def release(self, block_address: int) -> List[MemoryRequest]:
        """Complete the miss for ``block_address`` and return all waiting requests."""
        entry = self._entries.pop(block_address, None)
        if entry is None:
            return []
        return [entry.primary, *entry.merged]

    def outstanding_blocks(self) -> List[int]:
        """Block addresses with misses currently in flight."""
        return list(self._entries)

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self.allocations = 0
        self.merges = 0
        self.stalls = 0
