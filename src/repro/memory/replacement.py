"""Cache replacement policies.

The conventional LLC, the per-SM L1 caches, and the extended LLC all use a
replacement policy object to decide which way of a set to evict.  The paper's
extended LLC kernel implements LRU with per-block counters held in the
metadata register (Algorithm 1); the conventional caches also use LRU.  FIFO
and random policies are provided for ablations and tests.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Iterable, List, Optional


class ReplacementPolicy(abc.ABC):
    """Tracks recency/insertion state for one cache set and picks victims.

    A policy instance manages ``associativity`` ways indexed ``0 ..
    associativity - 1``.  The cache informs the policy about insertions and
    accesses; the policy answers victim queries.
    """

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self.associativity = associativity

    @abc.abstractmethod
    def on_insert(self, way: int) -> None:
        """Record that a new block was installed into ``way``."""

    @abc.abstractmethod
    def on_access(self, way: int) -> None:
        """Record a hit on the block in ``way``."""

    @abc.abstractmethod
    def victim(self, valid_ways: Iterable[int]) -> int:
        """Choose the way to evict among ``valid_ways`` (all ways occupied)."""

    def on_invalidate(self, way: int) -> None:
        """Record that ``way`` was invalidated.  Default: no-op."""

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.associativity:
            raise ValueError(f"way {way} out of range [0, {self.associativity})")


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement.

    Mirrors the paper's extended LLC kernel behaviour: each block carries an
    LRU counter which is reset on a hit while all other counters decrement
    (Algorithm 1, lines 8-12).  Here we keep an equivalent recency timestamp.
    """

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._clock = 0
        self._last_use: Dict[int, int] = {}

    def _touch(self, way: int) -> None:
        self._clock += 1
        self._last_use[way] = self._clock

    def on_insert(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_access(self, way: int) -> None:
        self._check_way(way)
        self._touch(way)

    def on_invalidate(self, way: int) -> None:
        self._check_way(way)
        self._last_use.pop(way, None)

    def victim(self, valid_ways: Iterable[int]) -> int:
        candidates = list(valid_ways)
        if not candidates:
            raise ValueError("victim() called with no valid ways")
        return min(candidates, key=lambda way: self._last_use.get(way, -1))


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement: evict the oldest inserted block."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._clock = 0
        self._inserted_at: Dict[int, int] = {}

    def on_insert(self, way: int) -> None:
        self._check_way(way)
        self._clock += 1
        self._inserted_at[way] = self._clock

    def on_access(self, way: int) -> None:
        self._check_way(way)

    def on_invalidate(self, way: int) -> None:
        self._check_way(way)
        self._inserted_at.pop(way, None)

    def victim(self, valid_ways: Iterable[int]) -> int:
        candidates = list(valid_ways)
        if not candidates:
            raise ValueError("victim() called with no valid ways")
        return min(candidates, key=lambda way: self._inserted_at.get(way, -1))


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a seeded generator for reproducibility."""

    def __init__(self, associativity: int, seed: int = 0) -> None:
        super().__init__(associativity)
        self._rng = random.Random(seed)

    def on_insert(self, way: int) -> None:
        self._check_way(way)

    def on_access(self, way: int) -> None:
        self._check_way(way)

    def victim(self, valid_ways: Iterable[int]) -> int:
        candidates = list(valid_ways)
        if not candidates:
            raise ValueError("victim() called with no valid ways")
        return self._rng.choice(candidates)


_POLICY_FACTORIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_replacement_policy(name: str, associativity: int, **kwargs) -> ReplacementPolicy:
    """Create a replacement policy by name (``"lru"``, ``"fifo"``, ``"random"``)."""
    try:
        factory = _POLICY_FACTORIES[name.lower()]
    except KeyError:
        valid = ", ".join(sorted(_POLICY_FACTORIES))
        raise ValueError(f"unknown replacement policy {name!r}; expected one of: {valid}") from None
    return factory(associativity, **kwargs)
