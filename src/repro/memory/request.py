"""Memory requests and responses that flow through the simulated hierarchy.

Every component of the model (L1, interconnect, Morpheus controller,
conventional LLC, extended LLC, DRAM) consumes :class:`MemoryRequest` objects
and produces :class:`MemoryResponse` objects.  Requests carry the *cache
block address* (byte address aligned to the block size), the access type and
the origin SM so the interconnect can route responses back.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_REQUEST_IDS = itertools.count()


class AccessType(enum.Enum):
    """Kind of memory access issued by a warp."""

    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"

    @property
    def is_write(self) -> bool:
        """Whether the access modifies memory (stores and atomics do)."""
        return self in (AccessType.STORE, AccessType.ATOMIC)


class RequestOrigin(enum.Enum):
    """Which agent generated a request.

    ``COMPUTE_SM`` is a normal application access from a compute-mode SM.
    ``EXTENDED_LLC_KERNEL`` is a fill/writeback issued by the extended LLC
    kernel running on a cache-mode SM (these bypass the conventional LLC).
    ``L1_WRITEBACK`` marks dirty evictions from an L1 cache.
    """

    COMPUTE_SM = "compute_sm"
    EXTENDED_LLC_KERNEL = "extended_llc_kernel"
    L1_WRITEBACK = "l1_writeback"


@dataclass
class MemoryRequest:
    """A single cache-block-granularity memory request.

    Attributes:
        address: Byte address of the access.  Components align it to the
            cache block size as needed.
        access_type: Load, store or atomic.
        origin: Which agent issued the request.
        sm_id: Index of the SM that issued the request (for routing the
            response back through the interconnect).
        warp_id: Index of the warp within the SM (used by atomics
            serialization checks and statistics).
        issue_cycle: Simulation time (in cycles) at which the request entered
            the memory system.
        size_bytes: Access payload size; defaults to a full cache block.
        request_id: Monotonically increasing unique identifier.
    """

    address: int
    access_type: AccessType = AccessType.LOAD
    origin: RequestOrigin = RequestOrigin.COMPUTE_SM
    sm_id: int = 0
    warp_id: int = 0
    issue_cycle: int = 0
    size_bytes: int = 128
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")

    def block_address(self, block_size: int) -> int:
        """Return the address aligned down to ``block_size`` bytes."""
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError(f"block_size must be a positive power of two, got {block_size}")
        return self.address & ~(block_size - 1)

    @property
    def is_write(self) -> bool:
        """Whether this request modifies memory."""
        return self.access_type.is_write

    def copy_for_block(self, block_address: int) -> "MemoryRequest":
        """Return a new request targeting ``block_address`` with a fresh id.

        Used when a component needs to spawn derived traffic (e.g. an L1
        writeback or an extended-LLC fill) for a specific block.
        """
        return MemoryRequest(
            address=block_address,
            access_type=self.access_type,
            origin=self.origin,
            sm_id=self.sm_id,
            warp_id=self.warp_id,
            issue_cycle=self.issue_cycle,
            size_bytes=self.size_bytes,
        )


@dataclass
class MemoryResponse:
    """Completion record for a :class:`MemoryRequest`.

    Attributes:
        request: The originating request.
        latency_cycles: Total service latency in core cycles, including
            queueing at every component along the path.
        hit_level: Name of the hierarchy level that served the request
            (``"l1"``, ``"llc"``, ``"extended_llc"`` or ``"dram"``).
        served_by_extended_llc: True when the extended LLC supplied the data.
        predicted_miss: True when the Morpheus hit/miss predictor sent the
            request straight to DRAM (correctly-predicted extended-LLC miss).
        energy_nj: Energy consumed serving the request, in nanojoules.
    """

    request: MemoryRequest
    latency_cycles: float
    hit_level: str
    served_by_extended_llc: bool = False
    predicted_miss: bool = False
    energy_nj: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")

    @property
    def is_offchip(self) -> bool:
        """True when DRAM had to be accessed to serve the request."""
        return self.hit_level == "dram"


def reset_request_ids(start: int = 0) -> None:
    """Reset the global request id counter (used by deterministic tests)."""
    global _REQUEST_IDS
    _REQUEST_IDS = itertools.count(start)
