"""Parallel, disk-cached, two-phase experiment execution.

This package is the single execution path for every simulation in the
repository.  Describe a run matrix with :class:`ExperimentSpec`, expand it
to an :class:`ExperimentPlan` of content-hash-keyed cells, and execute it
with an :class:`ExperimentRunner` — worker processes share one
content-addressed on-disk cache with two tiers: raw replay measurements
(keyed by :meth:`RunSpec.replay_key`) and scored results (keyed by
:meth:`RunSpec.score_key`).  Re-running a plan (or any figure script that
overlaps one) costs only JSON loads, and re-scoring under different
analytic parameters (MLP, peak IPC, energy constants — e.g. via
``ExperimentRunner.score_many`` or :mod:`repro.analysis.rescoring`) hits
the measurement tier and never re-replays a trace.

Batches can also execute through the distributed experiment service
(``REPRO_RUNNER_BACKEND=service``): leaves become jobs on a
:class:`JobQueue` drained by work-stealing worker daemons
(``python -m repro.runner serve``) into the same shared cache — see
:mod:`repro.runner.service`.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.runner import (
    BACKEND_ENV,
    CACHE_MAX_BYTES_ENV,
    ExperimentResult,
    ExperimentRunner,
    active_runner,
    set_active_runner,
    using_runner,
)
from repro.runner.queue import FileQueue, InProcessQueue, Job, JobQueue, JobStatus
from repro.runner.service import (
    DistributedBackend,
    ExperimentService,
    ServiceReport,
    TaskOutcome,
)
from repro.runner.spec import (
    REPLAY_SCHEMA_VERSION,
    SCORE_SCHEMA_VERSION,
    ExperimentCell,
    ExperimentPlan,
    ExperimentSpec,
    RunSpec,
    content_hash,
)

__all__ = [
    "BACKEND_ENV",
    "CACHE_MAX_BYTES_ENV",
    "DEFAULT_CACHE_DIR",
    "DistributedBackend",
    "ExperimentCell",
    "ExperimentPlan",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentService",
    "ExperimentSpec",
    "FileQueue",
    "InProcessQueue",
    "Job",
    "JobQueue",
    "JobStatus",
    "REPLAY_SCHEMA_VERSION",
    "ResultCache",
    "RunSpec",
    "SCORE_SCHEMA_VERSION",
    "ServiceReport",
    "TaskOutcome",
    "active_runner",
    "content_hash",
    "set_active_runner",
    "using_runner",
]
