"""Parallel, disk-cached experiment execution.

This package is the single execution path for every simulation in the
repository.  Describe a run matrix with :class:`ExperimentSpec`, expand it
to an :class:`ExperimentPlan` of content-hash-keyed cells, and execute it
with an :class:`ExperimentRunner` — worker processes share one
content-addressed on-disk result cache, so re-running a plan (or any figure
script that overlaps one) costs only JSON loads.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.runner import (
    ExperimentResult,
    ExperimentRunner,
    active_runner,
    set_active_runner,
    using_runner,
)
from repro.runner.spec import (
    RESULT_SCHEMA_VERSION,
    ExperimentCell,
    ExperimentPlan,
    ExperimentSpec,
    RunSpec,
    content_hash,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExperimentCell",
    "ExperimentPlan",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "RESULT_SCHEMA_VERSION",
    "ResultCache",
    "RunSpec",
    "active_runner",
    "content_hash",
    "set_active_runner",
    "using_runner",
]
