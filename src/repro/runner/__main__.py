"""``python -m repro.runner`` — cache maintenance CLI and worker daemon.

``python -m repro.runner serve ...`` runs one work-stealing worker daemon of
the distributed experiment service (:func:`repro.runner.service.serve_main`);
every other invocation is the cache maintenance CLI
(:func:`repro.runner.cache.main` — ``stats``/``prune``).

This module exists so neither submodule is executed twice by runpy (the
package ``__init__`` imports them, so running a submodule directly with
``-m`` would run its body twice with a ``RuntimeWarning``).
"""

import sys


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "serve":
        from repro.runner.service import serve_main

        return serve_main(sys.argv[2:])
    from repro.runner.cache import main as cache_main

    return cache_main()


if __name__ == "__main__":
    raise SystemExit(main())
