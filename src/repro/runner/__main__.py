"""``python -m repro.runner`` — the cache maintenance CLI.

Equivalent to ``python -m repro.runner.cache`` but without runpy's
double-import ``RuntimeWarning`` (the package ``__init__`` imports
``repro.runner.cache``, so running that submodule with ``-m`` executes its
body twice).  See :func:`repro.runner.cache.main` for the commands.
"""

from repro.runner.cache import main

if __name__ == "__main__":
    raise SystemExit(main())
