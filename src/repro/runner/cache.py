"""Content-addressed on-disk result cache.

Results are stored as one JSON file per leaf simulation under a cache
directory (default ``.repro_cache/``), addressed by the
:meth:`~repro.runner.spec.RunSpec.content_key` — a hash over every
simulation input plus :data:`~repro.runner.spec.RESULT_SCHEMA_VERSION`.
Changing any config field, any profile parameter or the schema version
changes the key, so stale entries are never returned; they are simply
orphaned (``prune()`` removes them).

Writes are atomic (temp file + ``os.replace``) so concurrent workers of a
:class:`~repro.runner.runner.ExperimentRunner` can share one cache
directory: when two workers race on the same key, both produce identical
deterministic results and the last rename wins.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro.energy.model import EnergyBreakdown
from repro.sim.stats import SimulationStats

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def stats_to_jsonable(stats: SimulationStats) -> Dict:
    """Render ``stats`` (including the energy breakdown) as JSON-compatible data."""
    return dataclasses.asdict(stats)


def stats_from_jsonable(payload: Dict) -> SimulationStats:
    """Rebuild :class:`SimulationStats` from :func:`stats_to_jsonable` output."""
    data = dict(payload)
    energy = data.pop("energy", None)
    stats = SimulationStats(**data)
    if energy is not None:
        stats.energy = EnergyBreakdown(**energy)
    return stats


class ResultCache:
    """One content-addressed cache directory of simulation results."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        """File path of the result addressed by ``key`` (sharded by prefix)."""
        return self.directory / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[SimulationStats]:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            stats = stats_from_jsonable(payload["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # A truncated or incompatible entry is treated as a miss; the
            # fresh result will overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def store(self, key: str, stats: SimulationStats) -> None:
        """Atomically persist ``stats`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "stats": stats_to_jsonable(stats)}
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def prune(self) -> int:
        """Delete every entry (used to reclaim space after schema bumps)."""
        removed = 0
        if not self.directory.exists():
            return removed
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
