"""Three-tier content-addressed on-disk cache.

The cache directory (default ``.repro_cache/``) holds three tiers, one JSON
file per entry, each sharded by key prefix:

* ``measurements/`` — raw :class:`~repro.sim.performance_model.ReplayMeasurement`
  records, addressed by :meth:`~repro.runner.spec.RunSpec.replay_key`.  This
  is the expensive tier: one entry per functional trace replay.
* ``stats/`` — scored :class:`~repro.sim.stats.SimulationStats`, addressed by
  :meth:`~repro.runner.spec.RunSpec.score_key`.  This is the cheap tier:
  re-deriving an entry from a cached measurement is a pure analytic
  computation.
* ``scenarios/`` — scenario-level aggregates (serialized
  :class:`~repro.scenarios.engine.ScenarioRunResult` payloads), addressed by
  :meth:`~repro.scenarios.engine.ScenarioEngine.run_key`.  Warm scenario
  re-runs load one aggregate instead of re-scoring every timeline leaf.

Because the score key embeds the replay key, changing *any* input addresses
a different stats entry, while changing only analytic parameters (peak IPC,
MLP, energy constants) still hits the measurement tier — sweeps over those
parameters never re-replay a trace.  Stale entries are never returned; they
are simply orphaned (``prune()`` removes them).

Writes are atomic (temp file + ``os.replace``) so concurrent workers of a
:class:`~repro.runner.runner.ExperimentRunner` can share one cache
directory: when two workers race on the same key, both produce identical
deterministic results and the last rename wins.  Temp files left behind by
crashed workers are excluded from entry counts and swept by ``prune()``
once older than an age threshold (younger ones may be in-flight writes).

The module doubles as a maintenance CLI::

    python -m repro.runner.cache stats [--json]
    python -m repro.runner.cache prune [--max-bytes N] [--tier stats|measurements|scenarios]

``prune --max-bytes`` applies an LRU-by-mtime size cap instead of deleting
everything.  ``python -m repro.runner`` is an equivalent entry point that
avoids runpy's double-import ``RuntimeWarning``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.energy.model import EnergyBreakdown
from repro.sim.performance_model import ReplayMeasurement
from repro.sim.stats import SimulationStats
from repro.telemetry import telemetry

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Prefix of the temp files behind atomic writes (dotted, so entry globs
#: must explicitly skip them).
TEMP_PREFIX = ".tmp-"


def stats_to_jsonable(stats: SimulationStats) -> Dict:
    """Render ``stats`` (including the energy breakdown) as JSON-compatible data."""
    return dataclasses.asdict(stats)


def stats_from_jsonable(payload: Dict) -> SimulationStats:
    """Rebuild :class:`SimulationStats` from :func:`stats_to_jsonable` output."""
    data = dict(payload)
    energy = data.pop("energy", None)
    stats = SimulationStats(**data)
    if energy is not None:
        stats.energy = EnergyBreakdown(**energy)
    return stats


class _JsonTier:
    """One directory of content-addressed JSON entries (sharded by key prefix).

    ``name`` labels the tier in live telemetry: every load/store publishes
    ``cache.<name>.{hits,misses,stores,bytes_read,bytes_written}`` counters
    when telemetry is enabled (the plain ``hits``/``misses``/``stores``
    attributes stay authoritative either way).
    """

    def __init__(self, directory: Path, name: str = "") -> None:
        self.directory = directory
        self.name = name or directory.name
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        """File path of the entry addressed by ``key``."""
        return self.directory / key[:2] / f"{key}.json"

    def load_payload(self, key: str) -> Optional[Dict]:
        """The JSON payload stored under ``key``, or ``None`` on a miss."""
        try:
            with self.path_for(key).open("r", encoding="utf-8") as handle:
                text = handle.read()
            payload = json.loads(text)
        except FileNotFoundError:
            self.misses += 1
            tel = telemetry()
            if tel.enabled:
                tel.count(f"cache.{self.name}.misses")
            return None
        except (OSError, ValueError):
            # A truncated or unreadable entry is treated as a miss; the
            # fresh result will overwrite it.
            self.misses += 1
            tel = telemetry()
            if tel.enabled:
                tel.count(f"cache.{self.name}.misses")
            return None
        self.hits += 1
        tel = telemetry()
        if tel.enabled:
            tel.count(f"cache.{self.name}.hits")
            tel.count(f"cache.{self.name}.bytes_read", len(text))
        return payload

    def store_payload(self, key: str, payload: Dict) -> None:
        """Atomically persist ``payload`` under ``key``.

        Safe under any number of concurrent writer *processes* sharing the
        directory (the distributed service's workers all publish here):

        * Each writer serializes into its own ``mkstemp`` temp file and
          commits with ``os.replace`` — one atomic rename.  Readers
          therefore never observe a torn or partially written entry: the
          entry path either does not exist yet or names a complete file.
        * Keys are content hashes, so racing writers carry identical
          payloads and the last rename is a harmless no-op; there is no
          read-modify-write anywhere, hence nothing to lock.
        * A writer crashing mid-serialize leaves only a dotted ``.tmp-``
          file, which entry globs skip and ``prune`` sweeps once stale.

        The contract is stress-tested in
        ``tests/runner/test_cache_concurrency.py``.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=TEMP_PREFIX, suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        tel = telemetry()
        if tel.enabled:
            tel.count(f"cache.{self.name}.stores")
            tel.count(f"cache.{self.name}.bytes_written", len(text))

    def entries(self) -> Iterator[Path]:
        """All committed entries (atomic-write temp files are not entries)."""
        if not self.directory.exists():
            return
        for path in self.directory.glob("*/*.json"):
            if not path.name.startswith("."):
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())


class ResultCache:
    """One multi-tier content-addressed cache directory.

    The stats-tier counters are exposed as ``hits``/``misses``/``stores``,
    the measurement-tier counters as ``replay_hits``/``replay_misses``/
    ``replay_stores`` — a re-scoring sweep over a warm cache shows stats-tier
    misses but **zero** ``replay_misses`` turning into replays — and the
    scenario-aggregate tier as ``scenario_hits``/``scenario_misses``/
    ``scenario_stores``.
    """

    #: Tier subdirectory names.
    STATS_TIER = "stats"
    MEASUREMENTS_TIER = "measurements"
    SCENARIOS_TIER = "scenarios"

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        self._stats = _JsonTier(self.directory / self.STATS_TIER, self.STATS_TIER)
        self._measurements = _JsonTier(
            self.directory / self.MEASUREMENTS_TIER, self.MEASUREMENTS_TIER
        )
        self._scenarios = _JsonTier(
            self.directory / self.SCENARIOS_TIER, self.SCENARIOS_TIER
        )

    # -- stats tier (scored results, keyed by score_key) ------------------------------

    @property
    def hits(self) -> int:
        """Stats-tier (scored result) cache hits."""
        return self._stats.hits

    @property
    def misses(self) -> int:
        """Stats-tier (scored result) cache misses."""
        return self._stats.misses

    @property
    def stores(self) -> int:
        """Stats-tier (scored result) cache stores."""
        return self._stats.stores

    def path_for(self, key: str) -> Path:
        """File path of the scored result addressed by score key ``key``."""
        return self._stats.path_for(key)

    def load(self, key: str) -> Optional[SimulationStats]:
        """The cached scored result for score key ``key``, or ``None`` on a miss."""
        payload = self._stats.load_payload(key)
        if payload is None:
            return None
        try:
            return stats_from_jsonable(payload["stats"])
        except (KeyError, TypeError, ValueError):
            self._stats.hits -= 1
            self._stats.misses += 1
            return None

    def store(self, key: str, stats: SimulationStats) -> None:
        """Atomically persist scored ``stats`` under score key ``key``."""
        self._stats.store_payload(key, {"key": key, "stats": stats_to_jsonable(stats)})

    # -- measurement tier (replay outputs, keyed by replay_key) -----------------------

    @property
    def replay_hits(self) -> int:
        """Measurement-tier (replay) cache hits."""
        return self._measurements.hits

    @property
    def replay_misses(self) -> int:
        """Measurement-tier (replay) cache misses."""
        return self._measurements.misses

    @property
    def replay_stores(self) -> int:
        """Measurement-tier (replay) cache stores."""
        return self._measurements.stores

    def measurement_path_for(self, key: str) -> Path:
        """File path of the measurement addressed by replay key ``key``."""
        return self._measurements.path_for(key)

    def load_measurement(self, key: str) -> Optional[ReplayMeasurement]:
        """The cached measurement for replay key ``key``, or ``None`` on a miss."""
        payload = self._measurements.load_payload(key)
        if payload is None:
            return None
        try:
            return ReplayMeasurement.from_jsonable(payload["measurement"])
        except (KeyError, TypeError, ValueError):
            self._measurements.hits -= 1
            self._measurements.misses += 1
            return None

    def store_measurement(
        self, key: str, measurement: ReplayMeasurement, mode: str = "replay"
    ) -> None:
        """Atomically persist ``measurement`` under replay key ``key``.

        ``mode`` records how the measurement was produced (the config's
        ``replay_mode`` — ``"replay"`` or ``"analytic"``).  Both modes share
        the ``measurements/`` tier: the mode is part of the replay key, so
        their entries can never collide, and the stored tag exists purely so
        :meth:`measurement_mode_counts` (and the ``stats`` CLI) can report
        the tiers' composition.
        """
        self._measurements.store_payload(
            key,
            {"key": key, "mode": mode, "measurement": measurement.to_jsonable()},
        )

    def measurement_mode_counts(self) -> Dict[str, int]:
        """On-disk measurement entries per production mode.

        Entries written before the mode tag existed count as ``"replay"``
        (the only mode that existed then); unreadable entries are skipped.
        """
        counts: Dict[str, int] = {}
        for path in self._measurements.entries():
            try:
                with path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            mode = payload.get("mode", "replay")
            counts[mode] = counts.get(mode, 0) + 1
        return counts

    # -- scenario tier (timeline aggregates, keyed by ScenarioEngine.run_key) ----------

    @property
    def scenario_hits(self) -> int:
        """Scenario-tier (timeline aggregate) cache hits."""
        return self._scenarios.hits

    @property
    def scenario_misses(self) -> int:
        """Scenario-tier (timeline aggregate) cache misses."""
        return self._scenarios.misses

    @property
    def scenario_stores(self) -> int:
        """Scenario-tier (timeline aggregate) cache stores."""
        return self._scenarios.stores

    def scenario_path_for(self, key: str) -> Path:
        """File path of the aggregate addressed by scenario run key ``key``."""
        return self._scenarios.path_for(key)

    def load_scenario(self, key: str) -> Optional[Dict]:
        """The cached scenario-aggregate payload for ``key``, or ``None`` on a miss.

        Payloads are opaque JSON dicts — the scenario engine owns their
        schema (its run key embeds every schema version involved, so a
        stale layout is simply never addressed).
        """
        payload = self._scenarios.load_payload(key)
        if payload is None:
            return None
        result = payload.get("result")
        if not isinstance(result, dict):
            self._scenarios.hits -= 1
            self._scenarios.misses += 1
            return None
        return result

    def store_scenario(self, key: str, result: Dict) -> None:
        """Atomically persist the scenario-aggregate payload under ``key``."""
        self._scenarios.store_payload(key, {"key": key, "result": result})

    # -- cross-process counter folding -------------------------------------------------

    def tier_counters(self) -> Dict[str, int]:
        """All three tiers' hit/miss/store counters as a plain dict.

        Worker processes of a parallel plan ship these back so the parent
        runner's cache counters stay truthful (see :func:`absorb_counters`).
        """
        return {
            "hits": self._stats.hits,
            "misses": self._stats.misses,
            "stores": self._stats.stores,
            "replay_hits": self._measurements.hits,
            "replay_misses": self._measurements.misses,
            "replay_stores": self._measurements.stores,
            "scenario_hits": self._scenarios.hits,
            "scenario_misses": self._scenarios.misses,
            "scenario_stores": self._scenarios.stores,
        }

    def absorb_counters(self, counters: Dict[str, int]) -> None:
        """Fold another process's :meth:`tier_counters` into this cache's."""
        self._stats.hits += counters.get("hits", 0)
        self._stats.misses += counters.get("misses", 0)
        self._stats.stores += counters.get("stores", 0)
        self._measurements.hits += counters.get("replay_hits", 0)
        self._measurements.misses += counters.get("replay_misses", 0)
        self._measurements.stores += counters.get("replay_stores", 0)
        self._scenarios.hits += counters.get("scenario_hits", 0)
        self._scenarios.misses += counters.get("scenario_misses", 0)
        self._scenarios.stores += counters.get("scenario_stores", 0)

    # -- maintenance ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self._stats.path_for(key).exists()

    def __len__(self) -> int:
        """Committed entries across all tiers (temp files excluded)."""
        return len(self._stats) + len(self._measurements) + len(self._scenarios)

    def _tiers(self, tier: Optional[str] = None) -> List[Tuple[str, _JsonTier]]:
        named = [
            (self.STATS_TIER, self._stats),
            (self.MEASUREMENTS_TIER, self._measurements),
            (self.SCENARIOS_TIER, self._scenarios),
        ]
        if tier is None:
            return named
        selected = [(name, t) for name, t in named if name == tier]
        if not selected:
            valid = ", ".join(repr(name) for name, _ in named)
            raise ValueError(f"unknown tier {tier!r}; expected one of: {valid}")
        return selected

    #: Minimum age before a temp file counts as stale.  Atomic writes live
    #: for milliseconds; anything this old belongs to a crashed worker.
    STALE_TEMP_SECONDS = 600.0

    def _stale_temp_files(self) -> Iterator[Path]:
        """Temp files left behind by crashed workers, anywhere in the cache.

        Only temp files older than :data:`STALE_TEMP_SECONDS` qualify:
        concurrent workers share this directory, and sweeping a temp file
        between its ``mkstemp`` and ``os.replace`` would crash that
        worker's store.
        """
        if not self.directory.exists():
            return
        cutoff = time.time() - self.STALE_TEMP_SECONDS
        for path in self.directory.glob(f"**/{TEMP_PREFIX}*.json"):
            try:
                if path.stat().st_mtime <= cutoff:
                    yield path
            except OSError:
                continue

    def _legacy_entries(self) -> Iterator[Path]:
        """Entries from the pre-two-tier layout (``<root>/<xx>/<key>.json``)."""
        if not self.directory.exists():
            return
        for path in self.directory.glob("*/*.json"):
            if path.parent.name in (
                self.STATS_TIER,
                self.MEASUREMENTS_TIER,
                self.SCENARIOS_TIER,
            ):
                continue
            if not path.name.startswith("."):
                yield path

    def size_bytes(self, tier: Optional[str] = None) -> int:
        """Total size of the committed entries in ``tier`` (or all three tiers)."""
        total = 0
        for _, json_tier in self._tiers(tier):
            for path in json_tier.entries():
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-tier on-disk entry counts and byte totals (for the CLI)."""
        report: Dict[str, Dict[str, int]] = {}
        for name, json_tier in self._tiers():
            report[name] = {
                "entries": len(json_tier),
                "bytes": self.size_bytes(name),
            }
        temp_count = 0
        temp_bytes = 0
        for path in self._stale_temp_files():
            try:
                temp_bytes += path.stat().st_size
            except OSError:
                # A racing worker's atomic rename removed it mid-scan.
                continue
            temp_count += 1
        report["stale_temp_files"] = {"entries": temp_count, "bytes": temp_bytes}
        return report

    def prune(self, max_bytes: Optional[int] = None, tier: Optional[str] = None) -> int:
        """Delete cache entries and return how many files were removed.

        Without ``max_bytes`` every entry in ``tier`` (default: all three
        tiers — ``stats``, ``measurements``, ``scenarios``) is deleted —
        used to reclaim space after schema bumps.  With
        ``max_bytes`` the selected tiers are instead capped to that total
        size, evicting least-recently-modified entries first (LRU by
        mtime).  Stale atomic-write temp files and pre-two-tier legacy
        entries (unreadable orphans under the current layout) are always
        swept, but never counted as cache entries.
        """
        removed = 0
        if not self.directory.exists():
            return removed

        def unlink(path: Path) -> bool:
            try:
                path.unlink()
                return True
            except OSError:
                return False

        for temp in list(self._stale_temp_files()):
            removed += unlink(temp)
        for path in list(self._legacy_entries()):
            removed += unlink(path)

        if max_bytes is None:
            for _, json_tier in self._tiers(tier):
                for path in list(json_tier.entries()):
                    removed += unlink(path)
            return removed

        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        aged: List[Tuple[float, int, Path]] = []
        total = 0
        for _, json_tier in self._tiers(tier):
            for path in json_tier.entries():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                aged.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        aged.sort(key=lambda item: item[0])
        for _, size, path in aged:
            if total <= max_bytes:
                break
            if unlink(path):
                removed += 1
                total -= size
        return removed


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.runner.cache``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.cache",
        description="Inspect or prune the on-disk simulation cache.",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: ${CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    stats = commands.add_parser("stats", help="print per-tier entry counts and sizes")
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the text table",
    )
    prune = commands.add_parser("prune", help="delete cache entries")
    prune.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="keep the cache under this size (LRU by mtime) instead of emptying it",
    )
    prune.add_argument(
        "--tier",
        choices=(
            ResultCache.STATS_TIER,
            ResultCache.MEASUREMENTS_TIER,
            ResultCache.SCENARIOS_TIER,
        ),
        default=None,
        help=(
            "restrict pruning to one tier: 'stats' (scored results), "
            "'measurements' (replay records), or 'scenarios' (timeline "
            "aggregates); default: all three"
        ),
    )
    args = parser.parse_args(argv)

    cache = ResultCache(args.cache_dir)
    if args.command == "stats":
        report = cache.summary()
        if args.json:
            payload = {
                "directory": str(cache.directory),
                "tiers": report,
                "measurement_modes": cache.measurement_mode_counts(),
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"cache {cache.directory}")
        for name, row in report.items():
            print(f"  {name:<18s} {row['entries']:>8d} entries  {row['bytes']:>12d} bytes")
            if name == ResultCache.MEASUREMENTS_TIER:
                # The measurement tier mixes replay and analytic entries
                # (under distinct replay-keyed modes); break it down.
                for mode, count in sorted(cache.measurement_mode_counts().items()):
                    print(f"    mode={mode:<12s} {count:>8d} entries")
        return 0
    removed = cache.prune(max_bytes=args.max_bytes, tier=args.tier)
    print(f"cache {cache.directory}: removed {removed} files")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
