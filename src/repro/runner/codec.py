"""JSON round-trip codec for the dataclasses that describe queued work.

The distributed experiment service (:mod:`repro.runner.service`) ships leaf
descriptions — application profiles, simulation configs, experiment cells —
to worker processes as JSON job payloads, so every transported dataclass
needs an exact decode of the canonical render :func:`repro.runner.spec._jsonable`
produces.  Rather than hand-writing ``from_jsonable`` for each nested config
(GPU, LLC, DRAM, NoC, Morpheus, fidelity, energies, ...), :func:`decode`
reconstructs any of them generically from the dataclass type hints:

* nested dataclasses recurse,
* ``Enum`` fields decode from their values,
* ``Optional``/``Union`` members try each candidate type,
* ``Tuple[X, ...]``/``List[X]``/``Dict[str, X]`` decode element-wise.

The decode is exact for the payloads we ship (numbers, strings, bools and
``None`` pass through untouched; floats survive JSON via repr), so a
round-tripped :class:`~repro.runner.spec.RunSpec` derives bit-identical
replay and score keys — the property the service's at-most-once replay
dedup rests on (asserted in ``tests/runner/test_service.py``).
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from typing import Any, Dict, Tuple, Type, TypeVar, Union

from repro.runner.spec import _jsonable

T = TypeVar("T")


def encode(value: Any) -> Any:
    """Render ``value`` (dataclasses, enums, containers) as JSON-compatible data.

    The same canonical render content keys are derived from
    (:func:`repro.runner.spec._jsonable`), re-exported under a public name
    for job payloads.
    """
    return _jsonable(value)


def decode(cls: Type[T], payload: Any) -> T:
    """Rebuild an instance of dataclass ``cls`` from :func:`encode` output."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"decode() needs a dataclass type, got {cls!r}")
    return _decode_value(cls, payload)


def _decode_value(annotation: Any, value: Any) -> Any:
    """Decode one value against its type annotation."""
    if value is None:
        return None
    origin = typing.get_origin(annotation)
    if origin is Union:
        return _decode_union(annotation, value)
    if dataclasses.is_dataclass(annotation) and isinstance(annotation, type):
        return _decode_dataclass(annotation, value)
    if isinstance(annotation, type) and issubclass(annotation, enum.Enum):
        return annotation(value)
    if origin in (tuple, Tuple):
        args = typing.get_args(annotation)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode_value(args[0], item) for item in value)
        if args:
            return tuple(
                _decode_value(arg, item) for arg, item in zip(args, value)
            )
        return tuple(value)
    if origin is list:
        args = typing.get_args(annotation)
        element = args[0] if args else Any
        return [_decode_value(element, item) for item in value]
    if origin is dict:
        args = typing.get_args(annotation)
        element = args[1] if len(args) == 2 else Any
        return {key: _decode_value(element, item) for key, item in value.items()}
    return value


def _decode_union(annotation: Any, value: Any) -> Any:
    """Decode against the first ``Union`` member that accepts the value."""
    candidates = [arg for arg in typing.get_args(annotation) if arg is not type(None)]
    errors = []
    for candidate in candidates:
        try:
            return _decode_value(candidate, value)
        except (TypeError, ValueError) as error:
            errors.append(error)
    raise ValueError(
        f"value {value!r} matched no member of {annotation}: {errors}"
    )


def _decode_dataclass(cls: Type[T], payload: Any) -> T:
    if not isinstance(payload, dict):
        raise TypeError(f"decoding {cls.__name__} needs a dict, got {type(payload)}")
    hints = typing.get_type_hints(cls)
    kwargs: Dict[str, Any] = {}
    for field in dataclasses.fields(cls):
        if not field.init or field.name not in payload:
            continue
        kwargs[field.name] = _decode_value(hints[field.name], payload[field.name])
    return cls(**kwargs)
