"""The job-queue protocol behind the distributed experiment service.

A queue holds :class:`Job` records — small JSON payloads naming relocatable
work (one trace replay, one plan cell) whose *results* travel through the
shared content-addressed :class:`~repro.runner.cache.ResultCache`, never
through the queue.  That split keeps the protocol tiny and backend-agnostic:

* ``submit(job)`` — register a task.  Submission is **idempotent per
  job id** (a job already pending, leased or done is not enqueued again),
  which is what makes replay jobs at-most-once per ``replay_key`` across
  any number of concurrent coordinators.
* ``claim(worker, lease_seconds)`` — atomically take one pending job under
  a lease.  Two workers can never hold the same job: the filesystem
  backend claims by atomic rename, the in-process backend under a lock.
* ``heartbeat(job_id, worker)`` — extend a held lease (long replays).
* ``complete(job_id, worker, result)`` — finish a job, recording its
  outcome (runtime, counters) for the coordinator's accounting.
* ``requeue_expired()`` — return crashed workers' jobs to the pending
  state.  A lease whose heartbeat is older than its ``lease_seconds`` is
  expired; exactly one sweeper wins the requeue (atomic rename again), so
  a crashed job is retried exactly once per expiry.

Two implementations ship today: :class:`InProcessQueue` (single-process,
lock-based — the serial backend and the protocol reference) and
:class:`FileQueue` (a queue directory shared by worker daemons on the same
filesystem).  The protocol deliberately never exposes filesystem paths to
callers, so a Redis- or HTTP-backed queue is a drop-in: implement the same
six methods against ``BRPOPLPUSH``/``SET NX``-style primitives and hand it
to :class:`~repro.runner.service.ExperimentService`.
"""

from __future__ import annotations

import abc
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.telemetry import telemetry

#: Job states a queue reports.
PENDING = "pending"
LEASED = "leased"
DONE = "done"

#: Default lease duration: far longer than any leaf replay, short enough
#: that a crashed worker's jobs are retried promptly.
DEFAULT_LEASE_SECONDS = 300.0


def _job_event(name: str, job_id: str, **attrs: Any) -> None:
    """Publish one job-lifecycle telemetry event (no-op when disabled).

    Emitted by the queue implementations themselves — not their callers —
    so every consumer (worker daemons, inline coordinator drains, external
    ``serve`` processes) gets lifecycle coverage for free, and the report
    can stitch submit→claim→complete latencies across processes by
    ``job_id`` using the events' wall-clock timestamps.
    """
    tel = telemetry()
    if tel.enabled:
        tel.event(name, job_id=job_id, **attrs)


@dataclass(frozen=True)
class Job:
    """One relocatable unit of work.

    ``job_id`` doubles as the dedup key: replay jobs use their
    ``replay_key`` (so one replay can never be enqueued — or executed —
    twice), plan-cell jobs a content hash of the cell.  ``payload`` is a
    JSON-compatible description built by
    :mod:`repro.runner.codec`; the queue never interprets it.
    """

    job_id: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        return {"job_id": self.job_id, "kind": self.kind, "payload": self.payload}

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "Job":
        return cls(
            job_id=data["job_id"], kind=data["kind"], payload=data.get("payload", {})
        )


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time view of one registered job."""

    job_id: str
    state: str
    attempts: int = 0
    worker: Optional[str] = None
    result: Optional[Dict[str, Any]] = None


class JobQueue(abc.ABC):
    """The claim/lease/heartbeat/complete/requeue protocol (see module doc)."""

    @abc.abstractmethod
    def submit(self, job: Job) -> bool:
        """Register ``job``; ``False`` if its id is already known (no-op)."""

    @abc.abstractmethod
    def claim(
        self, worker: str, lease_seconds: float = DEFAULT_LEASE_SECONDS
    ) -> Optional[Job]:
        """Atomically take one pending job under a lease, or ``None``."""

    @abc.abstractmethod
    def heartbeat(self, job_id: str, worker: str) -> bool:
        """Refresh a held lease; ``False`` if the lease is no longer held."""

    @abc.abstractmethod
    def complete(self, job_id: str, worker: str, result: Dict[str, Any]) -> None:
        """Finish a leased job, recording ``result`` for the coordinator."""

    @abc.abstractmethod
    def requeue_expired(self) -> List[str]:
        """Return expired-lease jobs to pending; the requeued job ids."""

    @abc.abstractmethod
    def status(self, job_id: str) -> Optional[JobStatus]:
        """The job's current state, or ``None`` if it was never submitted."""

    @abc.abstractmethod
    def counts(self) -> Dict[str, int]:
        """``{state: count}`` over every registered job (status polling)."""

    @abc.abstractmethod
    def forget(self, job_id: str) -> bool:
        """Drop a *done* job's record so the id can be submitted again.

        Administrative: coordinators use it to re-register work whose done
        record outlived its cached result (e.g. the measurement tier was
        pruned after the job completed).  Pending/leased jobs are left
        alone; returns whether a record was dropped.
        """

    # -- conveniences shared by all backends ------------------------------------------

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The completion record of a done job, or ``None``."""
        status = self.status(job_id)
        if status is None or status.state != DONE:
            return None
        return status.result


class InProcessQueue(JobQueue):
    """A single-process queue (plain dicts; no locking needed beyond the GIL).

    The serial reference implementation: the coordinator drains it inline,
    which still exercises registration, claim dedup, lease accounting and
    per-task runtime records — useful for tests and for environments
    without working multiprocessing.
    """

    def __init__(self) -> None:
        self._pending: Dict[str, Job] = {}
        self._order: List[str] = []
        self._leases: Dict[str, Dict[str, Any]] = {}
        self._done: Dict[str, Dict[str, Any]] = {}
        self._attempts: Dict[str, int] = {}

    def submit(self, job: Job) -> bool:
        if (
            job.job_id in self._pending
            or job.job_id in self._leases
            or job.job_id in self._done
        ):
            return False
        self._pending[job.job_id] = job
        self._order.append(job.job_id)
        self._attempts.setdefault(job.job_id, 0)
        _job_event("job.submit", job.job_id, kind=job.kind)
        return True

    def claim(
        self, worker: str, lease_seconds: float = DEFAULT_LEASE_SECONDS
    ) -> Optional[Job]:
        while self._order:
            job_id = self._order[0]
            if job_id not in self._pending:
                self._order.pop(0)
                continue
            job = self._pending.pop(job_id)
            self._order.pop(0)
            self._leases[job_id] = {
                "job": job,
                "worker": worker,
                "lease_seconds": lease_seconds,
                "heartbeat": time.monotonic(),
            }
            _job_event("job.claim", job_id, worker=worker)
            return job
        return None

    def heartbeat(self, job_id: str, worker: str) -> bool:
        lease = self._leases.get(job_id)
        if lease is None or lease["worker"] != worker:
            return False
        lease["heartbeat"] = time.monotonic()
        _job_event("job.heartbeat", job_id, worker=worker)
        return True

    def complete(self, job_id: str, worker: str, result: Dict[str, Any]) -> None:
        lease = self._leases.pop(job_id, None)
        self._done[job_id] = {
            "worker": worker,
            "attempts": self._attempts.get(job_id, 0),
            "result": result,
            "job": lease["job"].to_jsonable() if lease else None,
        }
        _job_event("job.complete", job_id, worker=worker)

    def requeue_expired(self) -> List[str]:
        now = time.monotonic()
        requeued = []
        for job_id, lease in list(self._leases.items()):
            if now - lease["heartbeat"] > lease["lease_seconds"]:
                del self._leases[job_id]
                self._attempts[job_id] = self._attempts.get(job_id, 0) + 1
                self._pending[job_id] = lease["job"]
                self._order.append(job_id)
                requeued.append(job_id)
                _job_event("job.lease_expired", job_id, worker=lease["worker"])
                telemetry().count("queue.lease_expiries")
        return requeued

    def status(self, job_id: str) -> Optional[JobStatus]:
        if job_id in self._done:
            record = self._done[job_id]
            return JobStatus(
                job_id=job_id,
                state=DONE,
                attempts=record["attempts"],
                worker=record["worker"],
                result=record["result"],
            )
        if job_id in self._leases:
            lease = self._leases[job_id]
            return JobStatus(
                job_id=job_id,
                state=LEASED,
                attempts=self._attempts.get(job_id, 0),
                worker=lease["worker"],
            )
        if job_id in self._pending:
            return JobStatus(
                job_id=job_id, state=PENDING, attempts=self._attempts.get(job_id, 0)
            )
        return None

    def forget(self, job_id: str) -> bool:
        return self._done.pop(job_id, None) is not None

    def counts(self) -> Dict[str, int]:
        return {
            PENDING: len(self._pending),
            LEASED: len(self._leases),
            DONE: len(self._done),
        }


class FileQueue(JobQueue):
    """A queue directory shared by worker processes on one filesystem.

    Layout: ``<dir>/pending/<job_id>.json`` → ``<dir>/leased/<job_id>.json``
    → ``<dir>/done/<job_id>.json``.  Every state transition is one atomic
    ``os.replace``/``os.rename``, the same primitive the result cache's
    writers rely on, so:

    * **claim** renames pending → leased; exactly one contending worker's
      rename succeeds, the losers see ``FileNotFoundError`` and move to the
      next candidate.  Two workers can therefore never execute the same
      job — this is the at-most-once replay guarantee.
    * **heartbeat** touches the lease file's mtime; a lease whose mtime is
      older than its recorded ``lease_seconds`` is expired.
    * **complete** atomically publishes the done record *before* dropping
      the lease, so a crash in between leaves a stale lease that the
      expiry sweep discards (the done record wins) instead of a retry.
    * **requeue_expired** renames an expired lease back to pending with its
      attempt count bumped; the rename is atomic, so concurrent sweepers
      requeue a crashed job exactly once per expiry.
    """

    PENDING_DIR = "pending"
    LEASED_DIR = "leased"
    DONE_DIR = "done"

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        for name in (self.PENDING_DIR, self.LEASED_DIR, self.DONE_DIR):
            (self.directory / name).mkdir(parents=True, exist_ok=True)

    # -- path helpers ------------------------------------------------------------------

    def _pending_path(self, job_id: str) -> Path:
        return self.directory / self.PENDING_DIR / f"{job_id}.json"

    def _leased_path(self, job_id: str) -> Path:
        return self.directory / self.LEASED_DIR / f"{job_id}.json"

    def _done_path(self, job_id: str) -> Path:
        return self.directory / self.DONE_DIR / f"{job_id}.json"

    @staticmethod
    def _write_atomic(path: Path, payload: Dict[str, Any]) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- protocol ----------------------------------------------------------------------

    def submit(self, job: Job) -> bool:
        if (
            self._done_path(job.job_id).exists()
            or self._leased_path(job.job_id).exists()
            or self._pending_path(job.job_id).exists()
        ):
            return False
        # Two coordinators racing on the same id both write identical
        # payloads (ids are content keys), so the last rename is harmless.
        self._write_atomic(
            self._pending_path(job.job_id),
            {"job": job.to_jsonable(), "attempts": 0},
        )
        _job_event("job.submit", job.job_id, kind=job.kind)
        return True

    def claim(
        self, worker: str, lease_seconds: float = DEFAULT_LEASE_SECONDS
    ) -> Optional[Job]:
        pending_dir = self.directory / self.PENDING_DIR
        try:
            candidates = sorted(
                entry for entry in os.listdir(pending_dir)
                if entry.endswith(".json") and not entry.startswith(".")
            )
        except OSError:
            return None
        for name in candidates:
            job_id = name[: -len(".json")]
            pending = pending_dir / name
            leased = self._leased_path(job_id)
            try:
                os.rename(pending, leased)
            except OSError:
                continue  # another worker won this job; steal the next one
            # Touch first: the rename preserved the pending file's mtime,
            # and the expiry sweep reads mtime as the lease heartbeat.
            os.utime(leased)
            record = self._read(leased) or {}
            record.update(
                worker=worker,
                lease_seconds=lease_seconds,
                claimed_at=time.time(),
            )
            self._write_atomic(leased, record)
            job_data = record.get("job")
            if job_data is None:
                # An unreadable pending record cannot be executed; surface
                # it as done-with-error so the coordinator does not hang.
                self.complete(job_id, worker, {"error": "unreadable job record"})
                continue
            _job_event("job.claim", job_id, worker=worker)
            return Job.from_jsonable(job_data)
        return None

    def heartbeat(self, job_id: str, worker: str) -> bool:
        leased = self._leased_path(job_id)
        record = self._read(leased)
        if record is None or record.get("worker") != worker:
            return False
        try:
            os.utime(leased)
        except OSError:
            return False
        _job_event("job.heartbeat", job_id, worker=worker)
        return True

    def complete(self, job_id: str, worker: str, result: Dict[str, Any]) -> None:
        record = self._read(self._leased_path(job_id)) or {}
        self._write_atomic(
            self._done_path(job_id),
            {
                "job": record.get("job"),
                "worker": worker,
                "attempts": int(record.get("attempts", 0)),
                "result": result,
                "completed_at": time.time(),
            },
        )
        try:
            os.unlink(self._leased_path(job_id))
        except OSError:
            pass
        _job_event("job.complete", job_id, worker=worker)

    def requeue_expired(self) -> List[str]:
        leased_dir = self.directory / self.LEASED_DIR
        requeued: List[str] = []
        try:
            names = list(os.listdir(leased_dir))
        except OSError:
            return requeued
        now = time.time()
        for name in names:
            if not name.endswith(".json") or name.startswith("."):
                continue
            job_id = name[: -len(".json")]
            leased = leased_dir / name
            record = self._read(leased)
            if record is None:
                continue
            lease_seconds = float(record.get("lease_seconds", DEFAULT_LEASE_SECONDS))
            try:
                heartbeat_age = now - leased.stat().st_mtime
            except OSError:
                continue  # completed (or requeued) under us
            if heartbeat_age <= lease_seconds:
                continue
            if self._done_path(job_id).exists():
                # The worker published its result but crashed before
                # dropping the lease; the result stands, the lease goes.
                try:
                    os.unlink(leased)
                except OSError:
                    pass
                continue
            claimant = leased_dir / f".requeue-{name}"
            try:
                os.rename(leased, claimant)
            except OSError:
                continue  # another sweeper won the requeue
            self._write_atomic(
                self._pending_path(job_id),
                {
                    "job": record.get("job"),
                    "attempts": int(record.get("attempts", 0)) + 1,
                },
            )
            try:
                os.unlink(claimant)
            except OSError:
                pass
            requeued.append(job_id)
            _job_event("job.lease_expired", job_id, worker=record.get("worker"))
            telemetry().count("queue.lease_expiries")
        return requeued

    def status(self, job_id: str) -> Optional[JobStatus]:
        record = self._read(self._done_path(job_id))
        if record is not None:
            return JobStatus(
                job_id=job_id,
                state=DONE,
                attempts=int(record.get("attempts", 0)),
                worker=record.get("worker"),
                result=record.get("result"),
            )
        record = self._read(self._leased_path(job_id))
        if record is not None:
            return JobStatus(
                job_id=job_id,
                state=LEASED,
                attempts=int(record.get("attempts", 0)),
                worker=record.get("worker"),
            )
        record = self._read(self._pending_path(job_id))
        if record is not None:
            return JobStatus(
                job_id=job_id, state=PENDING, attempts=int(record.get("attempts", 0))
            )
        return None

    def forget(self, job_id: str) -> bool:
        try:
            os.unlink(self._done_path(job_id))
            return True
        except OSError:
            return False

    def _count_dir(self, name: str) -> int:
        try:
            return sum(
                1
                for entry in os.listdir(self.directory / name)
                if entry.endswith(".json") and not entry.startswith(".")
            )
        except OSError:
            return 0

    def counts(self) -> Dict[str, int]:
        return {
            PENDING: self._count_dir(self.PENDING_DIR),
            LEASED: self._count_dir(self.LEASED_DIR),
            DONE: self._count_dir(self.DONE_DIR),
        }
