"""Parallel, disk-cached, two-phase execution of simulation plans.

:class:`ExperimentRunner` is the single execution path for every simulation
in the repository.  Each leaf simulation runs in two content-addressed
phases backed by the two tiers of the on-disk
:class:`~repro.runner.cache.ResultCache` (plus in-process dict layers):

1. **Replay** — the functional hierarchy replay producing a
   :class:`~repro.sim.performance_model.ReplayMeasurement`, cached under
   :meth:`~repro.runner.spec.RunSpec.replay_key`.  This is the expensive,
   deterministic phase; it runs **at most once per replay key**.
2. **Score** — the pure analytic scoring of a measurement into
   :class:`~repro.sim.stats.SimulationStats`, cached under
   :meth:`~repro.runner.spec.RunSpec.score_key`.  Sweeping analytic
   parameters (peak IPC, MLP, energy constants) only misses this cheap
   tier — the measurement tier hits and no trace is re-replayed.

* ``simulate`` runs one leaf (profile, config) pair through both phases.
* ``run_configs`` / ``score_many`` run a batch of leaf configs for one
  profile: score-tier misses are grouped by replay key, the missing
  *replays* (not whole simulations) are farmed out to a
  ``ProcessPoolExecutor`` (with a transparent serial fallback when
  multiprocessing is unavailable or ``max_workers <= 1``), and scoring
  happens in-process.
* ``run_plan`` executes a declarative :class:`~repro.runner.spec.ExperimentSpec`
  / :class:`~repro.runner.spec.ExperimentPlan` cell matrix in parallel; each
  worker shares the same on-disk cache, so a warm re-run of a plan costs
  only JSON loads.

Determinism: traces are seeded with process-independent hashes, every cell
carries its own seed, and measurements round-trip JSON exactly, so serial
and parallel execution — and direct runs vs cached-measurement re-scores —
produce bit-identical :class:`~repro.sim.stats.SimulationStats`.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.energy.components import DEFAULT_ENERGIES
from repro.energy.model import EnergyModel
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentCell, ExperimentPlan, ExperimentSpec, RunSpec
from repro.sim.performance_model import PerformanceModel, ReplayMeasurement
from repro.sim.simulator import GPUSimulator, SimulationConfig
from repro.sim.stats import SimulationStats
from repro.telemetry import telemetry
from repro.workloads.applications import ApplicationProfile, get_application

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.energy.components import ComponentEnergies
    from repro.sim.vector_model import MeasurementScorer

#: Environment variable setting the default worker count (0 = serial).
WORKERS_ENV = "REPRO_RUNNER_WORKERS"

#: Environment variable selecting the execution backend: ``local`` (in-process
#: worker pools, the default) or ``service`` (the distributed experiment
#: service of :mod:`repro.runner.service` — replay/cell batches are registered
#: on a job queue and drained by work-stealing worker daemons).
BACKEND_ENV = "REPRO_RUNNER_BACKEND"

#: The backends :class:`ExperimentRunner` accepts.
BACKENDS = ("local", "service")

#: Environment variable disabling the on-disk cache when set to ``0``.
DISK_CACHE_ENV = "REPRO_DISK_CACHE"

#: Environment variable capping the on-disk cache size in bytes.  When set,
#: the runner applies the LRU-by-mtime prune after each completed plan or
#: scenario run (the same cap ``python -m repro.runner prune --max-bytes``
#: applies manually).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"


@dataclass
class ExperimentResult:
    """Results of one executed plan, keyed by cell."""

    plan: ExperimentPlan
    results: Dict[ExperimentCell, SimulationStats]
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Tuple[ExperimentCell, SimulationStats]]:
        for cell in self.plan.cells:
            yield cell, self.results[cell]

    def get(
        self,
        system: str,
        application: str,
        seed: Optional[int] = None,
        sm_count: Optional[int] = None,
        predictor: Optional[str] = None,
    ) -> SimulationStats:
        """The stats of one cell (filters may be omitted when unambiguous)."""
        matches = [
            stats
            for cell, stats in self.results.items()
            if cell.system == system
            and cell.application == application
            and (seed is None or cell.seed == seed)
            and (sm_count is None or cell.sm_count == sm_count)
            and (predictor is None or cell.predictor == predictor)
        ]
        if not matches:
            raise KeyError(f"no result for ({system!r}, {application!r})")
        if len(matches) > 1:
            raise KeyError(
                f"({system!r}, {application!r}) is ambiguous; "
                "pass seed/sm_count/predictor"
            )
        return matches[0]

    def by_application(self, application: str) -> Dict[str, SimulationStats]:
        """``{system: stats}`` for one application.

        Raises ``KeyError`` when the plan has several cells per system for
        ``application`` (multiple seeds or SM counts) — use :meth:`get` with
        ``seed``/``sm_count`` to disambiguate instead of silently collapsing.
        """
        by_system: Dict[str, SimulationStats] = {}
        for cell, stats in self.results.items():
            if cell.application != application:
                continue
            if cell.system in by_system:
                raise KeyError(
                    f"plan has multiple cells for ({cell.system!r}, {application!r}); "
                    "use get(seed=..., sm_count=...)"
                )
            by_system[cell.system] = stats
        return by_system


class ExperimentRunner:
    """Executes leaf simulations, config batches and experiment plans.

    Args:
        cache_dir: On-disk cache directory (default: ``$REPRO_CACHE_DIR`` or
            ``.repro_cache``).
        max_workers: Worker processes for batch/plan execution.  ``None``
            reads ``$REPRO_RUNNER_WORKERS`` (default 0); values <= 1 run
            serially in-process.
        use_disk_cache: Persist results to disk (``$REPRO_DISK_CACHE=0``
            disables the default).
        energy_model: Energy model shared by all runs.
        backend: ``"local"`` (in-process worker pools) or ``"service"``
            (distributed execution through the job queue of
            :mod:`repro.runner.service`).  ``None`` reads
            ``$REPRO_RUNNER_BACKEND`` (default ``"local"``).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_workers: Optional[int] = None,
        use_disk_cache: Optional[bool] = None,
        energy_model: Optional[EnergyModel] = None,
        backend: Optional[str] = None,
    ) -> None:
        if max_workers is None:
            max_workers = int(os.environ.get(WORKERS_ENV, "0") or 0)
        if use_disk_cache is None:
            use_disk_cache = os.environ.get(DISK_CACHE_ENV, "1") != "0"
        if backend is None:
            backend = os.environ.get(BACKEND_ENV, "").strip() or "local"
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown runner backend {backend!r}; expected one of {BACKENDS}"
            )
        self.max_workers = max_workers
        self.use_disk_cache = use_disk_cache
        self.backend = backend
        self.disk_cache = ResultCache(cache_dir)
        self._energy_model = energy_model
        self.memory_hits = 0
        self.measurement_memory_hits = 0
        #: Trace replays actually executed on behalf of this runner (serial,
        #: via worker pools, or — folded back from per-task accounting — via
        #: service workers).  A warm-cache or analytic re-scoring pass keeps
        #: this at zero.
        self.replays = 0
        #: Per-batch :class:`~repro.runner.service.ServiceReport` accounting
        #: when the ``service`` backend executed work for this runner.
        self.service_reports: List = []
        self._memory: Dict[str, SimulationStats] = {}
        self._measurement_memory: Dict[str, ReplayMeasurement] = {}
        self._scenario_memory: Dict[str, Dict] = {}
        self._performance_model = PerformanceModel(energy_model)
        self._cache_suspended = False
        self._service = None
        self._service_finalizer = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_finalizer = None

    # -- cache plumbing ---------------------------------------------------------------

    @property
    def cache_dir(self) -> str:
        """The on-disk cache directory path."""
        return str(self.disk_cache.directory)

    @property
    def energy_model(self) -> Optional[EnergyModel]:
        """The energy model scoring uses.

        Read-only: the scoring model and the score keys must agree on the
        energy constants, so swapping models mid-life would poison the
        shared cache.  Use :meth:`with_energy_model` to re-score under
        different constants instead.
        """
        return self._energy_model

    def with_energy_model(self, energy_model: Optional[EnergyModel]) -> "ExperimentRunner":
        """A sibling runner scoring with ``energy_model`` but sharing caches.

        The sibling shares this runner's on-disk cache object (both tiers,
        including counters) and in-process layers, so re-scoring under
        different energy constants is served from the measurement tier at
        zero replay cost.  Used by :mod:`repro.analysis.rescoring`.
        """
        sibling = ExperimentRunner(
            cache_dir=self.cache_dir,
            max_workers=self.max_workers,
            use_disk_cache=self.use_disk_cache,
            energy_model=energy_model,
            backend=self.backend,
        )
        sibling.disk_cache = self.disk_cache
        sibling._memory = self._memory
        sibling._measurement_memory = self._measurement_memory
        sibling._scenario_memory = self._scenario_memory
        return sibling

    def clear_memory_cache(self) -> None:
        """Drop the in-process result/measurement layers (disk is untouched)."""
        self._memory.clear()
        self._measurement_memory.clear()
        self._scenario_memory.clear()

    def clear_scored_stats(self) -> None:
        """Drop scored stats from every layer this runner uses, keeping measurements.

        After this, the next run re-derives every result from cached
        measurements — pure analytic scoring, zero replays.  Scenario-level
        aggregates are dropped too (they are derived from scored stats, and
        keeping them would let a warm timeline run skip the very scoring
        path being timed).  Benchmarks use it between timed rounds.  The
        on-disk stats/scenario tiers are only touched when this runner
        actually uses them.
        """
        self._memory.clear()
        self._scenario_memory.clear()
        if self.use_disk_cache:
            self.disk_cache.prune(tier=self.disk_cache.STATS_TIER)
            self.disk_cache.prune(tier=self.disk_cache.SCENARIOS_TIER)

    def maybe_auto_prune(self) -> int:
        """Apply the ``$REPRO_CACHE_MAX_BYTES`` size cap, if one is configured.

        Called after each completed plan or scenario run, so long-lived
        experiment campaigns keep the cache bounded without anyone having to
        schedule ``python -m repro.runner prune`` manually.  Evicts
        least-recently-modified entries first (both tiers); returns the
        number of files removed (0 when the variable is unset, unparsable
        or the disk cache is disabled).
        """
        if not self.use_disk_cache:
            return 0
        raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
        if not raw:
            return 0
        try:
            max_bytes = int(raw)
        except ValueError:
            warnings.warn(
                f"ignoring unparsable {CACHE_MAX_BYTES_ENV}={raw!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return 0
        if max_bytes < 0:
            return 0
        with telemetry().span("runner.auto_prune", max_bytes=max_bytes) as span:
            removed = self.disk_cache.prune(max_bytes=max_bytes)
            span.set(removed=removed)
        return removed

    @contextmanager
    def cache_bypassed(self) -> Iterator[None]:
        """Context manager: recompute results, but still store them."""
        previous = self._cache_suspended
        self._cache_suspended = True
        try:
            yield
        finally:
            self._cache_suspended = previous

    def _lookup(self, key: str) -> Optional[SimulationStats]:
        if self._cache_suspended:
            return None
        cached = self._memory.get(key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        if self.use_disk_cache:
            tel = telemetry()
            if tel.enabled:
                start = time.perf_counter()
                loaded = self.disk_cache.load(key)
                tel.observe("runner.cache_lookup_seconds", time.perf_counter() - start)
            else:
                loaded = self.disk_cache.load(key)
            if loaded is not None:
                self._memory[key] = loaded
                return loaded
        return None

    def _store(self, key: str, stats: SimulationStats) -> None:
        self._memory[key] = stats
        if self.use_disk_cache:
            self.disk_cache.store(key, stats)

    def _lookup_measurement(self, replay_key: str) -> Optional[ReplayMeasurement]:
        if self._cache_suspended:
            return None
        cached = self._measurement_memory.get(replay_key)
        if cached is not None:
            self.measurement_memory_hits += 1
            return cached
        if self.use_disk_cache:
            tel = telemetry()
            if tel.enabled:
                start = time.perf_counter()
                loaded = self.disk_cache.load_measurement(replay_key)
                tel.observe("runner.cache_lookup_seconds", time.perf_counter() - start)
            else:
                loaded = self.disk_cache.load_measurement(replay_key)
            if loaded is not None:
                self._measurement_memory[replay_key] = loaded
                return loaded
        return None

    def _store_measurement(
        self,
        replay_key: str,
        measurement: ReplayMeasurement,
        mode: str = "replay",
    ) -> None:
        self._measurement_memory[replay_key] = measurement
        if self.use_disk_cache:
            self.disk_cache.store_measurement(replay_key, measurement, mode=mode)

    @property
    def cache_suspended(self) -> bool:
        """True inside a :meth:`cache_bypassed` block (results are recomputed)."""
        return self._cache_suspended

    def load_scenario_payload(self, run_key: str) -> Optional[Dict]:
        """The cached scenario-aggregate payload for ``run_key``, if any.

        Scenario aggregates live in their own cache tier keyed by
        :meth:`~repro.scenarios.engine.ScenarioEngine.run_key`; the scenario
        engine owns the payload schema and rebuilds a
        :class:`~repro.scenarios.engine.ScenarioRunResult` from it.
        """
        if self._cache_suspended:
            return None
        cached = self._scenario_memory.get(run_key)
        if cached is not None:
            return cached
        if self.use_disk_cache:
            loaded = self.disk_cache.load_scenario(run_key)
            if loaded is not None:
                self._scenario_memory[run_key] = loaded
                return loaded
        return None

    def store_scenario_payload(self, run_key: str, payload: Dict) -> None:
        """Persist a scenario-aggregate payload under ``run_key``."""
        self._scenario_memory[run_key] = payload
        if self.use_disk_cache:
            self.disk_cache.store_scenario(run_key, payload)

    # -- leaf execution ---------------------------------------------------------------

    def _energies(self):
        """The energy-model constants results are scored (and keyed) with."""
        if self.energy_model is not None:
            return self.energy_model.energies
        return DEFAULT_ENERGIES

    def _run_spec(
        self, profile: ApplicationProfile, config: SimulationConfig
    ) -> RunSpec:
        return RunSpec(profile, config, self._energies())

    def _score(
        self,
        profile: ApplicationProfile,
        config: SimulationConfig,
        measurement: ReplayMeasurement,
    ) -> SimulationStats:
        """Phase 2: pure analytic scoring of one measurement."""
        return self._performance_model.score(profile, config, measurement)

    def _obtain_measurement(
        self, profile: ApplicationProfile, config: SimulationConfig, replay_key: str
    ) -> ReplayMeasurement:
        """Phase 1: the measurement for ``replay_key``, replaying only on a miss."""
        measurement = self._lookup_measurement(replay_key)
        if measurement is None:
            measurement = _traced_replay(profile, config, replay_key)
            self.replays += 1
            self._store_measurement(replay_key, measurement, mode=config.replay_mode)
        return measurement

    def measurement_for(
        self, profile: ApplicationProfile, config: SimulationConfig
    ) -> ReplayMeasurement:
        """The replay measurement for one leaf, replaying only on a miss.

        Phase 1 alone: used by callers that score one measurement many
        times in-process (e.g. the co-run contention solver's iterations)
        without touching the stats tier per variant.
        """
        run = self._run_spec(profile, config)
        return self._obtain_measurement(profile, config, run.replay_key())

    def score_measurement(
        self,
        profile: ApplicationProfile,
        config: SimulationConfig,
        measurement: ReplayMeasurement,
    ) -> SimulationStats:
        """Phase 2 alone: pure analytic scoring, no cache interaction.

        The complement of :meth:`measurement_for`; bit-identical to what
        :meth:`simulate` would produce for the same inputs because scoring
        is a pure function of (profile, config, measurement, energies).
        """
        return self._score(profile, config, measurement)

    def scorer_for(
        self,
        profile: ApplicationProfile,
        config: SimulationConfig,
        measurement: ReplayMeasurement,
    ) -> "MeasurementScorer":
        """A precomputed scorer over ``measurement`` (this runner's energy model).

        For callers that score one measurement under many score-tier
        variants in-process (the contention solver's per-iteration
        envelopes): the replay-side invariants are hoisted once, and
        :meth:`~repro.sim.vector_model.MeasurementScorer.score_envelope` /
        :meth:`~repro.sim.vector_model.MeasurementScorer.score_batch`
        results are bit-identical to :meth:`score_measurement`.
        """
        return self._performance_model.scorer(profile, config, measurement)

    def score_energy_grid(
        self,
        profile: ApplicationProfile,
        config: SimulationConfig,
        energies_grid: Sequence["ComponentEnergies"],
    ) -> List[SimulationStats]:
        """Score one leaf under many energy-constant variants, batched.

        Each grid point has its own score key (energies are keyed), so warm
        points are served from the stats tier; the cold points share one
        measurement fetch and one roofline evaluation
        (:meth:`~repro.sim.vector_model.MeasurementScorer.score_energy_batch`).
        Bit-identical to scoring each point through a
        :meth:`with_energy_model` sibling's :meth:`simulate`, at a fraction
        of the per-point key-derivation and cache traffic.
        """
        specs = []
        replay_key: Optional[str] = None
        for energies in energies_grid:
            spec = RunSpec(profile, config, energies)
            if replay_key is None:
                replay_key = spec.replay_key()
            else:
                # All points share the replay inputs; reuse the memoized key
                # instead of re-rendering the profile per point.
                object.__setattr__(spec, "_replay_key", replay_key)
            specs.append(spec)
        results: List[Optional[SimulationStats]] = [None] * len(specs)
        score_keys = [spec.score_key() for spec in specs]
        pending = []
        for index, key in enumerate(score_keys):
            cached = self._lookup(key)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
        if pending:
            assert replay_key is not None
            measurement = self._obtain_measurement(profile, config, replay_key)
            scorer = self.scorer_for(profile, config, measurement)
            scored = scorer.score_energy_batch(
                config,
                [EnergyModel(specs[index].energies) for index in pending],
            )
            for index, stats in zip(pending, scored):
                self._store(score_keys[index], stats)
                results[index] = stats
        return [stats for stats in results if stats is not None]

    def simulate(
        self, profile: ApplicationProfile, config: SimulationConfig
    ) -> SimulationStats:
        """Run one leaf simulation through the two-phase cache."""
        run = self._run_spec(profile, config)
        score_key = run.score_key()
        cached = self._lookup(score_key)
        if cached is not None:
            return cached
        measurement = self._obtain_measurement(profile, config, run.replay_key())
        tel = telemetry()
        if tel.enabled:
            start = time.perf_counter()
            stats = self._score(profile, config, measurement)
            tel.observe("runner.score_seconds", time.perf_counter() - start)
        else:
            stats = self._score(profile, config, measurement)
        self._store(score_key, stats)
        return stats

    def run_configs(
        self,
        profile: ApplicationProfile,
        configs: Sequence[SimulationConfig],
        parallel: bool = True,
    ) -> List[SimulationStats]:
        """Run many configs for one profile, parallelizing replay-tier misses.

        Score-tier misses are grouped by replay key, so configs differing
        only in analytic parameters share one replay; only the measurements
        that are missing from both the in-process layer and the on-disk
        measurement tier are farmed out to worker processes.  Scoring is
        cheap and always happens in-process.
        """
        return self.run_leaves([(profile, config) for config in configs], parallel)

    def run_leaves(
        self,
        leaves: Sequence[Tuple[ApplicationProfile, SimulationConfig]],
        parallel: bool = True,
    ) -> List[SimulationStats]:
        """Run many (profile, config) leaves in one replay-pooled batch.

        The general form of :meth:`run_configs`: leaves may mix profiles
        (a multi-application scenario timeline), and all replay-tier misses
        across the whole batch share one worker pool — no per-profile
        serialization.  Replay keys embed the profile, so grouping by key
        never conflates applications.
        """
        tel = telemetry()
        if not tel.enabled:
            return self._run_leaves_impl(leaves, parallel)
        with tel.span("runner.run_leaves", leaves=len(leaves)) as span:
            results = self._run_leaves_impl(leaves, parallel, span)
        return results

    def _run_leaves_impl(
        self,
        leaves: Sequence[Tuple[ApplicationProfile, SimulationConfig]],
        parallel: bool = True,
        span=None,
    ) -> List[SimulationStats]:
        runs = [self._run_spec(profile, config) for profile, config in leaves]
        score_keys = [run.score_key() for run in runs]
        results: List[Optional[SimulationStats]] = [None] * len(leaves)
        pending: List[int] = []
        for index, key in enumerate(score_keys):
            cached = self._lookup(key)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        if pending:
            # One replay serves every pending analytic variant of its key.
            replay_keys: Dict[int, str] = {}
            by_replay: Dict[str, List[int]] = {}
            for index in pending:
                key = runs[index].replay_key()
                replay_keys[index] = key
                by_replay.setdefault(key, []).append(index)

            measurements: Dict[str, ReplayMeasurement] = {}
            missing: List[str] = []
            for key in by_replay:
                cached_measurement = self._lookup_measurement(key)
                if cached_measurement is not None:
                    measurements[key] = cached_measurement
                else:
                    missing.append(key)

            if missing and parallel and self._service_enabled():
                # Distributed backend: one replay job per missing key; the
                # workers publish measurements to the shared cache and the
                # batch is re-read below through the ordinary serial path
                # (bit-identity by construction).  Any key the service could
                # not materialize falls through to local execution.
                self._service_backend().run_replays(
                    self,
                    [
                        (leaves[by_replay[key][0]][0], leaves[by_replay[key][0]][1], key)
                        for key in missing
                    ],
                )
                still_missing: List[str] = []
                for key in missing:
                    loaded = self._lookup_measurement(key)
                    if loaded is not None:
                        measurements[key] = loaded
                    else:  # pragma: no cover - defensive
                        still_missing.append(key)
                missing = still_missing

            if span is not None:
                span.set(pending=len(pending), replay_misses=len(missing))
            workers = self._effective_workers(len(missing)) if parallel else 1
            computed: Optional[List[ReplayMeasurement]] = None
            if missing and workers > 1:
                jobs = [leaves[by_replay[key][0]] for key in missing]
                computed = self._pool_map(_replay_worker, jobs, workers)
            if computed is None:
                computed = [
                    _replay_worker(leaves[by_replay[key][0]]) for key in missing
                ]
            for key, measurement in zip(missing, computed):
                self.replays += 1
                self._store_measurement(
                    key, measurement, mode=leaves[by_replay[key][0]][1].replay_mode
                )
                measurements[key] = measurement

            # Score each replay group in one batch: same key ⇒ same replay
            # parameters and profile content, so per-config validation is
            # redundant and one vectorized pass covers the whole group.
            with telemetry().span(
                "runner.score", groups=len(by_replay), leaves=len(pending)
            ):
                for key, indices in by_replay.items():
                    measurement = measurements[key]
                    if len(indices) == 1:
                        index = indices[0]
                        profile, config = leaves[index]
                        scored = [self._score(profile, config, measurement)]
                    else:
                        profile = leaves[indices[0]][0]
                        scored = self._performance_model.score_batch(
                            profile,
                            [leaves[index][1] for index in indices],
                            measurement,
                            validate=False,
                        )
                    for index, stats in zip(indices, scored):
                        self._store(score_keys[index], stats)
                        results[index] = stats
        return [stats for stats in results if stats is not None]

    def score_many(
        self,
        profile: ApplicationProfile,
        configs: Sequence[SimulationConfig],
        parallel: bool = True,
    ) -> List[SimulationStats]:
        """Batch re-scoring API: score many analytic variants of one profile.

        Semantically identical to :meth:`run_configs` — named for the common
        case where every config shares its replay inputs with an
        already-replayed run (an MLP/peak-IPC/energy sweep), so the whole
        batch is served from the measurement tier at zero replay cost.
        Check :attr:`replays` afterwards to assert that no replay happened.
        """
        return self.run_configs(profile, configs, parallel=parallel)

    # -- plan execution ---------------------------------------------------------------

    def run_plan(self, plan: ExperimentPlan | ExperimentSpec) -> ExperimentResult:
        """Execute every cell of ``plan`` and return the collected results."""
        if isinstance(plan, ExperimentSpec):
            plan = plan.expand()
        start = time.perf_counter()
        with telemetry().span(
            "runner.run_plan", cells=len(plan.cells), backend=self.backend
        ):
            results = self._run_plan_cells(plan)
        self.maybe_auto_prune()
        return ExperimentResult(
            plan=plan,
            results=results,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _run_plan_cells(
        self, plan: ExperimentPlan
    ) -> Dict[ExperimentCell, SimulationStats]:
        workers = self._effective_workers(len(plan.cells))
        computed: Optional[List[SimulationStats]] = None
        if self._service_enabled() and plan.cells:
            # Distributed backend: every cell becomes a service job; workers
            # publish all leaf results to the shared cache and the plan is
            # then re-executed serially over the warm cache — pure cache
            # hits, bit-identical to a serial run by construction.
            self._service_backend().run_plan_cells(self, plan)
            computed = [self._execute_cell(cell, plan.spec) for cell in plan.cells]
        if computed is None and workers > 1:
            jobs = [
                (cell, plan.spec, self.cache_dir, self.use_disk_cache, self.energy_model)
                for cell in plan.cells
            ]
            pooled = self._pool_map(_cell_worker, jobs, workers)
            if pooled is not None:
                # Workers count replays and cache hits/misses on their own
                # runners; fold both back so this runner's `replays` and its
                # cache's tier counters stay truthful under pooling.
                computed = [stats for stats, _, _ in pooled]
                self.replays += sum(replays for _, replays, _ in pooled)
                for _, _, counters in pooled:
                    self.disk_cache.absorb_counters(counters)
        if computed is None:
            computed = [self._execute_cell(cell, plan.spec) for cell in plan.cells]
        return dict(zip(plan.cells, computed))

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Expand and execute ``spec`` (convenience wrapper for ``run_plan``)."""
        return self.run_plan(spec)

    def _execute_cell(self, cell: ExperimentCell, spec: ExperimentSpec) -> SimulationStats:
        # Imported lazily: repro.systems modules call back into the runner.
        from repro.systems.registry import evaluate_application

        profile = get_application(cell.application)
        fidelity = cell.fidelity if cell.fidelity is not None else spec.fidelity
        if cell.sm_count is not None:
            config = SimulationConfig(
                gpu=spec.gpu,
                num_compute_sms=cell.sm_count,
                power_gate_unused=True,
                capacity_scale=fidelity.capacity_scale,
                trace_accesses=fidelity.trace_accesses,
                warmup_accesses=fidelity.warmup_accesses,
                system_name=cell.system,
                replay_mode=fidelity.mode,
                seed=cell.seed,
            )
            return self.simulate(profile, config)
        # Systems resolve the process-wide runner internally; scope it to
        # this runner so their leaf runs use this cache and energy model.
        with using_runner(self):
            return evaluate_application(
                cell.system,
                profile,
                spec.gpu,
                fidelity,
                seed=cell.seed,
                predictor=cell.predictor,
            )

    # -- service backend --------------------------------------------------------------

    def _service_enabled(self) -> bool:
        """Whether batches should route through the distributed service.

        The service publishes results through the shared on-disk cache, so
        it is only usable when that cache is on and not bypassed; otherwise
        the runner silently uses the local backend (results are identical).
        """
        return (
            self.backend == "service"
            and self.use_disk_cache
            and not self._cache_suspended
        )

    def _service_backend(self):
        """The lazily created :class:`~repro.runner.service.DistributedBackend`.

        Created on first use (the first batch with actual cache misses), so
        warm-cache runs under ``REPRO_RUNNER_BACKEND=service`` never touch
        the queue or spawn a worker.  Worker count: ``$REPRO_SERVICE_WORKERS``
        or this runner's ``max_workers`` (min 1 — the service parallelizes
        across daemons, not in-process pools).
        """
        if self._service is None:
            # Imported lazily: the service module imports this one.
            from repro.runner.service import (
                SERVICE_WORKERS_ENV,
                DistributedBackend,
                ExperimentService,
            )

            env_workers = int(os.environ.get(SERVICE_WORKERS_ENV, "0") or 0)
            service = ExperimentService(
                cache_dir=self.cache_dir,
                num_workers=env_workers if env_workers > 0 else max(1, self.max_workers),
                use_disk_cache=self.use_disk_cache,
            )
            self._service = DistributedBackend(service)
            # Spawned worker daemons outlive one batch (they idle-exit or
            # wait for more work); stop them when this runner is dropped.
            self._service_finalizer = weakref.finalize(self, service.stop)
        return self._service

    # -- worker-pool plumbing ---------------------------------------------------------

    def _effective_workers(self, num_jobs: int) -> int:
        if num_jobs <= 1:
            return 1
        workers = self.max_workers
        if workers is None or workers <= 0:
            return 1
        return min(workers, num_jobs, os.cpu_count() or 1)

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The persistent worker pool, created on first use (or ``None``).

        One ``ProcessPoolExecutor`` serves every ``_pool_map`` call for the
        life of the runner, so a plan/scenario run pays worker startup once
        instead of once per batch.  Sized ``min(max_workers, cpu_count)`` —
        an upper bound for every per-batch ``_effective_workers`` value, so
        no call is ever under-provisioned; idle workers cost nothing.
        """
        if self._pool is None:
            size = min(self.max_workers, os.cpu_count() or 1)
            if size < 1:
                return None
            try:
                self._pool = ProcessPoolExecutor(max_workers=size)
            except (OSError, PermissionError, NotImplementedError, ImportError) as error:
                warnings.warn(
                    f"process pool unavailable ({error}); running serially",
                    RuntimeWarning,
                    stacklevel=4,
                )
                return None
            self._pool_finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        return self._pool

    def _teardown_pool(self) -> None:
        """Shut the persistent pool down (idempotent; a later call recreates it)."""
        pool, self._pool = self._pool, None
        finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _pool_map(self, func, jobs, workers: int) -> Optional[List]:
        """Map ``func`` over ``jobs`` in the persistent pool; ``None`` on failure.

        Sandboxes without working multiprocessing primitives fall back to
        serial execution — results are identical either way.  A pool whose
        workers died (``BrokenProcessPool``) is torn down so the next batch
        can start a fresh one.
        """
        pool = self._ensure_pool()
        if pool is None:
            return None
        try:
            with telemetry().span(
                "runner.pool_dispatch", jobs=len(jobs), workers=workers
            ):
                return list(pool.map(func, jobs))
        except (
            BrokenProcessPool,
            OSError,
            PermissionError,
            NotImplementedError,
            ImportError,
        ) as error:
            self._teardown_pool()
            warnings.warn(
                f"process pool unavailable ({error}); running serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Release pooled resources: worker processes, service daemons.

        Idempotent, and optional — both resources are also reclaimed when
        the runner is garbage-collected (and are created lazily, so a
        runner that never pooled work holds nothing).  The on-disk cache
        needs no closing.
        """
        self._teardown_pool()
        self._service = None
        finalizer, self._service_finalizer = self._service_finalizer, None
        if finalizer is not None:
            finalizer()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Finalizer body for the persistent pool (module-level: picklable, no self)."""
    pool.shutdown(wait=False, cancel_futures=True)


def _traced_replay(
    profile: ApplicationProfile,
    config: SimulationConfig,
    replay_key: str = "",
) -> ReplayMeasurement:
    """One trace replay under a ``runner.replay`` span (no-op when disabled)."""
    tel = telemetry()
    if not tel.enabled:
        return GPUSimulator(config).replay(profile)
    with tel.span(
        "runner.replay",
        app=profile.name,
        mode=config.replay_mode,
        replay_key=replay_key,
    ):
        return GPUSimulator(config).replay(profile)


def _replay_worker(
    job: Tuple[ApplicationProfile, SimulationConfig]
) -> ReplayMeasurement:
    """Worker-process entry point for one trace replay (phase 1 only).

    Scoring happens in the parent, so the worker needs no energy model and
    ships back only the compact measurement.
    """
    profile, config = job
    measurement = _traced_replay(profile, config)
    # Pool workers may be torn down without running exit handlers; flush
    # the span before handing the result back.
    telemetry().flush()
    return measurement


def _cell_worker(
    job: Tuple[ExperimentCell, ExperimentSpec, str, bool, Optional[EnergyModel]]
) -> Tuple[SimulationStats, int, Dict[str, int]]:
    """Worker-process entry point for one plan cell.

    Each worker installs its own serial runner pointed at the shared cache
    directory, so the leaf simulations behind a system evaluation (including
    SM-count searches) land in the same on-disk cache as the parent's.
    Returns the cell's stats plus the worker's trace-replay count and cache
    tier counters, which the parent folds into its own ``replays`` and
    ``disk_cache`` counters.
    """
    cell, spec, cache_dir, use_disk_cache, energy_model = job
    runner = ExperimentRunner(
        cache_dir=cache_dir,
        max_workers=0,
        use_disk_cache=use_disk_cache,
        energy_model=energy_model,
        backend="local",
    )
    set_active_runner(runner)
    with telemetry().span(
        "runner.cell", system=cell.system, app=cell.application
    ):
        stats = runner._execute_cell(cell, spec)
    telemetry().flush()
    return stats, runner.replays, runner.disk_cache.tier_counters()


# -- the process-wide runner ---------------------------------------------------------

_ACTIVE_RUNNER: Optional[ExperimentRunner] = None


def active_runner() -> ExperimentRunner:
    """The process-wide runner used by systems, sweeps and the registry."""
    global _ACTIVE_RUNNER
    if _ACTIVE_RUNNER is None:
        _ACTIVE_RUNNER = ExperimentRunner()
    return _ACTIVE_RUNNER


def set_active_runner(runner: Optional[ExperimentRunner]) -> Optional[ExperimentRunner]:
    """Install ``runner`` as the process-wide runner; returns the previous one."""
    global _ACTIVE_RUNNER
    previous = _ACTIVE_RUNNER
    _ACTIVE_RUNNER = runner
    return previous


@contextmanager
def using_runner(runner: ExperimentRunner) -> Iterator[ExperimentRunner]:
    """Context manager scoping the process-wide runner to ``runner``."""
    previous = set_active_runner(runner)
    try:
        yield runner
    finally:
        set_active_runner(previous)
