"""Distributed experiment service: work-stealing workers behind the shared cache.

Evaluation sweeps are embarrassingly parallel at the leaf level, and since
the two-phase split every leaf is *relocatable*: a ``replay_key`` names its
measurement and a ``score_key`` its stats wherever they were computed.  This
module exploits that: a coordinator expands a batch of work into
deduplicated **jobs** (one trace replay per distinct replay key, one plan
cell per distinct cell), registers them on a :class:`~repro.runner.queue.JobQueue`,
and a pool of work-stealing worker daemons drains the queue into the shared
content-addressed :class:`~repro.runner.cache.ResultCache` tiers.  Results
never travel through the queue — workers publish measurements/stats to the
cache, the coordinator re-derives the batch from the (now warm) cache
through the ordinary serial path, so a distributed run is **bit-identical**
to a serial one by construction.

Guarantees:

* **At-most-once replay per replay key.**  Replay job ids *are* replay
  keys; queue submission is idempotent per id and a claim is one atomic
  rename, so two workers can never replay the same key concurrently.
* **Crash resumability.**  A killed worker's lease expires and the job is
  requeued exactly once per expiry; a killed-and-restarted run finds
  completed leaves in the cache (cache misses are the only thing enqueued)
  and resumes without re-replaying them.
* **Accounting.**  Every completed job records its worker, attempts,
  runtime and cache-counter deltas; the coordinator folds them into the
  requesting runner so ``replays``/tier counters stay truthful.

Entry points:

* ``python -m repro.runner serve --queue-dir DIR`` — run one worker daemon
  (start any number, on any machine sharing the filesystem).
* :class:`DistributedBackend` — the :class:`~repro.runner.runner.ExperimentRunner`
  adapter, selected with ``REPRO_RUNNER_BACKEND=service``.  The scenario
  engine inherits it automatically: scenario timelines lower to leaf
  batches through ``ExperimentRunner.run_leaves``.

The queue protocol (claim/lease/heartbeat/complete/requeue) is backend
agnostic — see :mod:`repro.runner.queue` for the drop-in contract a
Redis/HTTP implementation must satisfy.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.energy.components import ComponentEnergies
from repro.energy.model import EnergyModel
from repro.runner import codec
from repro.runner.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR
from repro.runner.queue import (
    DEFAULT_LEASE_SECONDS,
    DONE,
    FileQueue,
    InProcessQueue,
    Job,
    JobQueue,
)
from repro.runner.spec import (
    REPLAY_SCHEMA_VERSION,
    SCORE_SCHEMA_VERSION,
    ExperimentCell,
    ExperimentPlan,
    ExperimentSpec,
    content_hash,
)
from repro.runner.runner import BACKEND_ENV
from repro.sim.simulator import SimulationConfig
from repro.telemetry import get_logger, telemetry
from repro.workloads.applications import ApplicationProfile

logger = get_logger(__name__)

#: Environment variable setting the service's worker-daemon count.
SERVICE_WORKERS_ENV = "REPRO_SERVICE_WORKERS"

#: Environment variable overriding the queue directory (default:
#: ``<cache_dir>/queue``, so workers and cache share one filesystem root).
SERVICE_QUEUE_DIR_ENV = "REPRO_SERVICE_QUEUE_DIR"

#: Job kinds the service understands.
REPLAY_JOB = "replay"
CELL_JOB = "cell"

#: How long a coordinator waits for registered jobs before giving up.
DEFAULT_WAIT_TIMEOUT_SECONDS = 600.0


# -- job construction ------------------------------------------------------------------


def replay_job(
    profile: ApplicationProfile, config: SimulationConfig, replay_key: str
) -> Job:
    """The queue job replaying one leaf (job id == replay key ⇒ dedup)."""
    return Job(
        job_id=f"{REPLAY_JOB}-{replay_key}",
        kind=REPLAY_JOB,
        payload={
            "profile": codec.encode(profile),
            "config": codec.encode(config),
            "replay_key": replay_key,
        },
    )


def cell_job(
    cell: ExperimentCell,
    spec: ExperimentSpec,
    energies: Optional[ComponentEnergies],
) -> Job:
    """The queue job evaluating one plan cell (content-hash id ⇒ dedup)."""
    job_id = content_hash(
        {
            "schema": (REPLAY_SCHEMA_VERSION, SCORE_SCHEMA_VERSION),
            "cell": cell,
            "spec": spec,
            "energies": energies,
        }
    )
    return Job(
        job_id=f"{CELL_JOB}-{job_id}",
        kind=CELL_JOB,
        payload={
            "cell": codec.encode(cell),
            "spec": codec.encode(spec),
            "energies": codec.encode(energies) if energies is not None else None,
        },
    )


# -- job execution (runs in workers and in the coordinator's inline drain) -------------


def execute_job(
    job: Job, cache_dir: str, use_disk_cache: bool = True
) -> Dict[str, Any]:
    """Execute one claimed job against the shared cache; the completion record.

    Runs on a fresh serial runner pointed at the shared cache directory, so
    the record's ``replays``/``counters`` are exact per-job deltas for the
    coordinator's accounting, and all results land where every other runner
    will find them.
    """
    # Imported here: the runner module lazily imports this one (backends).
    from repro.runner.runner import ExperimentRunner, using_runner

    start = time.perf_counter()
    runner = ExperimentRunner(
        cache_dir=cache_dir,
        max_workers=0,
        use_disk_cache=use_disk_cache,
        backend="local",
    )
    # Spanned here — not in callers — so worker daemons, inline coordinator
    # drains and external ``serve`` processes all record execution time.
    with telemetry().span("job.execute", job_id=job.job_id, kind=job.kind):
        if job.kind == REPLAY_JOB:
            profile = codec.decode(ApplicationProfile, job.payload["profile"])
            config = codec.decode(SimulationConfig, job.payload["config"])
            runner.measurement_for(profile, config)
        elif job.kind == CELL_JOB:
            cell = codec.decode(ExperimentCell, job.payload["cell"])
            spec = codec.decode(ExperimentSpec, job.payload["spec"])
            energies_data = job.payload.get("energies")
            if energies_data is not None:
                runner = ExperimentRunner(
                    cache_dir=cache_dir,
                    max_workers=0,
                    use_disk_cache=use_disk_cache,
                    energy_model=EnergyModel(
                        codec.decode(ComponentEnergies, energies_data)
                    ),
                    backend="local",
                )
            with using_runner(runner):
                runner._execute_cell(cell, spec)
        else:
            raise ValueError(f"unknown job kind {job.kind!r}")
    return {
        "ok": True,
        "kind": job.kind,
        "runtime_seconds": time.perf_counter() - start,
        "replays": runner.replays,
        "counters": runner.disk_cache.tier_counters(),
    }


class _LeaseHeartbeat(threading.Thread):
    """Background lease refresh while a worker executes one job."""

    def __init__(
        self, queue: JobQueue, job_id: str, worker: str, interval: float
    ) -> None:
        super().__init__(daemon=True)
        self._queue = queue
        self._job_id = job_id
        self._worker = worker
        self._interval = max(0.05, interval)
        self._stop = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing dependent
        try:
            while not self._stop.wait(self._interval):
                if not self._queue.heartbeat(self._job_id, self._worker):
                    return
        except Exception:
            # A dying heartbeat thread must not be silent: the lease will
            # expire mid-execution and the job will run twice.
            logger.exception(
                "lease heartbeat for job %s (worker %s) failed",
                self._job_id,
                self._worker,
            )

    def stop(self) -> None:
        self._stop.set()


def worker_loop(
    queue: JobQueue,
    cache_dir: str,
    worker_id: Optional[str] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_seconds: float = 0.05,
    idle_exit_seconds: Optional[float] = None,
    stop_file: Optional[str] = None,
    use_disk_cache: bool = True,
    drain_and_exit: bool = False,
) -> int:
    """Drain ``queue`` into the shared cache; the number of jobs executed.

    The work-stealing daemon body: claim whatever is pending (sweeping
    expired leases of crashed peers on the way), execute it, publish the
    result to the cache, complete the job.  Exits when ``stop_file``
    appears, after ``idle_exit_seconds`` without work, or — with
    ``drain_and_exit`` — as soon as the queue has nothing to claim.

    A failing job completes with ``ok: False`` and its error message (the
    coordinator re-raises); the daemon itself keeps serving.
    """
    worker = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    tel = telemetry()
    executed = 0
    idle_since = time.monotonic()
    try:
        while True:
            if stop_file is not None and os.path.exists(stop_file):
                break
            queue.requeue_expired()
            job = queue.claim(worker, lease_seconds)
            if job is None:
                if drain_and_exit:
                    break
                if (
                    idle_exit_seconds is not None
                    and time.monotonic() - idle_since > idle_exit_seconds
                ):
                    break
                time.sleep(poll_seconds)
                continue
            if tel.enabled:
                tel.observe(
                    "worker.idle_seconds", time.monotonic() - idle_since
                )
            logger.debug("worker %s claimed job %s", worker, job.job_id)
            heartbeat = _LeaseHeartbeat(queue, job.job_id, worker, lease_seconds / 3.0)
            heartbeat.start()
            try:
                result = execute_job(job, cache_dir, use_disk_cache)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                heartbeat.stop()
                queue.complete(job.job_id, worker, {"ok": False, "error": "interrupted"})
                raise
            except BaseException as error:
                logger.warning("worker %s: job %s failed: %r", worker, job.job_id, error)
                result = {"ok": False, "kind": job.kind, "error": repr(error)}
            finally:
                heartbeat.stop()
            queue.complete(job.job_id, worker, result)
            executed += 1
            if tel.enabled:
                tel.count("worker.jobs")
            idle_since = time.monotonic()
    finally:
        # Spawned daemons exit without running atexit handlers reliably;
        # flush so the trace keeps every job this worker executed.
        tel.flush()
    return executed


def _spawned_worker_main(
    queue_dir: str,
    cache_dir: str,
    worker_id: str,
    lease_seconds: float,
    poll_seconds: float,
    idle_exit_seconds: Optional[float],
    stop_file: str,
) -> None:  # pragma: no cover - runs in child processes
    """Entry point of the daemons :class:`ExperimentService` spawns."""
    worker_loop(
        FileQueue(queue_dir),
        cache_dir,
        worker_id=worker_id,
        lease_seconds=lease_seconds,
        poll_seconds=poll_seconds,
        idle_exit_seconds=idle_exit_seconds,
        stop_file=stop_file,
    )


# -- coordinator -----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskOutcome:
    """The recorded completion of one registered job.

    ``fresh`` distinguishes work this batch actually caused from a done
    record that predated it (a warm re-registration): stale outcomes carry
    their historical accounting but are excluded from the batch's folded
    ``replays``/counter totals — a warm re-run costs zero and counts zero,
    exactly like a warm serial run.
    """

    job_id: str
    kind: str
    worker: Optional[str]
    attempts: int
    runtime_seconds: float
    replays: int
    counters: Dict[str, int] = field(default_factory=dict)
    ok: bool = True
    error: Optional[str] = None
    fresh: bool = True


@dataclass
class ServiceReport:
    """Per-task accounting of one drained batch."""

    outcomes: Dict[str, TaskOutcome]
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def replays(self) -> int:
        """Trace replays this batch actually caused (stale done records: zero)."""
        return sum(o.replays for o in self.outcomes.values() if o.fresh)

    @property
    def total_runtime_seconds(self) -> float:
        """Summed fresh-task runtimes (across all workers; > wall-clock when parallel)."""
        return sum(o.runtime_seconds for o in self.outcomes.values() if o.fresh)

    @property
    def workers(self) -> List[str]:
        """The distinct workers that completed the batch's tasks."""
        return sorted(
            {o.worker for o in self.outcomes.values() if o.worker is not None}
        )

    def raise_for_errors(self) -> None:
        """Raise if any task completed unsuccessfully."""
        failed = [o for o in self.outcomes.values() if not o.ok]
        if failed:
            details = "; ".join(f"{o.job_id}: {o.error}" for o in failed[:5])
            raise RuntimeError(f"{len(failed)} service job(s) failed: {details}")


class ExperimentService:
    """Registers jobs on a queue and drains them through worker daemons.

    Args:
        cache_dir: Shared cache directory results are published to.
        queue: An explicit :class:`~repro.runner.queue.JobQueue` (any
            backend).  Default: a :class:`~repro.runner.queue.FileQueue`
            under ``$REPRO_SERVICE_QUEUE_DIR`` or ``<cache_dir>/queue``
            when workers are spawned, else an in-process queue.
        num_workers: Worker daemons to keep alive while draining
            (``$REPRO_SERVICE_WORKERS`` default, else 1).
        lease_seconds: Job lease duration (crash-detection horizon).
        poll_seconds: Coordinator/worker poll interval.
        spawn_workers: Spawn local daemons on demand.  With ``False`` the
            coordinator only waits on externally started workers
            (``python -m repro.runner serve``) — unless none are alive, in
            which case it drains the queue inline so progress is always
            guaranteed.
        wait_timeout_seconds: Hard cap on one :meth:`drain` call.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        queue: Optional[JobQueue] = None,
        num_workers: Optional[int] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = 0.02,
        spawn_workers: bool = True,
        wait_timeout_seconds: float = DEFAULT_WAIT_TIMEOUT_SECONDS,
        use_disk_cache: bool = True,
    ) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        if num_workers is None:
            num_workers = int(os.environ.get(SERVICE_WORKERS_ENV, "0") or 0) or 1
        self.cache_dir = str(cache_dir)
        self.num_workers = max(1, num_workers)
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.spawn_workers = spawn_workers
        self.wait_timeout_seconds = wait_timeout_seconds
        self.use_disk_cache = use_disk_cache
        if queue is None:
            queue_dir = os.environ.get(SERVICE_QUEUE_DIR_ENV, "").strip() or str(
                Path(self.cache_dir) / "queue"
            )
            queue = FileQueue(queue_dir) if spawn_workers else InProcessQueue()
        self.queue = queue
        self._processes: List[Any] = []
        self._spawn_broken = False
        self._coordinator_id = f"coordinator-{os.getpid()}-{uuid.uuid4().hex[:6]}"

    # -- registration ------------------------------------------------------------------

    def register(self, jobs: Sequence[Job]) -> List[str]:
        """Register ``jobs`` (idempotent per job id); the registered ids."""
        for job in jobs:
            self.queue.submit(job)
        return [job.job_id for job in jobs]

    def _register_tracking_freshness(self, jobs: Sequence[Job]) -> set:
        """Register ``jobs``; the ids whose work this batch is causing.

        A job is *fresh* unless its done record predates this registration —
        stale completions are reported but excluded from folded accounting
        (see :class:`TaskOutcome`).  A job found pending/leased (another
        coordinator registered it, or a crashed run left it behind) counts
        as fresh: it executes during this drain.
        """
        fresh = set()
        for job in jobs:
            if self.queue.submit(job):
                fresh.add(job.job_id)
            else:
                status = self.queue.status(job.job_id)
                if status is not None and status.state != DONE:
                    fresh.add(job.job_id)
        return fresh

    def status(self, job_id: str):
        """Status polling passthrough (see :meth:`JobQueue.status`)."""
        return self.queue.status(job_id)

    def counts(self) -> Dict[str, int]:
        """Queue-wide ``{state: count}`` (status polling)."""
        return self.queue.counts()

    # -- worker management -------------------------------------------------------------

    @property
    def _stop_file(self) -> Optional[str]:
        if isinstance(self.queue, FileQueue):
            return str(self.queue.directory / "stop")
        return None

    def _live_workers(self) -> int:
        self._processes = [p for p in self._processes if p.is_alive()]
        return len(self._processes)

    def _ensure_workers(self) -> None:
        """Keep ``num_workers`` daemons alive (FileQueue backends only)."""
        if (
            not self.spawn_workers
            or self._spawn_broken
            or not isinstance(self.queue, FileQueue)
        ):
            return
        stop_file = self._stop_file
        if stop_file is not None and os.path.exists(stop_file):
            try:
                os.unlink(stop_file)
            except OSError:
                pass
        self._live_workers()
        while len(self._processes) < self.num_workers:
            index = len(self._processes)
            try:
                import multiprocessing

                process = multiprocessing.get_context().Process(
                    target=_spawned_worker_main,
                    kwargs=dict(
                        queue_dir=str(self.queue.directory),
                        cache_dir=self.cache_dir,
                        worker_id=f"{self._coordinator_id}-w{index}",
                        lease_seconds=self.lease_seconds,
                        poll_seconds=self.poll_seconds,
                        idle_exit_seconds=60.0,
                        stop_file=stop_file or "",
                    ),
                    daemon=True,
                )
                process.start()
            except (OSError, PermissionError, NotImplementedError, ImportError) as error:
                self._spawn_broken = True
                warnings.warn(
                    f"service worker spawn unavailable ({error}); "
                    "draining the queue in-process",
                    RuntimeWarning,
                    stacklevel=3,
                )
                break
            self._processes.append(process)

    def stop(self) -> None:
        """Stop spawned daemons (externally started workers are untouched)."""
        stop_file = self._stop_file
        if stop_file is not None and self._processes:
            try:
                with open(stop_file, "w", encoding="utf-8") as handle:
                    handle.write("stop\n")
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._processes = []
        if stop_file is not None and os.path.exists(stop_file):
            try:
                os.unlink(stop_file)
            except OSError:
                pass

    # -- draining ----------------------------------------------------------------------

    def _outcome_from_status(self, status, fresh: bool = True) -> TaskOutcome:
        result = status.result or {}
        return TaskOutcome(
            job_id=status.job_id,
            kind=result.get("kind", status.job_id.split("-", 1)[0]),
            worker=status.worker,
            attempts=status.attempts,
            runtime_seconds=float(result.get("runtime_seconds", 0.0)),
            replays=int(result.get("replays", 0)),
            counters=dict(result.get("counters", {})),
            ok=bool(result.get("ok", False)),
            error=result.get("error"),
            fresh=fresh,
        )

    def drain(
        self, job_ids: Sequence[str], fresh_ids: Optional[set] = None
    ) -> ServiceReport:
        """Wait until every job in ``job_ids`` is done; per-task accounting.

        Spawns/replenishes worker daemons when configured to, sweeps
        expired leases of crashed workers while waiting, and — whenever no
        daemon is alive (spawning disabled, impossible, or all workers
        exited) — claims and executes jobs inline so the batch always
        completes.  Raises on per-job failures and on timeout.
        """
        start = time.perf_counter()
        deadline = start + self.wait_timeout_seconds
        pending = set(job_ids)
        outcomes: Dict[str, TaskOutcome] = {}
        with telemetry().span("service.drain", jobs=len(pending)) as drain_span:
            self._drain_pending(pending, outcomes, fresh_ids, deadline)
            drain_span.set(completed=len(outcomes))
        telemetry().flush()
        report = ServiceReport(
            outcomes=outcomes, elapsed_seconds=time.perf_counter() - start
        )
        report.raise_for_errors()
        return report

    def _drain_pending(
        self,
        pending: set,
        outcomes: Dict[str, TaskOutcome],
        fresh_ids: Optional[set],
        deadline: float,
    ) -> None:
        while pending:
            progressed = False
            for job_id in list(pending):
                status = self.queue.status(job_id)
                if status is not None and status.state == DONE:
                    outcomes[job_id] = self._outcome_from_status(
                        status, fresh=fresh_ids is None or job_id in fresh_ids
                    )
                    pending.discard(job_id)
                    progressed = True
            if not pending:
                break
            # Workers are only (re)spawned once outstanding work is known to
            # exist, so a warm batch (every job already done) costs zero forks.
            self._ensure_workers()
            self.queue.requeue_expired()
            if self._live_workers() == 0:
                job = self.queue.claim(self._coordinator_id, self.lease_seconds)
                if job is not None:
                    try:
                        result = execute_job(job, self.cache_dir, self.use_disk_cache)
                    except Exception as error:
                        result = {"ok": False, "kind": job.kind, "error": repr(error)}
                    self.queue.complete(job.job_id, self._coordinator_id, result)
                    progressed = True
            if not progressed:
                if time.perf_counter() > deadline:
                    raise RuntimeError(
                        f"service drain timed out after {self.wait_timeout_seconds}s "
                        f"with {len(pending)} job(s) outstanding; queue counts: "
                        f"{self.counts()}"
                    )
                time.sleep(self.poll_seconds)

    def run(self, jobs: Sequence[Job]) -> ServiceReport:
        """Register ``jobs`` and drain them (the one-call convenience)."""
        fresh = self._register_tracking_freshness(jobs)
        return self.drain([job.job_id for job in jobs], fresh_ids=fresh)


class DistributedBackend:
    """The ``REPRO_RUNNER_BACKEND=service`` adapter for :class:`ExperimentRunner`.

    Translates the runner's two batch shapes into service jobs and folds
    the per-task accounting back into the requesting runner:

    * :meth:`run_replays` — the missing replay keys of a
      ``run_leaves``/``run_configs`` batch (and, through them, every
      scenario timeline the :class:`~repro.scenarios.engine.ScenarioEngine`
      lowers) become one replay job per distinct key.
    * :meth:`run_plan_cells` — an :class:`ExperimentPlan`'s cells become
      cell jobs; after the drain the caller re-executes the plan serially
      over the warm cache, which is what makes service results
      bit-identical to serial ones.
    """

    def __init__(self, service: ExperimentService) -> None:
        self.service = service

    def _fold(self, runner, report: ServiceReport) -> None:
        """Fold a drained batch's accounting into the requesting runner.

        Only *fresh* outcomes count (see :class:`TaskOutcome`): a stale done
        record describes work a previous batch already folded.
        """
        runner.replays += report.replays
        for outcome in report.outcomes.values():
            if outcome.fresh and outcome.counters:
                runner.disk_cache.absorb_counters(outcome.counters)
        runner.service_reports.append(report)

    def run_replays(
        self,
        runner,
        jobs: Sequence[Tuple[ApplicationProfile, SimulationConfig, str]],
    ) -> ServiceReport:
        """Execute one replay job per distinct replay key in ``jobs``.

        The caller only hands over cache *misses*, so a job whose done
        record outlived its measurement (the tier was pruned after the job
        completed) is re-registered via :meth:`JobQueue.forget` instead of
        being served a stale completion.
        """
        built = [replay_job(profile, config, key) for profile, config, key in jobs]
        for job, (_, _, key) in zip(built, jobs):
            status = self.service.status(job.job_id)
            if (
                status is not None
                and status.state == DONE
                and not runner.disk_cache.measurement_path_for(key).exists()
            ):
                self.service.queue.forget(job.job_id)
        report = self.service.run(built)
        self._fold(runner, report)
        return report

    def run_plan_cells(self, runner, plan: ExperimentPlan) -> ServiceReport:
        """Execute every cell of ``plan`` as a service job."""
        energies = (
            runner.energy_model.energies if runner.energy_model is not None else None
        )
        report = self.service.run(
            [cell_job(cell, plan.spec, energies) for cell in plan.cells]
        )
        self._fold(runner, report)
        return report


# -- the ``serve`` CLI -----------------------------------------------------------------


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.runner serve`` (one worker daemon)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner serve",
        description=(
            "Run one work-stealing worker daemon draining a job queue into "
            "the shared content-addressed cache."
        ),
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        help=(
            f"queue directory (default: ${SERVICE_QUEUE_DIR_ENV} or "
            f"<cache-dir>/queue)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"shared cache directory (default: ${CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument("--worker-id", default=None, help="stable worker name")
    parser.add_argument(
        "--lease-seconds",
        type=float,
        default=DEFAULT_LEASE_SECONDS,
        help="job lease duration (crash-detection horizon)",
    )
    parser.add_argument(
        "--poll-seconds", type=float, default=0.05, help="queue poll interval"
    )
    parser.add_argument(
        "--idle-exit-seconds",
        type=float,
        default=None,
        help="exit after this long without work (default: serve forever)",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit as soon as the queue has nothing left to claim",
    )
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
    queue_dir = (
        args.queue_dir
        or os.environ.get(SERVICE_QUEUE_DIR_ENV, "").strip()
        or str(Path(cache_dir) / "queue")
    )
    queue = FileQueue(queue_dir)
    executed = worker_loop(
        queue,
        cache_dir,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
        idle_exit_seconds=args.idle_exit_seconds,
        stop_file=str(Path(queue_dir) / "stop"),
        drain_and_exit=args.drain,
    )
    print(f"worker exiting: executed {executed} job(s); queue counts {queue.counts()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(serve_main())
