"""Declarative descriptions of simulation work with stable content-hash keys.

Three layers:

* :class:`RunSpec` — one leaf simulation (an application profile under a
  :class:`~repro.sim.simulator.SimulationConfig`).  It derives **two**
  content keys, one per cache tier: :meth:`~RunSpec.replay_key` hashes the
  replay-affecting inputs (profile, GPU, Morpheus config, SM split, trace
  sizing, request interval, seed) plus :data:`REPLAY_SCHEMA_VERSION`, and
  addresses cached :class:`~repro.sim.performance_model.ReplayMeasurement`
  entries; :meth:`~RunSpec.score_key` extends the replay key with the
  analytic scoring parameters (peak IPC, MLP, power gating, system label,
  the shared-bandwidth :class:`~repro.sim.performance_model.ResourceEnvelope`),
  the energy constants and :data:`SCORE_SCHEMA_VERSION`, and addresses
  cached scored :class:`~repro.sim.stats.SimulationStats`.  Changing an
  analytic parameter therefore changes only the score key — the replay tier
  still hits and no trace is re-replayed.
* :class:`ExperimentCell` — one cell of a run matrix: a named evaluated
  system (or a fixed SM count) on one application with one seed.
* :class:`ExperimentSpec` / :class:`ExperimentPlan` — the full matrix
  (systems x applications x SM counts x seeds at one fidelity) and its
  expansion into cells.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.energy.components import ComponentEnergies, DEFAULT_ENERGIES
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.simulator import SimulationConfig
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY, get_fidelity
from repro.workloads.applications import ApplicationProfile

#: Version of the cached replay-measurement schema.  Bump whenever the
#: functional replay behaviour (engine, trace generation, cache/controller
#: models) or the :class:`~repro.sim.performance_model.ReplayMeasurement`
#: layout changes — this invalidates both cache tiers, because score keys
#: embed the replay key.
#: Version 2: the replay key gains the ``replay_mode`` config field (the
#: ``"analytic"`` closed-form measurement tier vs the functional
#: ``"replay"``).  Replay behaviour for ``replay_mode="replay"`` is
#: unchanged — the bump only re-addresses existing entries so the two
#: measurement tiers can never collide.
REPLAY_SCHEMA_VERSION = 2

#: Version of the cached scored-result schema.  Bump whenever the analytic
#: scoring step (:class:`~repro.sim.performance_model.PerformanceModel`, the
#: energy model) or the :class:`~repro.sim.stats.SimulationStats` layout
#: changes — cached measurements stay valid and are merely re-scored.
#: Version 2: shared-channel bandwidth limits are granted through a
#: :class:`~repro.sim.performance_model.ResourceEnvelope` (a new
#: score-keyed ``SimulationConfig`` field; the default envelope scores
#: bit-identically to version 1).
SCORE_SCHEMA_VERSION = 2


def _jsonable(value: Any) -> Any:
    """Render configs/profiles as canonical JSON-compatible structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of ``payload`` rendered as canonical JSON."""
    text = json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One leaf simulation: ``profile`` replayed under ``config``.

    ``energies`` holds the energy-model constants the run is scored with;
    they are part of the content key because they shape the energy and
    performance/watt fields of the cached result.
    """

    profile: ApplicationProfile
    config: SimulationConfig
    energies: ComponentEnergies = DEFAULT_ENERGIES

    def replay_key(self) -> str:
        """Content-hash key of the replay phase (addresses the measurement tier).

        Covers only the replay-affecting inputs — profile, GPU, Morpheus
        config, SM split, capacity scale, trace/warm-up sizing, request
        interval and seed — plus :data:`REPLAY_SCHEMA_VERSION`.  Runs that
        differ only in analytic scoring parameters share one replay key.

        Memoized per instance: the canonical-JSON render of the profile and
        replay params is the hot part of key derivation, and score keys and
        the runner both need the replay key for every leaf.
        """
        cached = self.__dict__.get("_replay_key")
        if cached is None:
            cached = content_hash(
                {
                    "schema": REPLAY_SCHEMA_VERSION,
                    "profile": self.profile,
                    "replay": self.config.replay_params(),
                }
            )
            object.__setattr__(self, "_replay_key", cached)
        return cached

    def score_key(self) -> str:
        """Content-hash key of the scored result (addresses the stats tier).

        Extends :meth:`replay_key` with the analytic parameters, the energy
        constants and :data:`SCORE_SCHEMA_VERSION`, so any input change —
        replay-affecting or analytic — addresses a different stats entry.
        """
        return content_hash(
            {
                "schema": SCORE_SCHEMA_VERSION,
                "replay_key": self.replay_key(),
                "score": self.config.score_params(),
                "energies": self.energies,
            }
        )

    def content_key(self) -> str:
        """Alias for :meth:`score_key` (the full-input-set key)."""
        return self.score_key()


@dataclass(frozen=True)
class ExperimentCell:
    """One cell of a run matrix.

    ``sm_count is None`` means "evaluate the named system at its own
    operating point" (registry semantics, including per-application SM-count
    searches).  A concrete ``sm_count`` instead requests a direct power-gated
    run at that compute-SM count, labelled with ``system`` — the mode the
    Figure-1/2 sweeps use.

    ``predictor`` overrides the Morpheus hit/miss-predictor flavour for the
    cell (``"bloom"``, ``"none"``, ``"perfect"`` — the Figure 13 axis);
    ``None`` keeps each system's default.  Only named Morpheus systems have
    a predictor, so the spec's predictor axis fans out Morpheus cells and
    leaves other systems at ``None``.

    ``fidelity`` overrides the spec's fidelity for the cell (the
    accuracy-calibration axis: the same system/application evaluated at
    e.g. ``"analytic"`` and a replay fidelity side by side); ``None``
    inherits the spec's fidelity.
    """

    system: str
    application: str
    seed: int = 1
    sm_count: Optional[int] = None
    predictor: Optional[str] = None
    fidelity: Optional[Fidelity] = None


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative run matrix: systems x applications x SM counts x seeds.

    Attributes:
        systems: Evaluated-system names (see
            :data:`repro.systems.registry.EVALUATED_SYSTEMS`) or, when
            ``sm_counts`` is given, labels for the direct sweep runs.
        applications: Application names (Table 2).
        fidelity: Trace sizing preset shared by all cells.
        gpu: Baseline GPU configuration.
        seeds: Trace-generation seeds; each seed is an independent cell.
        sm_counts: ``None`` for named-system evaluation, or explicit compute
            SM counts for sweep-style direct runs.
        predictors: ``None`` keeps each system's default hit/miss predictor;
            a tuple of flavours (``"bloom"``, ``"none"``, ``"perfect"``)
            fans every *Morpheus* system out across them (the Figure 13
            axis).  Non-Morpheus systems have no predictor and get a single
            default cell regardless.  Incompatible with ``sm_counts``
            (direct sweeps run without a Morpheus controller).
        fidelities: ``None`` runs every cell at ``fidelity``; a tuple of
            fidelities (or preset names — ``"analytic"``, ``"fast"``,
            ``"standard"``) fans *every* cell out across them.  This is the
            accuracy-calibration axis: one spec sweeping
            ``("analytic", "standard")`` evaluates the closed-form tier and
            the trace replay side by side, and the replay-keyed ``mode``
            keeps their cached measurements strictly separate.
    """

    systems: Tuple[str, ...]
    applications: Tuple[str, ...]
    fidelity: Fidelity = STANDARD_FIDELITY
    gpu: GPUConfig = RTX3080_CONFIG
    seeds: Tuple[int, ...] = (1,)
    sm_counts: Optional[Tuple[int, ...]] = None
    predictors: Optional[Tuple[str, ...]] = None
    fidelities: Optional[Tuple[Fidelity, ...]] = None

    def __post_init__(self) -> None:
        # Accept any sequences and normalize to tuples so specs stay hashable.
        object.__setattr__(self, "systems", tuple(self.systems))
        object.__setattr__(self, "applications", tuple(self.applications))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "fidelity", get_fidelity(self.fidelity))
        if self.sm_counts is not None:
            object.__setattr__(self, "sm_counts", tuple(self.sm_counts))
        if self.predictors is not None:
            object.__setattr__(self, "predictors", tuple(self.predictors))
        if self.fidelities is not None:
            object.__setattr__(
                self,
                "fidelities",
                tuple(get_fidelity(fidelity) for fidelity in self.fidelities),
            )
            if not self.fidelities:
                raise ValueError("fidelities must be None or a non-empty tuple")
        if not self.systems:
            raise ValueError("an experiment needs at least one system")
        if not self.applications:
            raise ValueError("an experiment needs at least one application")
        if not self.seeds:
            raise ValueError("an experiment needs at least one seed")
        if self.predictors is not None and not self.predictors:
            raise ValueError("predictors must be None or a non-empty tuple")
        if self.predictors is not None and self.sm_counts is not None:
            raise ValueError(
                "the predictor axis applies to named Morpheus systems; "
                "direct sm_counts sweeps run without a Morpheus controller"
            )
        if self.predictors is not None:
            for system in self.systems:
                if system.startswith("Morpheus") and "(" in system:
                    raise ValueError(
                        f"system {system!r} already names a predictor; "
                        "use the bare variant name with the predictors axis"
                    )

    def expand(self) -> "ExperimentPlan":
        """Expand the matrix into one :class:`ExperimentCell` per run."""
        cells = []
        sm_counts: Sequence[Optional[int]] = (
            (None,) if self.sm_counts is None else self.sm_counts
        )
        fidelities: Sequence[Optional[Fidelity]] = (
            (None,) if self.fidelities is None else self.fidelities
        )
        for system in self.systems:
            predictors: Sequence[Optional[str]] = (
                self.predictors
                if self.predictors is not None and system.startswith("Morpheus")
                else (None,)
            )
            for application in self.applications:
                for seed in self.seeds:
                    for sm_count in sm_counts:
                        if sm_count is not None and sm_count > self.gpu.num_sms:
                            continue
                        for predictor in predictors:
                            for fidelity in fidelities:
                                cells.append(
                                    ExperimentCell(
                                        system=system,
                                        application=application,
                                        seed=seed,
                                        sm_count=sm_count,
                                        predictor=predictor,
                                        fidelity=fidelity,
                                    )
                                )
        return ExperimentPlan(spec=self, cells=tuple(cells))


@dataclass(frozen=True)
class ExperimentPlan:
    """An expanded experiment: the spec plus its concrete cells."""

    spec: ExperimentSpec
    cells: Tuple[ExperimentCell, ...]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[ExperimentCell]:
        return iter(self.cells)

    def content_key(self) -> str:
        """Stable content-hash key of the whole plan (spec + cells)."""
        return content_hash(
            {
                "schema": (REPLAY_SCHEMA_VERSION, SCORE_SCHEMA_VERSION),
                "spec": self.spec,
                "cells": list(self.cells),
            }
        )
