"""Declarative descriptions of simulation work with stable content-hash keys.

Three layers:

* :class:`RunSpec` — one leaf simulation (an application profile under a
  :class:`~repro.sim.simulator.SimulationConfig`).  Its content key is a
  SHA-256 over a canonical JSON rendering of every profile and config field
  plus the result-schema version, so the on-disk result cache invalidates
  whenever any simulation input (or the stats schema) changes.
* :class:`ExperimentCell` — one cell of a run matrix: a named evaluated
  system (or a fixed SM count) on one application with one seed.
* :class:`ExperimentSpec` / :class:`ExperimentPlan` — the full matrix
  (systems x applications x SM counts x seeds at one fidelity) and its
  expansion into cells.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.energy.components import ComponentEnergies, DEFAULT_ENERGIES
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.simulator import SimulationConfig
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY
from repro.workloads.applications import ApplicationProfile

#: Version of the cached-result schema.  Bump whenever simulation behaviour
#: or the :class:`~repro.sim.stats.SimulationStats` layout changes in a way
#: that should invalidate previously cached results.
RESULT_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Render configs/profiles as canonical JSON-compatible structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of ``payload`` rendered as canonical JSON."""
    text = json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One leaf simulation: ``profile`` replayed under ``config``.

    ``energies`` holds the energy-model constants the run is scored with;
    they are part of the content key because they shape the energy and
    performance/watt fields of the cached result.
    """

    profile: ApplicationProfile
    config: SimulationConfig
    energies: ComponentEnergies = DEFAULT_ENERGIES

    def content_key(self) -> str:
        """Stable content-hash key identifying this run's full input set."""
        return content_hash(
            {
                "schema": RESULT_SCHEMA_VERSION,
                "profile": self.profile,
                "config": self.config,
                "energies": self.energies,
            }
        )


@dataclass(frozen=True)
class ExperimentCell:
    """One cell of a run matrix.

    ``sm_count is None`` means "evaluate the named system at its own
    operating point" (registry semantics, including per-application SM-count
    searches).  A concrete ``sm_count`` instead requests a direct power-gated
    run at that compute-SM count, labelled with ``system`` — the mode the
    Figure-1/2 sweeps use.
    """

    system: str
    application: str
    seed: int = 1
    sm_count: Optional[int] = None


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative run matrix: systems x applications x SM counts x seeds.

    Attributes:
        systems: Evaluated-system names (see
            :data:`repro.systems.registry.EVALUATED_SYSTEMS`) or, when
            ``sm_counts`` is given, labels for the direct sweep runs.
        applications: Application names (Table 2).
        fidelity: Trace sizing preset shared by all cells.
        gpu: Baseline GPU configuration.
        seeds: Trace-generation seeds; each seed is an independent cell.
        sm_counts: ``None`` for named-system evaluation, or explicit compute
            SM counts for sweep-style direct runs.
    """

    systems: Tuple[str, ...]
    applications: Tuple[str, ...]
    fidelity: Fidelity = STANDARD_FIDELITY
    gpu: GPUConfig = RTX3080_CONFIG
    seeds: Tuple[int, ...] = (1,)
    sm_counts: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        # Accept any sequences and normalize to tuples so specs stay hashable.
        object.__setattr__(self, "systems", tuple(self.systems))
        object.__setattr__(self, "applications", tuple(self.applications))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if self.sm_counts is not None:
            object.__setattr__(self, "sm_counts", tuple(self.sm_counts))
        if not self.systems:
            raise ValueError("an experiment needs at least one system")
        if not self.applications:
            raise ValueError("an experiment needs at least one application")
        if not self.seeds:
            raise ValueError("an experiment needs at least one seed")

    def expand(self) -> "ExperimentPlan":
        """Expand the matrix into one :class:`ExperimentCell` per run."""
        cells = []
        sm_counts: Sequence[Optional[int]] = (
            (None,) if self.sm_counts is None else self.sm_counts
        )
        for system in self.systems:
            for application in self.applications:
                for seed in self.seeds:
                    for sm_count in sm_counts:
                        if sm_count is not None and sm_count > self.gpu.num_sms:
                            continue
                        cells.append(
                            ExperimentCell(
                                system=system,
                                application=application,
                                seed=seed,
                                sm_count=sm_count,
                            )
                        )
        return ExperimentPlan(spec=self, cells=tuple(cells))


@dataclass(frozen=True)
class ExperimentPlan:
    """An expanded experiment: the spec plus its concrete cells."""

    spec: ExperimentSpec
    cells: Tuple[ExperimentCell, ...]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[ExperimentCell]:
        return iter(self.cells)

    def content_key(self) -> str:
        """Stable content-hash key of the whole plan (spec + cells)."""
        return content_hash(
            {
                "schema": RESULT_SCHEMA_VERSION,
                "spec": self.spec,
                "cells": list(self.cells),
            }
        )
