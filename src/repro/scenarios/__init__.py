"""Dynamic scenarios: multi-phase workload timelines with time-varying idle SMs.

Describe a timeline with :class:`ScenarioSpec` (or pick one from
:data:`SCENARIO_LIBRARY`), choose a capacity policy — the
:class:`DynamicCapacityManager` grows/shrinks the extended LLC with each
phase's idle capacity and charges flush/warm-up transition costs, while
:class:`FixedSplitPolicy` models the offline static split — and execute the
whole timeline with a :class:`ScenarioEngine`.  Every phase lowers to an
ordinary :class:`~repro.runner.spec.RunSpec` leaf, so scenario runs share
the two-phase replay/score cache with everything else in the repository.

Scenario-level analysis (time-weighted IPC, energy, transition overheads,
per-phase tables) lives in :mod:`repro.analysis.scenarios`.
"""

from repro.scenarios.contention import (
    ContentionModel,
    PhaseContentionSolution,
    proportional_pressure_shares,
    solve_phase_contention,
    solve_scenario_contention,
)
from repro.scenarios.engine import (
    LoweredLeaf,
    LoweredPhase,
    PhaseExecution,
    PhaseSignature,
    ResidentExecution,
    SCENARIO_SYSTEMS,
    ScenarioEngine,
    ScenarioRunResult,
    SignatureExecution,
    SignaturePhases,
)
from repro.scenarios.library import (
    SCENARIO_LIBRARY,
    bursty,
    corun_overlap,
    corun_pair,
    fleet,
    get_scenario,
    mixed_tenancy,
    ramp,
    steady,
)
from repro.scenarios.policy import (
    ARBITRATION_MODES,
    CapacityPolicy,
    DynamicCapacityManager,
    FixedSplitPolicy,
    NO_TRANSITION,
    PhaseDecision,
    ResidentGrant,
    TransitionCost,
    TransitionCostModel,
    arbitrate_extended_llc,
    combine_costs,
    contended_llc_sensitivity,
    grant_transition,
    llc_capacity_sensitivity,
    max_cache_mode_sms,
)
from repro.scenarios.spec import (
    Residency,
    SCENARIO_SCHEMA_VERSION,
    ScenarioPhase,
    ScenarioSpec,
)

__all__ = [
    "ARBITRATION_MODES",
    "CapacityPolicy",
    "ContentionModel",
    "DynamicCapacityManager",
    "FixedSplitPolicy",
    "LoweredLeaf",
    "PhaseContentionSolution",
    "LoweredPhase",
    "NO_TRANSITION",
    "PhaseDecision",
    "PhaseExecution",
    "PhaseSignature",
    "Residency",
    "ResidentExecution",
    "ResidentGrant",
    "SCENARIO_LIBRARY",
    "SCENARIO_SCHEMA_VERSION",
    "SCENARIO_SYSTEMS",
    "ScenarioEngine",
    "ScenarioPhase",
    "ScenarioRunResult",
    "ScenarioSpec",
    "SignatureExecution",
    "SignaturePhases",
    "TransitionCost",
    "TransitionCostModel",
    "arbitrate_extended_llc",
    "bursty",
    "combine_costs",
    "contended_llc_sensitivity",
    "corun_overlap",
    "corun_pair",
    "fleet",
    "get_scenario",
    "grant_transition",
    "llc_capacity_sensitivity",
    "max_cache_mode_sms",
    "mixed_tenancy",
    "proportional_pressure_shares",
    "ramp",
    "solve_phase_contention",
    "solve_scenario_contention",
    "steady",
]
