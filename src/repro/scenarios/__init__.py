"""Dynamic scenarios: multi-phase workload timelines with time-varying idle SMs.

Describe a timeline with :class:`ScenarioSpec` (or pick one from
:data:`SCENARIO_LIBRARY`), choose a capacity policy — the
:class:`DynamicCapacityManager` grows/shrinks the extended LLC with each
phase's idle capacity and charges flush/warm-up transition costs, while
:class:`FixedSplitPolicy` models the offline static split — and execute the
whole timeline with a :class:`ScenarioEngine`.  Every phase lowers to an
ordinary :class:`~repro.runner.spec.RunSpec` leaf, so scenario runs share
the two-phase replay/score cache with everything else in the repository.

Scenario-level analysis (time-weighted IPC, energy, transition overheads,
per-phase tables) lives in :mod:`repro.analysis.scenarios`.
"""

from repro.scenarios.engine import (
    LoweredPhase,
    PhaseExecution,
    SCENARIO_SYSTEMS,
    ScenarioEngine,
    ScenarioRunResult,
)
from repro.scenarios.library import (
    SCENARIO_LIBRARY,
    bursty,
    corun_pair,
    get_scenario,
    ramp,
    steady,
)
from repro.scenarios.policy import (
    CapacityPolicy,
    DynamicCapacityManager,
    FixedSplitPolicy,
    NO_TRANSITION,
    PhaseDecision,
    TransitionCost,
    TransitionCostModel,
    max_cache_mode_sms,
)
from repro.scenarios.spec import (
    SCENARIO_SCHEMA_VERSION,
    ScenarioPhase,
    ScenarioSpec,
)

__all__ = [
    "CapacityPolicy",
    "DynamicCapacityManager",
    "FixedSplitPolicy",
    "LoweredPhase",
    "NO_TRANSITION",
    "PhaseDecision",
    "PhaseExecution",
    "SCENARIO_LIBRARY",
    "SCENARIO_SCHEMA_VERSION",
    "SCENARIO_SYSTEMS",
    "ScenarioEngine",
    "ScenarioPhase",
    "ScenarioRunResult",
    "ScenarioSpec",
    "TransitionCost",
    "TransitionCostModel",
    "bursty",
    "corun_pair",
    "get_scenario",
    "max_cache_mode_sms",
    "ramp",
    "steady",
]
