"""Shared-bandwidth contention between co-resident tenants.

A co-run phase's residents do not only compete for the arbitrated
extended-LLC grants — they share the GPU's DRAM channels, conventional-LLC
banks and NoC.  This module solves that contention as a small fixed point
over the *scoring* tier:

1. each resident's leaf is scored under its current
   :class:`~repro.sim.performance_model.ResourceEnvelope` (initially the
   whole-GPU default, i.e. the historical uncontended model);
2. the scored IPCs determine each resident's offered load on every shared
   channel (:func:`~repro.sim.performance_model.shared_bandwidth_demand`);
3. the loads determine **proportional-pressure shares** — on each channel
   every resident is entitled to capacity in proportion to its demand, so
   an unsaturated channel throttles nobody (each entitlement covers its
   demand) while a saturated one slows every user by the same pressure
   ratio unless it is bound elsewhere;
4. the shares are damped into new envelopes and the residents re-scored.

The iteration is deterministic (fixed resident order, pure float
arithmetic, in-process scoring), damped (:attr:`ContentionModel.damping`)
and bounded (:attr:`ContentionModel.max_iterations`), so serial and
parallel runners produce bit-identical solutions.  Crucially it is a
**score-tier-only** computation: the envelope is a
:data:`~repro.sim.simulator.SCORE_FIELDS` entry, every iteration re-scores
the phase's cached replay measurements, and no trace is ever re-replayed —
contention costs nothing at the replay tier.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, TYPE_CHECKING

from repro.sim.performance_model import (
    DEFAULT_ENVELOPE,
    ENVELOPE_FIELDS,
    ResourceEnvelope,
    SHARED_CHANNELS,
    shared_bandwidth_demand,
)
from repro.sim.stats import SimulationStats
from repro.telemetry import telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.config import GPUConfig
    from repro.runner.runner import ExperimentRunner
    from repro.sim.simulator import SimulationConfig
    from repro.workloads.applications import ApplicationProfile

#: Smallest share the solver assigns: envelopes require shares in (0, 1],
#: and a resident with (near-)zero demand on a channel must keep an
#: epsilon entitlement rather than a forbidden zero share.
MIN_SHARE = 1e-9


@dataclass(frozen=True)
class ContentionModel:
    """Knobs of the co-run shared-bandwidth fixed-point solver.

    Attributes:
        enabled: When false, co-run residents score under the whole-GPU
            default envelope — the pre-contention behaviour.
        damping: Fraction of the distance toward the proportional-pressure
            target each iteration takes (``1.0`` is undamped).  Damping
            keeps the demand/share feedback loop from oscillating.
        max_iterations: Hard bound on solver iterations; the last iterate
            is used if the tolerance was not reached (deterministic either
            way).
        tolerance: Convergence threshold on the largest per-channel share
            movement in one iteration.
    """

    enabled: bool = True
    damping: float = 0.5
    max_iterations: int = 40
    tolerance: float = 1e-6

    def __post_init__(self) -> None:
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")


@dataclass(frozen=True)
class PhaseContentionSolution:
    """The solved state of one co-run phase.

    ``stats``/``envelopes`` are the contended results per resident (leaf
    order); ``uncontended`` are the same leaves scored under the default
    whole-GPU envelope — the pair is what lets
    :func:`repro.analysis.scenarios.contention_breakdown` split each
    resident's slowdown into an extended-LLC-grant component and a
    bandwidth-interference component.
    """

    stats: Tuple[SimulationStats, ...]
    envelopes: Tuple[ResourceEnvelope, ...]
    uncontended: Tuple[SimulationStats, ...]
    iterations: int
    converged: bool


def proportional_pressure_shares(
    demands: Sequence[Dict[str, float]],
) -> List[Dict[str, float]]:
    """Target envelope shares: each channel split in proportion to demand.

    On a channel with aggregate demand ``D`` and capacity ``C``, a resident
    demanding ``d`` is entitled to the share ``d / D`` — capacity
    ``C * d / D``.  When ``D <= C`` that entitlement is at least ``d`` (no
    throttling: the bandwidth limit sits above the IPC that generated the
    demand), and when ``D > C`` every resident is scaled by the same
    ``C / D`` pressure ratio unless some other limit binds first.  A
    channel nobody demands is split evenly (its limit is unbounded anyway).
    """
    count = len(demands)
    targets: List[Dict[str, float]] = [{} for _ in range(count)]
    for channel in SHARED_CHANNELS:
        total = sum(demand[channel] for demand in demands)
        for index, demand in enumerate(demands):
            if total > 0.0:
                share = demand[channel] / total
            else:
                share = 1.0 / count
            targets[index][channel] = min(1.0, max(MIN_SHARE, share))
    return targets


def _envelope(shares: Dict[str, float]) -> ResourceEnvelope:
    return ResourceEnvelope(
        **{ENVELOPE_FIELDS[channel]: shares[channel] for channel in SHARED_CHANNELS}
    )


def solve_phase_contention(
    runner: "ExperimentRunner",
    gpu: "GPUConfig",
    leaves: Sequence[Tuple["ApplicationProfile", "SimulationConfig"]],
    uncontended: Sequence[SimulationStats],
    model: ContentionModel,
    fast_scoring: bool = True,
) -> PhaseContentionSolution:
    """Solve one phase's shared-bandwidth contention by fixed-point re-scoring.

    ``leaves`` are the phase's per-resident (profile, config) pairs —
    configs at the default envelope — and ``uncontended`` their
    already-scored default-envelope stats.  Single-resident phases (and a
    disabled model) return the uncontended stats unchanged, guaranteeing
    single-tenant timelines are bit-identical to the pre-contention model.

    Each leaf's replay measurement is fetched **once**
    (:meth:`~repro.runner.runner.ExperimentRunner.measurement_for` — a
    cache hit on any warm runner) and the iterations score it in-process
    (:meth:`~repro.runner.runner.ExperimentRunner.score_measurement`, a
    pure function), so the solve costs arithmetic, not cache traffic.
    Only the *converged* contended configs go back through the two-phase
    cache, landing in the stats tier under their envelope score keys.  No
    trace is ever re-replayed.

    With ``fast_scoring`` (the default) each resident gets a precomputed
    :class:`~repro.sim.vector_model.MeasurementScorer` and the iterations
    call its :meth:`~repro.sim.vector_model.MeasurementScorer.score_envelope`
    scalar fast path — the per-measurement invariants (hit rates, bytes per
    kilo-instruction, ``shared_bandwidth_capacities``) are hoisted out of
    the loop instead of being rebuilt every iteration.  Results are
    bit-identical to the legacy per-call path (``fast_scoring=False``,
    kept for benchmarking).
    """
    count = len(leaves)
    envelopes = tuple(DEFAULT_ENVELOPE for _ in range(count))
    if count <= 1 or not model.enabled:
        return PhaseContentionSolution(
            stats=tuple(uncontended),
            envelopes=envelopes,
            uncontended=tuple(uncontended),
            iterations=0,
            converged=True,
        )

    measurements = [
        runner.measurement_for(profile, config) for profile, config in leaves
    ]
    scorers = None
    if fast_scoring:
        scorers = [
            runner.scorer_for(profile, config, measurement)
            for (profile, config), measurement in zip(leaves, measurements)
        ]
    shares = [{channel: 1.0 for channel in SHARED_CHANNELS} for _ in range(count)]
    stats: List[SimulationStats] = list(uncontended)
    iterations = 0
    converged = False
    movement = 0.0
    tel = telemetry()
    with tel.span("contention.solve", residents=count) as span:
        for iterations in range(1, model.max_iterations + 1):
            demands = [shared_bandwidth_demand(entry, gpu) for entry in stats]
            targets = proportional_pressure_shares(demands)
            movement = 0.0
            for index in range(count):
                for channel in SHARED_CHANNELS:
                    current = shares[index][channel]
                    stepped = current + model.damping * (
                        targets[index][channel] - current
                    )
                    stepped = min(1.0, max(MIN_SHARE, stepped))
                    movement = max(movement, abs(stepped - current))
                    shares[index][channel] = stepped
            envelopes = tuple(_envelope(shares[index]) for index in range(count))
            if scorers is not None:
                stats = [
                    scorer.score_envelope(envelope)
                    for scorer, envelope in zip(scorers, envelopes)
                ]
            else:
                stats = [
                    runner.score_measurement(
                        profile,
                        dataclasses.replace(config, envelope=envelope),
                        measurement,
                    )
                    for (profile, config), envelope, measurement in zip(
                        leaves, envelopes, measurements
                    )
                ]
            if tel.enabled:
                tel.observe("contention.residual", movement)
            if movement < model.tolerance:
                converged = True
                break
        span.set(iterations=iterations, converged=converged)
    if tel.enabled:
        tel.observe("contention.iterations", iterations)
    # Persist the converged contended results through the ordinary
    # two-phase cache (their score keys embed the solved envelopes);
    # scoring is pure, so this returns bit-identically what the last
    # iteration computed.
    final = runner.run_leaves(
        [
            (profile, dataclasses.replace(config, envelope=envelope))
            for (profile, config), envelope in zip(leaves, envelopes)
        ]
    )
    return PhaseContentionSolution(
        stats=tuple(final),
        envelopes=envelopes,
        uncontended=tuple(uncontended),
        iterations=iterations,
        converged=converged,
    )


def solve_scenario_contention(
    runner: "ExperimentRunner",
    gpu: "GPUConfig",
    groups: Sequence[
        Tuple[
            Sequence[Tuple["ApplicationProfile", "SimulationConfig"]],
            Sequence[SimulationStats],
        ]
    ],
    model: ContentionModel,
) -> List[PhaseContentionSolution]:
    """Solve many distinct co-run signatures' contention as one batch.

    ``groups`` holds one ``(leaves, uncontended)`` pair per *distinct*
    phase signature of a timeline (thousands of phases collapse to tens of
    groups).  The iteration arithmetic per group is exactly
    :func:`solve_phase_contention`'s fast path — same damping, same share
    clamps, same scoring order — so the solutions are bit-identical to
    solving each group on its own.  What the batch changes is the work
    around the arithmetic:

    * the per-leaf replay measurements and precomputed
      :class:`~repro.sim.vector_model.MeasurementScorer`\\ s are hoisted
      **across groups** — a leaf shared by several signatures builds its
      scorer once instead of once per solve;
    * the converged contended configs of *every* group are persisted through
      a single :meth:`~repro.runner.runner.ExperimentRunner.run_leaves`
      batch, so their score-tier evaluations flow through the vectorized
      ``score_batch`` path across signatures instead of one scalar call
      per solve.

    Each group's fixed-point wall time lands in the
    ``scenario.signature_solve_seconds`` histogram.
    """
    tel = telemetry()
    scorer_cache: Dict[
        Tuple[str, "SimulationConfig"],
        Tuple[object, object],
    ] = {}

    def hoisted(profile: "ApplicationProfile", config: "SimulationConfig"):
        key = (profile.name, config)
        entry = scorer_cache.get(key)
        if entry is None:
            measurement = runner.measurement_for(profile, config)
            entry = (measurement, runner.scorer_for(profile, config, measurement))
            scorer_cache[key] = entry
        return entry

    solutions: List[PhaseContentionSolution] = [None] * len(groups)  # type: ignore[list-item]
    pending: List[Tuple[int, Tuple[ResourceEnvelope, ...], int, bool]] = []
    contended_leaves: List[Tuple["ApplicationProfile", "SimulationConfig"]] = []
    slices: List[Tuple[int, int]] = []
    for group_index, (leaves, uncontended) in enumerate(groups):
        count = len(leaves)
        if count <= 1 or not model.enabled:
            solutions[group_index] = PhaseContentionSolution(
                stats=tuple(uncontended),
                envelopes=tuple(DEFAULT_ENVELOPE for _ in range(count)),
                uncontended=tuple(uncontended),
                iterations=0,
                converged=True,
            )
            continue
        solve_start = time.perf_counter()
        scorers = [hoisted(profile, config)[1] for profile, config in leaves]
        shares = [
            {channel: 1.0 for channel in SHARED_CHANNELS} for _ in range(count)
        ]
        stats: List[SimulationStats] = list(uncontended)
        iterations = 0
        converged = False
        envelopes: Tuple[ResourceEnvelope, ...] = tuple(
            DEFAULT_ENVELOPE for _ in range(count)
        )
        with tel.span("contention.solve", residents=count) as span:
            for iterations in range(1, model.max_iterations + 1):
                demands = [shared_bandwidth_demand(entry, gpu) for entry in stats]
                targets = proportional_pressure_shares(demands)
                movement = 0.0
                for index in range(count):
                    for channel in SHARED_CHANNELS:
                        current = shares[index][channel]
                        stepped = current + model.damping * (
                            targets[index][channel] - current
                        )
                        stepped = min(1.0, max(MIN_SHARE, stepped))
                        movement = max(movement, abs(stepped - current))
                        shares[index][channel] = stepped
                envelopes = tuple(
                    _envelope(shares[index]) for index in range(count)
                )
                stats = [
                    scorer.score_envelope(envelope)
                    for scorer, envelope in zip(scorers, envelopes)
                ]
                if tel.enabled:
                    tel.observe("contention.residual", movement)
                if movement < model.tolerance:
                    converged = True
                    break
            span.set(iterations=iterations, converged=converged)
        if tel.enabled:
            tel.observe("contention.iterations", iterations)
            tel.observe(
                "scenario.signature_solve_seconds",
                time.perf_counter() - solve_start,
            )
        offset = len(contended_leaves)
        contended_leaves.extend(
            (profile, dataclasses.replace(config, envelope=envelope))
            for (profile, config), envelope in zip(leaves, envelopes)
        )
        slices.append((offset, offset + count))
        pending.append((group_index, envelopes, iterations, converged))
    if pending:
        # One cross-signature persistence batch: every group's converged
        # contended configs are scored (and stored) together, so score-tier
        # misses go through the vectorized batch path.  Scoring is pure, so
        # the returned stats match what the last iterations computed.
        final = runner.run_leaves(contended_leaves)
        for (group_index, envelopes, iterations, converged), (lo, hi) in zip(
            pending, slices
        ):
            _, uncontended = groups[group_index]
            solutions[group_index] = PhaseContentionSolution(
                stats=tuple(final[lo:hi]),
                envelopes=envelopes,
                uncontended=tuple(uncontended),
                iterations=iterations,
                converged=converged,
            )
    return solutions
