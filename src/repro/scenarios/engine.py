"""The scenario engine: lowering timelines to leaf runs and executing them.

:class:`ScenarioEngine` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into per-phase :class:`~repro.sim.simulator.SimulationConfig` leaves
(**lowering** — pure, no simulation) and executes them through the
process-wide :class:`~repro.runner.runner.ExperimentRunner`'s two-phase
cache (**running**).  Because leaves are addressed by the ordinary
replay/score keys, repeated phases replay **at most once** per timeline,
re-running a scenario over a warm cache replays nothing, and analytic
re-scores of scenario leaves stay zero-replay-cost like any other run.

Co-run phases additionally solve **shared-bandwidth contention**: each
resident's leaf is re-scored under fixed-point
:class:`~repro.sim.performance_model.ResourceEnvelope` shares
(:mod:`repro.scenarios.contention`), so concurrent tenants see each
other's DRAM/LLC/NoC pressure instead of each owning the whole memory
system.  Finished timeline aggregates are persisted under
:meth:`ScenarioEngine.run_key` in the cache's ``scenarios/`` tier, so a
warm scenario re-run loads one JSON payload instead of re-scoring every
leaf.

Baselines and every Morpheus variant run under any scenario:

* ``BL`` keeps idle SMs active (burning static power),
* ``IBL`` power-gates them,
* ``Morpheus-*`` borrow them for the extended LLC under a
  :class:`~repro.scenarios.policy.CapacityPolicy` — by default the
  :class:`~repro.scenarios.policy.DynamicCapacityManager`, which replaces
  the offline per-application split search for timeline runs and charges
  flush/warm-up costs at every reconfiguration.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.energy.components import DEFAULT_ENERGIES
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.runner.cache import stats_from_jsonable, stats_to_jsonable
from repro.runner.runner import ExperimentRunner, active_runner
from repro.runner.spec import content_hash
from repro.scenarios.contention import (
    ContentionModel,
    PhaseContentionSolution,
    solve_phase_contention,
)
from repro.scenarios.policy import (
    CapacityPolicy,
    DynamicCapacityManager,
    NO_TRANSITION,
    PhaseDecision,
    ResidentGrant,
    TransitionCost,
    TransitionCostModel,
)
from repro.scenarios.spec import SCENARIO_SCHEMA_VERSION, ScenarioPhase, ScenarioSpec
from repro.sim.performance_model import DEFAULT_ENVELOPE, ResourceEnvelope
from repro.telemetry import telemetry
from repro.sim.simulator import SimulationConfig
from repro.sim.stats import SimulationStats
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY, get_fidelity
from repro.systems.morpheus_system import MorpheusOperatingPoint, MorpheusVariant
from repro.systems.registry import SCENARIO_SYSTEMS
from repro.workloads.applications import ApplicationProfile, get_application

_MORPHEUS_VARIANTS: Dict[str, MorpheusVariant] = {
    variant.value: variant for variant in MorpheusVariant
}


@dataclass(frozen=True)
class LoweredLeaf:
    """One resident's leaf simulation within a lowered phase."""

    grant: ResidentGrant
    config: SimulationConfig

    @property
    def application(self) -> str:
        """The resident application this leaf simulates."""
        return self.grant.application


@dataclass(frozen=True)
class LoweredPhase:
    """One phase lowered to concrete leaf simulations (one per resident)."""

    index: int
    phase: ScenarioPhase
    decision: PhaseDecision
    leaves: Tuple[LoweredLeaf, ...]

    @property
    def config(self) -> SimulationConfig:
        """The single leaf config of a single-tenant phase (convenience)."""
        if len(self.leaves) != 1:
            raise ValueError(
                f"co-run phase {self.phase.describe()!r} lowers to "
                f"{len(self.leaves)} leaves; use .leaves"
            )
        return self.leaves[0].config


@dataclass(frozen=True)
class ResidentExecution:
    """One resident's executed leaf within a phase.

    ``instructions`` is the share of the phase's instruction budget this
    resident retired — residents run *concurrently* for the whole phase, so
    each contributes in proportion to its leaf IPC.

    ``stats`` are the resident's **contended** results: on a co-run phase
    they are scored under the resident's solved shared-bandwidth
    ``envelope``, while ``uncontended_ipc`` records what the same leaf
    scored under the whole-GPU default envelope — the gap between the two
    is pure bandwidth interference (the extended-LLC grant is identical on
    both sides).  Single-tenant phases keep the default envelope and the
    two IPCs coincide.
    """

    grant: ResidentGrant
    stats: SimulationStats
    instructions: float
    envelope: ResourceEnvelope = DEFAULT_ENVELOPE
    uncontended_ipc: float = 0.0

    @property
    def application(self) -> str:
        """The resident application."""
        return self.grant.application

    @property
    def ipc(self) -> float:
        """The resident's modelled (contended) IPC at its granted shares."""
        return self.stats.ipc

    @property
    def bandwidth_interference_fraction(self) -> float:
        """IPC lost to shared-bandwidth contention, relative to uncontended."""
        if self.uncontended_ipc <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.stats.ipc / self.uncontended_ipc)


@dataclass(frozen=True)
class PhaseExecution:
    """One executed phase: its lowered form plus the scored leaf results.

    ``instructions`` is the phase's share of the timeline
    (``duration_weight * instructions_per_weight``), retired collectively by
    the phase's residents; ``compute_cycles`` is the wall-clock time that
    takes at their aggregate IPC (for a single-tenant phase, exactly
    ``instructions / ipc``).  The transition cost into the phase lives in
    ``decision.transition``.
    """

    index: int
    phase: ScenarioPhase
    decision: PhaseDecision
    residents: Tuple[ResidentExecution, ...]
    instructions: float
    compute_cycles: float

    @property
    def stats(self) -> SimulationStats:
        """The single leaf stats of a single-tenant phase (convenience)."""
        if len(self.residents) != 1:
            raise ValueError(
                f"co-run phase {self.phase.describe()!r} has "
                f"{len(self.residents)} resident results; use .residents"
            )
        return self.residents[0].stats

    @property
    def cycles(self) -> float:
        """Phase cycles including the transition stall charged on entry."""
        return self.compute_cycles + self.decision.transition.total_cycles


@dataclass
class ScenarioRunResult:
    """The full outcome of one (scenario, system, policy) timeline run."""

    scenario: ScenarioSpec
    system: str
    policy_name: str
    phases: Tuple[PhaseExecution, ...]
    run_key: str
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def total_instructions(self) -> float:
        """Instructions retired across the whole timeline."""
        return sum(execution.instructions for execution in self.phases)

    @property
    def compute_cycles(self) -> float:
        """Cycles spent retiring instructions (no transition stalls)."""
        return sum(execution.compute_cycles for execution in self.phases)

    @property
    def transition_cycles(self) -> float:
        """Cycles lost to extended-LLC flushes and warm-ups."""
        return sum(
            execution.decision.transition.total_cycles for execution in self.phases
        )

    @property
    def total_cycles(self) -> float:
        """End-to-end timeline cycles (compute + transitions)."""
        return self.compute_cycles + self.transition_cycles


class ScenarioEngine:
    """Lowers scenario timelines to leaf runs and executes them via the runner.

    Args:
        runner: Runner executing the leaves; ``None`` resolves the
            process-wide runner at call time.
        gpu: Baseline GPU configuration shared by all phases.
        fidelity: Trace sizing preset for the phase leaves.
        seed: Trace-generation seed shared by all phases.
        transition_model: Flush/warm-up cost knobs for dynamic policies.
        predictor: Hit/miss predictor flavour for Morpheus systems.
        contention: Shared-bandwidth fixed-point solver knobs for co-run
            phases (see :class:`~repro.scenarios.contention.ContentionModel`);
            ``None`` uses the defaults.
    """

    def __init__(
        self,
        runner: Optional[ExperimentRunner] = None,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Fidelity = STANDARD_FIDELITY,
        seed: int = 1,
        transition_model: Optional[TransitionCostModel] = None,
        predictor: str = "bloom",
        contention: Optional[ContentionModel] = None,
    ) -> None:
        self.runner = runner
        self.gpu = gpu
        self.fidelity = get_fidelity(fidelity)
        self.seed = seed
        self.transition_model = transition_model or TransitionCostModel()
        self.predictor = predictor
        self.contention = contention or ContentionModel()
        self._solo_reference_memo: Dict[str, Dict[str, float]] = {}

    def _runner(self) -> ExperimentRunner:
        return self.runner if self.runner is not None else active_runner()

    def _profiles(self, scenario: ScenarioSpec) -> Dict[str, ApplicationProfile]:
        return {name: get_application(name) for name in scenario.applications}

    # -- lowering (pure) ---------------------------------------------------------------

    def lower(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> List[LoweredPhase]:
        """Lower every phase of ``scenario`` to leaf configs (no simulation).

        A single-tenant phase lowers to one leaf; a co-run phase lowers to
        **one leaf per resident**, each simulated at the resident's granted
        compute-SM share and its arbitrated slice of the pooled extended-LLC
        capacity.  This is the hot path of scenario execution bookkeeping:
        policy planning plus config construction, benchmarked separately
        from the (cached) leaf simulations.
        """
        for phase in scenario.phases:
            if phase.total_compute_sm_demand > self.gpu.num_sms:
                raise ValueError(
                    f"phase {phase.describe()!r} demands "
                    f"{phase.total_compute_sm_demand} SMs but the GPU has "
                    f"{self.gpu.num_sms}"
                )
        profiles = self._profiles(scenario)
        with telemetry().span(
            "scenario.plan", system=system, phases=len(scenario.phases)
        ):
            decisions, morpheus = self._plan(scenario, system, policy, profiles)
        lowered = []
        with telemetry().span(
            "scenario.lower", system=system, phases=len(scenario.phases)
        ):
            for index, (phase, decision) in enumerate(
                zip(scenario.phases, decisions)
            ):
                grants = self._decision_grants(phase, decision)
                leaves = tuple(
                    LoweredLeaf(
                        grant=grant,
                        config=SimulationConfig(
                            gpu=self.gpu,
                            morpheus=morpheus if grant.cache_sms > 0 else None,
                            num_compute_sms=grant.compute_sms,
                            num_cache_sms=grant.cache_sms,
                            power_gate_unused=system != "BL",
                            capacity_scale=self.fidelity.capacity_scale,
                            trace_accesses=self.fidelity.trace_accesses,
                            warmup_accesses=self.fidelity.warmup_accesses,
                            system_name=system,
                            replay_mode=self.fidelity.mode,
                            seed=self.seed,
                        ),
                    )
                    for grant in grants
                )
                lowered.append(
                    LoweredPhase(
                        index=index, phase=phase, decision=decision, leaves=leaves
                    )
                )
        return lowered

    @staticmethod
    def _decision_grants(
        phase: ScenarioPhase, decision: PhaseDecision
    ) -> Tuple[ResidentGrant, ...]:
        """The per-resident grants of one decision, validated against the phase.

        Policies that predate co-run support may omit grants for
        single-tenant phases; the engine synthesizes the obvious one-entry
        breakdown from the aggregate split.  Explicit grants must cover
        exactly the phase's residents at their demanded compute shares, and
        their pooled cache SMs must match the aggregate split.
        """
        split = decision.split
        if not decision.grants:
            if phase.is_corun:
                raise ValueError(
                    f"co-run phase {phase.describe()!r} needs per-resident "
                    "grants, but the policy returned none"
                )
            return (
                ResidentGrant(
                    application=phase.application,
                    compute_sms=split.num_compute_sms,
                    cache_sms=split.num_cache_sms,
                ),
            )
        grants = decision.grants
        granted = {grant.application: grant for grant in grants}
        demanded = {r.application: r.compute_sm_demand for r in phase.residents}
        if set(granted) != set(demanded) or any(
            granted[app].compute_sms != demanded[app] for app in demanded
        ):
            raise ValueError(
                f"phase {phase.describe()!r}: per-resident grants "
                f"{[(g.application, g.compute_sms) for g in grants]} do not "
                f"match the residency list {sorted(demanded.items())}"
            )
        if sum(grant.cache_sms for grant in grants) != split.num_cache_sms:
            raise ValueError(
                f"phase {phase.describe()!r}: resident cache grants sum to "
                f"{sum(g.cache_sms for g in grants)} but the split allocates "
                f"{split.num_cache_sms} cache-mode SMs"
            )
        return grants

    def _plan(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy],
        profiles: Mapping[str, ApplicationProfile],
    ) -> Tuple[List[PhaseDecision], Optional[object]]:
        """Per-phase decisions plus the Morpheus config (``None`` for baselines)."""
        if system in ("BL", "IBL"):
            decisions = [
                PhaseDecision(
                    split=MorpheusOperatingPoint(
                        num_compute_sms=phase.total_compute_sm_demand,
                        num_cache_sms=0,
                        # BL keeps idle SMs active; IBL gates them.
                        num_gated_sms=(
                            self.gpu.num_sms - phase.total_compute_sm_demand
                            if system == "IBL"
                            else 0
                        ),
                    ),
                    transition=NO_TRANSITION,
                    grants=tuple(
                        ResidentGrant(
                            application=residency.application,
                            compute_sms=residency.compute_sm_demand,
                            cache_sms=0,
                        )
                        for residency in phase.residents
                    ),
                )
                for phase in scenario.phases
            ]
            return decisions, None
        variant = _MORPHEUS_VARIANTS.get(system)
        if variant is None:
            valid = ", ".join(SCENARIO_SYSTEMS)
            raise ValueError(
                f"unknown scenario system {system!r}; expected one of: {valid}"
            )
        morpheus = variant.to_config(self.predictor)
        policy = policy or DynamicCapacityManager()
        decisions = policy.plan(
            scenario, self.gpu, morpheus, profiles, self.transition_model
        )
        if len(decisions) != len(scenario.phases):
            raise ValueError(
                f"policy {policy.name!r} returned {len(decisions)} decisions "
                f"for {len(scenario.phases)} phases"
            )
        return decisions, morpheus

    # -- execution ---------------------------------------------------------------------

    def run(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> ScenarioRunResult:
        """Execute ``scenario`` on ``system`` and return the timeline result.

        The finished aggregate is persisted in the runner cache's scenario
        tier under :meth:`run_key`, so a warm re-run of the same timeline
        loads **one** JSON payload instead of re-scoring every leaf (and a
        cold one stores it for the next caller).

        Leaves are deduplicated by (application, config) — the config alone
        does not identify a leaf: co-run phases of different applications
        can lower to identical configs and must not share a result — and
        executed as **one** replay-pooled batch, so repeated phases cost one
        leaf execution and parallel runners replay distinct leaves
        concurrently even across applications and residents.

        Co-run phases run their residents *concurrently* and **contended**:
        each resident's shared-bandwidth envelope is solved by fixed-point
        re-scoring (see :mod:`repro.scenarios.contention` — a
        score-tier-only computation, so contention never re-replays a
        trace), the phase retires its instruction budget collectively with
        each resident contributing in proportion to its contended IPC, and
        the phase's wall-clock cycles are the budget over the residents'
        aggregate contended IPC.
        """
        start = time.perf_counter()
        runner = self._runner()
        run_key = self.run_key(scenario, system, policy)
        payload = runner.load_scenario_payload(run_key)
        if payload is not None:
            try:
                return self._result_from_payload(
                    scenario,
                    system,
                    run_key,
                    payload,
                    elapsed_seconds=time.perf_counter() - start,
                )
            except (KeyError, TypeError, ValueError):
                # A malformed aggregate (e.g. a hand-edited entry) is
                # recomputed and overwritten rather than trusted.
                pass
        with telemetry().span(
            "scenario.run", system=system, phases=len(scenario.phases)
        ):
            result = self._run_cold(scenario, system, policy, run_key, start)
        runner.maybe_auto_prune()
        return result

    def _run_cold(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy],
        run_key: str,
        start: float,
    ) -> ScenarioRunResult:
        """The cold path of :meth:`run`: lower, execute, arbitrate, persist."""
        runner = self._runner()
        lowered = self.lower(scenario, system, policy)
        profiles = self._profiles(scenario)

        unique: List[Tuple[str, SimulationConfig]] = []
        seen = set()
        for phase in lowered:
            for leaf in phase.leaves:
                key = (leaf.application, leaf.config)
                if key not in seen:
                    seen.add(key)
                    unique.append(key)
        batch = runner.run_leaves(
            [(profiles[application], config) for application, config in unique]
        )
        stats_by_leaf: Dict[Tuple[str, SimulationConfig], SimulationStats] = dict(
            zip(unique, batch)
        )

        # Solve shared-bandwidth contention once per *distinct* co-run
        # leaf set: repeated phases (e.g. every full/dip round of an
        # overlap timeline) share one fixed point, exactly as they share
        # one replay.
        solutions: Dict[
            Tuple[Tuple[str, SimulationConfig], ...], PhaseContentionSolution
        ] = {}
        with telemetry().span("scenario.arbitrate", system=system) as arbitrate_span:
            for phase in lowered:
                keys = tuple(
                    (leaf.application, leaf.config) for leaf in phase.leaves
                )
                if len(keys) > 1 and keys not in solutions:
                    solutions[keys] = solve_phase_contention(
                        runner,
                        self.gpu,
                        [
                            (profiles[application], config)
                            for application, config in keys
                        ],
                        [stats_by_leaf[key] for key in keys],
                        self.contention,
                    )
            arbitrate_span.set(corun_sets=len(solutions))

        executions = []
        tel = telemetry()
        for phase in lowered:
            keys = tuple((leaf.application, leaf.config) for leaf in phase.leaves)
            uncontended = [stats_by_leaf[key] for key in keys]
            if len(keys) > 1:
                solution = solutions[keys]
                leaf_stats: Sequence[SimulationStats] = solution.stats
                envelopes: Sequence[ResourceEnvelope] = solution.envelopes
            else:
                leaf_stats = uncontended
                envelopes = (DEFAULT_ENVELOPE,) * len(keys)
            instructions = (
                phase.phase.duration_weight * scenario.instructions_per_weight
            )
            aggregate_ipc = sum(stats.ipc for stats in leaf_stats)
            compute_cycles = instructions / max(aggregate_ipc, 1e-9)
            executions.append(
                PhaseExecution(
                    index=phase.index,
                    phase=phase.phase,
                    decision=phase.decision,
                    residents=tuple(
                        ResidentExecution(
                            grant=leaf.grant,
                            stats=stats,
                            instructions=stats.ipc * compute_cycles,
                            envelope=envelope,
                            uncontended_ipc=base.ipc,
                        )
                        for leaf, stats, envelope, base in zip(
                            phase.leaves, leaf_stats, envelopes, uncontended
                        )
                    ),
                    instructions=instructions,
                    compute_cycles=compute_cycles,
                )
            )
            if tel.enabled:
                tel.event(
                    "scenario.phase",
                    index=phase.index,
                    system=system,
                    residents=len(keys),
                    corun=len(keys) > 1,
                    compute_cycles=compute_cycles,
                    flush_cycles=phase.decision.transition.flush_cycles,
                    warmup_cycles=phase.decision.transition.warmup_cycles,
                )
        result = ScenarioRunResult(
            scenario=scenario,
            system=system,
            policy_name=self._policy_name(system, policy),
            phases=tuple(executions),
            run_key=run_key,
            elapsed_seconds=time.perf_counter() - start,
        )
        runner.store_scenario_payload(run_key, self._result_to_payload(result))
        return result

    # -- scenario-aggregate persistence --------------------------------------------------

    @staticmethod
    def _result_to_payload(result: ScenarioRunResult) -> Dict[str, Any]:
        """Serialize one run's aggregate for the cache's scenario tier.

        The scenario spec itself is *not* stored: the aggregate is loaded
        by a caller holding the same spec (the run key proves it), so the
        payload only carries what the run computed.  Floats survive JSON
        via repr, so a reloaded result is bit-identical to the stored one.
        """
        return {
            "policy_name": result.policy_name,
            "phases": [
                {
                    "index": execution.index,
                    "split": dataclasses.asdict(execution.decision.split),
                    "transition": dataclasses.asdict(execution.decision.transition),
                    "grants": [
                        dataclasses.asdict(grant)
                        for grant in execution.decision.grants
                    ],
                    "residents": [
                        {
                            "grant": dataclasses.asdict(resident.grant),
                            "stats": stats_to_jsonable(resident.stats),
                            "instructions": resident.instructions,
                            "envelope": dataclasses.asdict(resident.envelope),
                            "uncontended_ipc": resident.uncontended_ipc,
                        }
                        for resident in execution.residents
                    ],
                    "instructions": execution.instructions,
                    "compute_cycles": execution.compute_cycles,
                }
                for execution in result.phases
            ],
        }

    @staticmethod
    def _result_from_payload(
        scenario: ScenarioSpec,
        system: str,
        run_key: str,
        payload: Mapping[str, Any],
        elapsed_seconds: float,
    ) -> ScenarioRunResult:
        """Rebuild a :class:`ScenarioRunResult` from :meth:`_result_to_payload`."""
        executions = []
        if len(payload["phases"]) != len(scenario.phases):
            raise ValueError(
                f"aggregate has {len(payload['phases'])} phases for a "
                f"{len(scenario.phases)}-phase scenario"
            )
        for entry in payload["phases"]:
            index = entry["index"]
            if not 0 <= index < len(scenario.phases):
                # Guard the scenario.phases[index] below: a corrupt entry
                # must fall into the caller's recompute path, not raise
                # IndexError (or silently attach a negatively-indexed phase).
                raise ValueError(f"aggregate phase index {index} out of range")
            decision = PhaseDecision(
                split=MorpheusOperatingPoint(**entry["split"]),
                transition=TransitionCost(**entry["transition"]),
                grants=tuple(ResidentGrant(**grant) for grant in entry["grants"]),
            )
            residents = tuple(
                ResidentExecution(
                    grant=ResidentGrant(**resident["grant"]),
                    stats=stats_from_jsonable(resident["stats"]),
                    instructions=resident["instructions"],
                    envelope=ResourceEnvelope(**resident["envelope"]),
                    uncontended_ipc=resident["uncontended_ipc"],
                )
                for resident in entry["residents"]
            )
            executions.append(
                PhaseExecution(
                    index=index,
                    phase=scenario.phases[index],
                    decision=decision,
                    residents=residents,
                    instructions=entry["instructions"],
                    compute_cycles=entry["compute_cycles"],
                )
            )
        return ScenarioRunResult(
            scenario=scenario,
            system=system,
            policy_name=payload["policy_name"],
            phases=tuple(executions),
            run_key=run_key,
            elapsed_seconds=elapsed_seconds,
        )

    @staticmethod
    def _policy_name(system: str, policy: Optional[CapacityPolicy]) -> str:
        """The label a run records for its capacity policy."""
        if system == "BL":
            return "all-active"
        if system == "IBL":
            return "power-gate"
        return (policy or DynamicCapacityManager()).name

    def run_systems(
        self,
        scenario: ScenarioSpec,
        systems: Sequence[str] = SCENARIO_SYSTEMS,
        policy: Optional[CapacityPolicy] = None,
    ) -> Dict[str, ScenarioRunResult]:
        """Run ``scenario`` on several systems; ``{system: result}``."""
        return {system: self.run(scenario, system, policy) for system in systems}

    def solo_reference_ipcs(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> Dict[str, float]:
        """Per-application solo reference IPCs for co-run metrics.

        For every application in ``scenario``, runs the timeline that
        application would see **alone**: only the phases where it is
        resident, at its own compute-SM demand, with the whole idle
        remainder of the GPU available to the capacity policy.  The
        reference is the duration-weight-weighted mean of the solo leaf
        IPCs — the same *equal-slice* aggregation
        :func:`repro.analysis.scenarios.per_app_timelines` uses for the
        shared run, so normalized progress compares each phase like for
        like (transition stalls are reported separately on both sides).
        Solo leaves flow through the same two-phase cache as everything
        else, so warm re-runs replay nothing.

        References are memoized per (scenario, system, policy, engine
        parameters) — the same content key addressing the run's scenario
        aggregates — so repeated co-run analyses against the same
        references do **zero** runner work after the first call.
        """
        memo_key = self.run_key(scenario, system, policy)
        cached = self._solo_reference_memo.get(memo_key)
        if cached is not None:
            return dict(cached)
        references: Dict[str, float] = {}
        for application in scenario.applications:
            phases = tuple(
                ScenarioPhase(
                    application=application,
                    compute_sm_demand=next(
                        residency.compute_sm_demand
                        for residency in phase.residents
                        if residency.application == application
                    ),
                    duration_weight=phase.duration_weight,
                    label=phase.label,
                )
                for phase in scenario.phases
                if application in phase.applications
            )
            solo = ScenarioSpec(
                name=f"{scenario.name}:{application}-solo",
                phases=phases,
                instructions_per_weight=scenario.instructions_per_weight,
                description=f"{application}'s residencies of {scenario.name!r}, alone",
            )
            result = self.run(solo, system, policy)
            total_weight = sum(
                execution.phase.duration_weight for execution in result.phases
            )
            references[application] = (
                sum(
                    execution.phase.duration_weight * execution.stats.ipc
                    for execution in result.phases
                )
                / total_weight
                if total_weight > 0
                else 0.0
            )
        self._solo_reference_memo[memo_key] = dict(references)
        return references

    def run_key(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> str:
        """Content-hash key of one timeline run (scenario-level artifacts).

        Extends :meth:`ScenarioSpec.scenario_key` — which already embeds the
        replay/score/scenario schema versions — with everything else that
        shapes the result: system, policy, GPU, fidelity, seed, predictor,
        the transition-cost knobs, the co-run contention-solver knobs and
        the energy constants the runner scores (and keys) leaves with.
        This key addresses the persisted scenario aggregates in the cache's
        ``scenarios/`` tier.
        """
        policy = policy if policy is not None else (
            None if system in ("BL", "IBL") else DynamicCapacityManager()
        )
        # Class name + instance fields, so parameterized policy subclasses
        # (a public extension point) never collide on a shared `name`.
        policy_fields: Dict[str, object] = dict(vars(policy)) if policy is not None else {}
        policy_class = type(policy).__name__ if policy is not None else None
        energy_model = self._runner().energy_model
        energies = energy_model.energies if energy_model is not None else DEFAULT_ENERGIES
        return content_hash(
            {
                "schema": SCENARIO_SCHEMA_VERSION,
                "scenario_key": scenario.scenario_key(),
                "system": system,
                "policy": policy.name if policy is not None else None,
                "policy_class": policy_class,
                "policy_fields": policy_fields,
                "gpu": self.gpu,
                "fidelity": self.fidelity,
                "seed": self.seed,
                "predictor": self.predictor,
                "transition_model": self.transition_model,
                "contention": self.contention,
                "energies": energies,
            }
        )
