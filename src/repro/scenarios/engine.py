"""The scenario engine: lowering timelines to leaf runs and executing them.

:class:`ScenarioEngine` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into per-phase :class:`~repro.sim.simulator.SimulationConfig` leaves
(**lowering** — pure, no simulation) and executes them through the
process-wide :class:`~repro.runner.runner.ExperimentRunner`'s two-phase
cache (**running**).  Because leaves are addressed by the ordinary
replay/score keys, repeated phases replay **at most once** per timeline,
re-running a scenario over a warm cache replays nothing, and analytic
re-scores of scenario leaves stay zero-replay-cost like any other run.

Co-run phases additionally solve **shared-bandwidth contention**: each
resident's leaf is re-scored under fixed-point
:class:`~repro.sim.performance_model.ResourceEnvelope` shares
(:mod:`repro.scenarios.contention`), so concurrent tenants see each
other's DRAM/LLC/NoC pressure instead of each owning the whole memory
system.  Finished timeline aggregates are persisted under
:meth:`ScenarioEngine.run_key` in the cache's ``scenarios/`` tier, so a
warm scenario re-run loads one JSON payload instead of re-scoring every
leaf.

Baselines and every Morpheus variant run under any scenario:

* ``BL`` keeps idle SMs active (burning static power),
* ``IBL`` power-gates them,
* ``Morpheus-*`` borrow them for the extended LLC under a
  :class:`~repro.scenarios.policy.CapacityPolicy` — by default the
  :class:`~repro.scenarios.policy.DynamicCapacityManager`, which replaces
  the offline per-application split search for timeline runs and charges
  flush/warm-up costs at every reconfiguration.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.energy.components import DEFAULT_ENERGIES
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.runner.cache import stats_from_jsonable, stats_to_jsonable
from repro.runner.runner import ExperimentRunner, active_runner
from repro.runner.spec import content_hash
from repro.scenarios.contention import (
    ContentionModel,
    PhaseContentionSolution,
    solve_phase_contention,
    solve_scenario_contention,
)
from repro.scenarios.policy import (
    CapacityPolicy,
    DynamicCapacityManager,
    NO_TRANSITION,
    PhaseDecision,
    ResidentGrant,
    TransitionCost,
    TransitionCostModel,
)
from repro.scenarios.spec import (
    Residency,
    SCENARIO_SCHEMA_VERSION,
    ScenarioPhase,
    ScenarioSpec,
)
from repro.sim.performance_model import DEFAULT_ENVELOPE, ResourceEnvelope
from repro.telemetry import telemetry
from repro.sim.simulator import SimulationConfig
from repro.sim.stats import SimulationStats
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY, get_fidelity
from repro.systems.morpheus_system import MorpheusOperatingPoint, MorpheusVariant
from repro.systems.registry import SCENARIO_SYSTEMS
from repro.workloads.applications import ApplicationProfile, get_application

_MORPHEUS_VARIANTS: Dict[str, MorpheusVariant] = {
    variant.value: variant for variant in MorpheusVariant
}


@dataclass(frozen=True)
class LoweredLeaf:
    """One resident's leaf simulation within a lowered phase."""

    grant: ResidentGrant
    config: SimulationConfig

    @property
    def application(self) -> str:
        """The resident application this leaf simulates."""
        return self.grant.application


@dataclass(frozen=True)
class LoweredPhase:
    """One phase lowered to concrete leaf simulations (one per resident)."""

    index: int
    phase: ScenarioPhase
    decision: PhaseDecision
    leaves: Tuple[LoweredLeaf, ...]

    @property
    def config(self) -> SimulationConfig:
        """The single leaf config of a single-tenant phase (convenience)."""
        if len(self.leaves) != 1:
            raise ValueError(
                f"co-run phase {self.phase.describe()!r} lowers to "
                f"{len(self.leaves)} leaves; use .leaves"
            )
        return self.leaves[0].config


@dataclass(frozen=True)
class ResidentExecution:
    """One resident's executed leaf within a phase.

    ``instructions`` is the share of the phase's instruction budget this
    resident retired — residents run *concurrently* for the whole phase, so
    each contributes in proportion to its leaf IPC.

    ``stats`` are the resident's **contended** results: on a co-run phase
    they are scored under the resident's solved shared-bandwidth
    ``envelope``, while ``uncontended_ipc`` records what the same leaf
    scored under the whole-GPU default envelope — the gap between the two
    is pure bandwidth interference (the extended-LLC grant is identical on
    both sides).  Single-tenant phases keep the default envelope and the
    two IPCs coincide.
    """

    grant: ResidentGrant
    stats: SimulationStats
    instructions: float
    envelope: ResourceEnvelope = DEFAULT_ENVELOPE
    uncontended_ipc: float = 0.0

    @property
    def application(self) -> str:
        """The resident application."""
        return self.grant.application

    @property
    def ipc(self) -> float:
        """The resident's modelled (contended) IPC at its granted shares."""
        return self.stats.ipc

    @property
    def bandwidth_interference_fraction(self) -> float:
        """IPC lost to shared-bandwidth contention, relative to uncontended."""
        if self.uncontended_ipc <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.stats.ipc / self.uncontended_ipc)


@dataclass(frozen=True)
class PhaseExecution:
    """One executed phase: its lowered form plus the scored leaf results.

    ``instructions`` is the phase's share of the timeline
    (``duration_weight * instructions_per_weight``), retired collectively by
    the phase's residents; ``compute_cycles`` is the wall-clock time that
    takes at their aggregate IPC (for a single-tenant phase, exactly
    ``instructions / ipc``).  The transition cost into the phase lives in
    ``decision.transition``.
    """

    index: int
    phase: ScenarioPhase
    decision: PhaseDecision
    residents: Tuple[ResidentExecution, ...]
    instructions: float
    compute_cycles: float

    @property
    def stats(self) -> SimulationStats:
        """The single leaf stats of a single-tenant phase (convenience)."""
        if len(self.residents) != 1:
            raise ValueError(
                f"co-run phase {self.phase.describe()!r} has "
                f"{len(self.residents)} resident results; use .residents"
            )
        return self.residents[0].stats

    @property
    def cycles(self) -> float:
        """Phase cycles including the transition stall charged on entry."""
        return self.compute_cycles + self.decision.transition.total_cycles


@dataclass(frozen=True)
class PhaseSignature:
    """The canonical identity of a phase's execution.

    Two phases with equal signatures — same residency list, same duration
    weight, same planned split and per-resident grants — lower to the same
    leaves, solve the same contention fixed point and retire the same
    instruction budget, so the engine computes their execution **once** and
    reuses it.  A fleet timeline has thousands of phases but only tens of
    signatures.

    What the signature deliberately excludes: the phase ``label`` (labels
    are cosmetic) and the transition *into* the phase (it depends on the
    predecessor, so it is tracked per phase, not per signature).  The leaf
    configs are a pure function of (grants, system, engine parameters), so
    they need no separate entry.
    """

    residents: Tuple[Residency, ...]
    duration_weight: float
    split: MorpheusOperatingPoint
    grants: Tuple[ResidentGrant, ...]


@dataclass(frozen=True)
class SignatureExecution:
    """One distinct signature's solved execution, shared by its phases.

    ``count`` is how many phases of the timeline bear this signature — the
    run's dedup hits are ``sum(count) - len(signatures)``.
    """

    signature: PhaseSignature
    residents: Tuple[ResidentExecution, ...]
    instructions: float
    compute_cycles: float
    count: int


class SignaturePhases(SequenceABC):
    """Lazy per-phase view over a signature-deduplicated run.

    Presents the familiar ``result.phases`` sequence of
    :class:`PhaseExecution` while storing only O(signatures) state: the
    distinct :class:`SignatureExecution` records, the interned transition
    costs, and two int id arrays mapping each phase to its signature and
    transition.  ``__getitem__`` materializes a ``PhaseExecution`` on
    demand (bit-identical to what the per-phase path would have built);
    iterating never holds more than one phase at a time, so streaming
    consumers keep peak memory bounded by signatures, not phases.
    """

    __slots__ = (
        "_scenario",
        "_executions",
        "_signature_ids",
        "_transitions",
        "_transition_ids",
        "_decisions",
    )

    def __init__(
        self,
        scenario: ScenarioSpec,
        executions: Tuple[SignatureExecution, ...],
        signature_ids: Tuple[int, ...],
        transitions: Tuple[TransitionCost, ...],
        transition_ids: Tuple[int, ...],
    ) -> None:
        if len(signature_ids) != len(transition_ids):
            raise ValueError("signature/transition id arrays must align")
        self._scenario = scenario
        self._executions = executions
        self._signature_ids = signature_ids
        self._transitions = transitions
        self._transition_ids = transition_ids
        # (signature id, transition id) pairs are few; interning the
        # PhaseDecision per pair keeps repeated access allocation-free.
        self._decisions: Dict[Tuple[int, int], PhaseDecision] = {}

    def __len__(self) -> int:
        return len(self._signature_ids)

    def _decision(self, signature_id: int, transition_id: int) -> PhaseDecision:
        key = (signature_id, transition_id)
        decision = self._decisions.get(key)
        if decision is None:
            signature = self._executions[signature_id].signature
            decision = PhaseDecision(
                split=signature.split,
                transition=self._transitions[transition_id],
                grants=signature.grants,
            )
            self._decisions[key] = decision
        return decision

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("phase index out of range")
        signature_id = self._signature_ids[index]
        execution = self._executions[signature_id]
        return PhaseExecution(
            index=index,
            phase=self._scenario.phases[index],
            decision=self._decision(signature_id, self._transition_ids[index]),
            residents=execution.residents,
            instructions=execution.instructions,
            compute_cycles=execution.compute_cycles,
        )


@dataclass
class ScenarioRunResult:
    """The full outcome of one (scenario, system, policy) timeline run.

    ``phases`` is a sequence of per-phase executions: a materialized tuple
    on the per-phase path, or a lazy :class:`SignaturePhases` view on the
    deduplicated path (same elements, O(signatures) memory).  When the run
    was deduplicated, ``signatures`` additionally exposes the distinct
    :class:`SignatureExecution` records (``None`` otherwise).
    """

    scenario: ScenarioSpec
    system: str
    policy_name: str
    phases: Sequence[PhaseExecution]
    run_key: str
    elapsed_seconds: float = 0.0
    signatures: Optional[Tuple[SignatureExecution, ...]] = None

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def total_instructions(self) -> float:
        """Instructions retired across the whole timeline."""
        return sum(execution.instructions for execution in self.phases)

    @property
    def compute_cycles(self) -> float:
        """Cycles spent retiring instructions (no transition stalls)."""
        return sum(execution.compute_cycles for execution in self.phases)

    @property
    def transition_cycles(self) -> float:
        """Cycles lost to extended-LLC flushes and warm-ups."""
        return sum(
            execution.decision.transition.total_cycles for execution in self.phases
        )

    @property
    def total_cycles(self) -> float:
        """End-to-end timeline cycles (compute + transitions)."""
        return self.compute_cycles + self.transition_cycles

    @property
    def dedup_hits(self) -> int:
        """Phases served by an already-solved signature (0 on the per-phase path)."""
        if self.signatures is None:
            return 0
        return len(self.phases) - len(self.signatures)


class ScenarioEngine:
    """Lowers scenario timelines to leaf runs and executes them via the runner.

    Args:
        runner: Runner executing the leaves; ``None`` resolves the
            process-wide runner at call time.
        gpu: Baseline GPU configuration shared by all phases.
        fidelity: Trace sizing preset for the phase leaves.
        seed: Trace-generation seed shared by all phases.
        transition_model: Flush/warm-up cost knobs for dynamic policies.
        predictor: Hit/miss predictor flavour for Morpheus systems.
        contention: Shared-bandwidth fixed-point solver knobs for co-run
            phases (see :class:`~repro.scenarios.contention.ContentionModel`);
            ``None`` uses the defaults.
        phase_dedup: Deduplicate phases by :class:`PhaseSignature` on the
            cold path, solving each distinct signature once (the default).
            ``False`` keeps the per-phase path — same results, O(phases)
            work and memory.  The flag is an execution-plan choice, not a
            semantic one, so it is deliberately **not** part of
            :meth:`run_key`: both modes read and write the same cache
            entries and produce bit-identical executions.
    """

    def __init__(
        self,
        runner: Optional[ExperimentRunner] = None,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Fidelity = STANDARD_FIDELITY,
        seed: int = 1,
        transition_model: Optional[TransitionCostModel] = None,
        predictor: str = "bloom",
        contention: Optional[ContentionModel] = None,
        phase_dedup: bool = True,
    ) -> None:
        self.runner = runner
        self.gpu = gpu
        self.fidelity = get_fidelity(fidelity)
        self.seed = seed
        self.transition_model = transition_model or TransitionCostModel()
        self.predictor = predictor
        self.contention = contention or ContentionModel()
        self.phase_dedup = phase_dedup
        self._solo_reference_memo: Dict[str, Dict[str, float]] = {}

    def _runner(self) -> ExperimentRunner:
        return self.runner if self.runner is not None else active_runner()

    def _profiles(self, scenario: ScenarioSpec) -> Dict[str, ApplicationProfile]:
        return {name: get_application(name) for name in scenario.applications}

    def _validate_demands(self, scenario: ScenarioSpec) -> None:
        for phase in scenario.phases:
            if phase.total_compute_sm_demand > self.gpu.num_sms:
                raise ValueError(
                    f"phase {phase.describe()!r} demands "
                    f"{phase.total_compute_sm_demand} SMs but the GPU has "
                    f"{self.gpu.num_sms}"
                )

    def _leaf_config(
        self, grant: ResidentGrant, morpheus: Optional[object], system: str
    ) -> SimulationConfig:
        """The leaf config one resident grant lowers to (pure function)."""
        return SimulationConfig(
            gpu=self.gpu,
            morpheus=morpheus if grant.cache_sms > 0 else None,
            num_compute_sms=grant.compute_sms,
            num_cache_sms=grant.cache_sms,
            power_gate_unused=system != "BL",
            capacity_scale=self.fidelity.capacity_scale,
            trace_accesses=self.fidelity.trace_accesses,
            warmup_accesses=self.fidelity.warmup_accesses,
            system_name=system,
            replay_mode=self.fidelity.mode,
            seed=self.seed,
        )

    # -- lowering (pure) ---------------------------------------------------------------

    def lower(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> List[LoweredPhase]:
        """Lower every phase of ``scenario`` to leaf configs (no simulation).

        A single-tenant phase lowers to one leaf; a co-run phase lowers to
        **one leaf per resident**, each simulated at the resident's granted
        compute-SM share and its arbitrated slice of the pooled extended-LLC
        capacity.  This is the hot path of scenario execution bookkeeping:
        policy planning plus config construction, benchmarked separately
        from the (cached) leaf simulations.
        """
        self._validate_demands(scenario)
        profiles = self._profiles(scenario)
        with telemetry().span(
            "scenario.plan", system=system, phases=len(scenario.phases)
        ):
            decisions, morpheus = self._plan(scenario, system, policy, profiles)
        lowered = []
        with telemetry().span(
            "scenario.lower", system=system, phases=len(scenario.phases)
        ):
            for index, (phase, decision) in enumerate(
                zip(scenario.phases, decisions)
            ):
                grants = self._decision_grants(phase, decision)
                leaves = tuple(
                    LoweredLeaf(
                        grant=grant,
                        config=self._leaf_config(grant, morpheus, system),
                    )
                    for grant in grants
                )
                lowered.append(
                    LoweredPhase(
                        index=index, phase=phase, decision=decision, leaves=leaves
                    )
                )
        return lowered

    @staticmethod
    def _decision_grants(
        phase: ScenarioPhase, decision: PhaseDecision
    ) -> Tuple[ResidentGrant, ...]:
        """The per-resident grants of one decision, validated against the phase.

        Policies that predate co-run support may omit grants for
        single-tenant phases; the engine synthesizes the obvious one-entry
        breakdown from the aggregate split.  Explicit grants must cover
        exactly the phase's residents at their demanded compute shares, and
        their pooled cache SMs must match the aggregate split.
        """
        split = decision.split
        if not decision.grants:
            if phase.is_corun:
                raise ValueError(
                    f"co-run phase {phase.describe()!r} needs per-resident "
                    "grants, but the policy returned none"
                )
            return (
                ResidentGrant(
                    application=phase.application,
                    compute_sms=split.num_compute_sms,
                    cache_sms=split.num_cache_sms,
                ),
            )
        grants = decision.grants
        granted = {grant.application: grant for grant in grants}
        demanded = {r.application: r.compute_sm_demand for r in phase.residents}
        if set(granted) != set(demanded) or any(
            granted[app].compute_sms != demanded[app] for app in demanded
        ):
            raise ValueError(
                f"phase {phase.describe()!r}: per-resident grants "
                f"{[(g.application, g.compute_sms) for g in grants]} do not "
                f"match the residency list {sorted(demanded.items())}"
            )
        if sum(grant.cache_sms for grant in grants) != split.num_cache_sms:
            raise ValueError(
                f"phase {phase.describe()!r}: resident cache grants sum to "
                f"{sum(g.cache_sms for g in grants)} but the split allocates "
                f"{split.num_cache_sms} cache-mode SMs"
            )
        return grants

    def _plan(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy],
        profiles: Mapping[str, ApplicationProfile],
    ) -> Tuple[List[PhaseDecision], Optional[object]]:
        """Per-phase decisions plus the Morpheus config (``None`` for baselines)."""
        if system in ("BL", "IBL"):
            decisions = [
                PhaseDecision(
                    split=MorpheusOperatingPoint(
                        num_compute_sms=phase.total_compute_sm_demand,
                        num_cache_sms=0,
                        # BL keeps idle SMs active; IBL gates them.
                        num_gated_sms=(
                            self.gpu.num_sms - phase.total_compute_sm_demand
                            if system == "IBL"
                            else 0
                        ),
                    ),
                    transition=NO_TRANSITION,
                    grants=tuple(
                        ResidentGrant(
                            application=residency.application,
                            compute_sms=residency.compute_sm_demand,
                            cache_sms=0,
                        )
                        for residency in phase.residents
                    ),
                )
                for phase in scenario.phases
            ]
            return decisions, None
        variant = _MORPHEUS_VARIANTS.get(system)
        if variant is None:
            valid = ", ".join(SCENARIO_SYSTEMS)
            raise ValueError(
                f"unknown scenario system {system!r}; expected one of: {valid}"
            )
        morpheus = variant.to_config(self.predictor)
        policy = policy or DynamicCapacityManager()
        decisions = policy.plan(
            scenario, self.gpu, morpheus, profiles, self.transition_model
        )
        if len(decisions) != len(scenario.phases):
            raise ValueError(
                f"policy {policy.name!r} returned {len(decisions)} decisions "
                f"for {len(scenario.phases)} phases"
            )
        return decisions, morpheus

    # -- execution ---------------------------------------------------------------------

    def run(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> ScenarioRunResult:
        """Execute ``scenario`` on ``system`` and return the timeline result.

        The finished aggregate is persisted in the runner cache's scenario
        tier under :meth:`run_key`, so a warm re-run of the same timeline
        loads **one** JSON payload instead of re-scoring every leaf (and a
        cold one stores it for the next caller).

        Leaves are deduplicated by (application, config) — the config alone
        does not identify a leaf: co-run phases of different applications
        can lower to identical configs and must not share a result — and
        executed as **one** replay-pooled batch, so repeated phases cost one
        leaf execution and parallel runners replay distinct leaves
        concurrently even across applications and residents.

        Co-run phases run their residents *concurrently* and **contended**:
        each resident's shared-bandwidth envelope is solved by fixed-point
        re-scoring (see :mod:`repro.scenarios.contention` — a
        score-tier-only computation, so contention never re-replays a
        trace), the phase retires its instruction budget collectively with
        each resident contributing in proportion to its contended IPC, and
        the phase's wall-clock cycles are the budget over the residents'
        aggregate contended IPC.
        """
        start = time.perf_counter()
        runner = self._runner()
        run_key = self.run_key(scenario, system, policy)
        payload = runner.load_scenario_payload(run_key)
        if payload is not None:
            try:
                return self._result_from_payload(
                    scenario,
                    system,
                    run_key,
                    payload,
                    elapsed_seconds=time.perf_counter() - start,
                )
            except (KeyError, TypeError, ValueError):
                # A malformed aggregate (e.g. a hand-edited entry) is
                # recomputed and overwritten rather than trusted.
                pass
        with telemetry().span(
            "scenario.run", system=system, phases=len(scenario.phases)
        ):
            result = self._run_cold(scenario, system, policy, run_key, start)
        runner.maybe_auto_prune()
        return result

    def _run_cold(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy],
        run_key: str,
        start: float,
    ) -> ScenarioRunResult:
        """The cold path of :meth:`run`: lower, execute, arbitrate, persist."""
        if self.phase_dedup:
            return self._run_cold_dedup(scenario, system, policy, run_key, start)
        return self._run_cold_phases(scenario, system, policy, run_key, start)

    def _run_cold_dedup(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy],
        run_key: str,
        start: float,
    ) -> ScenarioRunResult:
        """Signature-deduplicated cold path: solve per distinct signature.

        Phases are canonicalized to :class:`PhaseSignature` *after*
        planning (dynamic policies are history-dependent — hysteresis can
        make identical phases plan differently — so signatures must derive
        from the decisions, not the raw phases).  Each distinct signature
        lowers once, enters the leaf batch once, solves contention once and
        builds its :class:`ResidentExecution` tuple once; the per-phase
        view is reconstructed lazily.  Every computed float goes through
        exactly the arithmetic of the per-phase path on the same inputs, so
        the executions are bit-identical.
        """
        runner = self._runner()
        self._validate_demands(scenario)
        profiles = self._profiles(scenario)
        tel = telemetry()
        with tel.span(
            "scenario.plan", system=system, phases=len(scenario.phases)
        ):
            decisions, morpheus = self._plan(scenario, system, policy, profiles)

        signatures: List[PhaseSignature] = []
        signature_leaves: List[Tuple[LoweredLeaf, ...]] = []
        signature_counts: List[int] = []
        signature_index: Dict[PhaseSignature, int] = {}
        signature_ids: List[int] = []
        transitions: List[TransitionCost] = []
        transition_index: Dict[TransitionCost, int] = {}
        transition_ids: List[int] = []
        with tel.span(
            "scenario.lower", system=system, phases=len(scenario.phases)
        ):
            for phase, decision in zip(scenario.phases, decisions):
                grants = self._decision_grants(phase, decision)
                signature = PhaseSignature(
                    residents=phase.residents,
                    duration_weight=phase.duration_weight,
                    split=decision.split,
                    grants=grants,
                )
                signature_id = signature_index.get(signature)
                if signature_id is None:
                    signature_id = len(signatures)
                    signature_index[signature] = signature_id
                    signatures.append(signature)
                    signature_counts.append(0)
                    signature_leaves.append(
                        tuple(
                            LoweredLeaf(
                                grant=grant,
                                config=self._leaf_config(grant, morpheus, system),
                            )
                            for grant in grants
                        )
                    )
                signature_counts[signature_id] += 1
                signature_ids.append(signature_id)
                transition = decision.transition
                transition_id = transition_index.get(transition)
                if transition_id is None:
                    transition_id = len(transitions)
                    transition_index[transition] = transition_id
                    transitions.append(transition)
                transition_ids.append(transition_id)
        if tel.enabled:
            tel.count("scenario.dedup.hits", len(signature_ids) - len(signatures))
            tel.count("scenario.dedup.misses", len(signatures))

        # One replay-pooled leaf batch over the distinct signatures' leaves
        # (phase-order first-seen, exactly the order the per-phase path
        # discovers them in).
        unique: List[Tuple[str, SimulationConfig]] = []
        seen = set()
        for leaves in signature_leaves:
            for leaf in leaves:
                key = (leaf.application, leaf.config)
                if key not in seen:
                    seen.add(key)
                    unique.append(key)
        batch = runner.run_leaves(
            [(profiles[application], config) for application, config in unique]
        )
        stats_by_leaf: Dict[Tuple[str, SimulationConfig], SimulationStats] = dict(
            zip(unique, batch)
        )

        # Contention: one fixed point per distinct co-run *leaf set* (two
        # signatures differing only in duration weight share a solve),
        # hoisted scorers and one persistence batch across all of them.
        signature_keys = [
            tuple((leaf.application, leaf.config) for leaf in leaves)
            for leaves in signature_leaves
        ]
        group_order: List[Tuple[Tuple[str, SimulationConfig], ...]] = []
        group_index: Dict[Tuple[Tuple[str, SimulationConfig], ...], int] = {}
        for keys in signature_keys:
            if len(keys) > 1 and keys not in group_index:
                group_index[keys] = len(group_order)
                group_order.append(keys)
        with tel.span("scenario.arbitrate", system=system) as arbitrate_span:
            solved = solve_scenario_contention(
                runner,
                self.gpu,
                [
                    (
                        [
                            (profiles[application], config)
                            for application, config in keys
                        ],
                        [stats_by_leaf[key] for key in keys],
                    )
                    for keys in group_order
                ],
                self.contention,
            )
            arbitrate_span.set(corun_sets=len(group_order))
        solutions: Dict[
            Tuple[Tuple[str, SimulationConfig], ...], PhaseContentionSolution
        ] = dict(zip(group_order, solved))

        executions: List[SignatureExecution] = []
        for signature, leaves, keys, count in zip(
            signatures, signature_leaves, signature_keys, signature_counts
        ):
            uncontended = [stats_by_leaf[key] for key in keys]
            if len(keys) > 1:
                solution = solutions[keys]
                leaf_stats: Sequence[SimulationStats] = solution.stats
                envelopes: Sequence[ResourceEnvelope] = solution.envelopes
            else:
                leaf_stats = uncontended
                envelopes = (DEFAULT_ENVELOPE,) * len(keys)
            instructions = (
                signature.duration_weight * scenario.instructions_per_weight
            )
            aggregate_ipc = sum(stats.ipc for stats in leaf_stats)
            compute_cycles = instructions / max(aggregate_ipc, 1e-9)
            executions.append(
                SignatureExecution(
                    signature=signature,
                    residents=tuple(
                        ResidentExecution(
                            grant=leaf.grant,
                            stats=stats,
                            instructions=stats.ipc * compute_cycles,
                            envelope=envelope,
                            uncontended_ipc=base.ipc,
                        )
                        for leaf, stats, envelope, base in zip(
                            leaves, leaf_stats, envelopes, uncontended
                        )
                    ),
                    instructions=instructions,
                    compute_cycles=compute_cycles,
                    count=count,
                )
            )
            if tel.enabled:
                tel.event(
                    "scenario.signature",
                    system=system,
                    residents=len(keys),
                    corun=len(keys) > 1,
                    phases=count,
                    compute_cycles=compute_cycles,
                )
        result = ScenarioRunResult(
            scenario=scenario,
            system=system,
            policy_name=self._policy_name(system, policy),
            phases=SignaturePhases(
                scenario,
                tuple(executions),
                tuple(signature_ids),
                tuple(transitions),
                tuple(transition_ids),
            ),
            run_key=run_key,
            elapsed_seconds=time.perf_counter() - start,
            signatures=tuple(executions),
        )
        runner.store_scenario_payload(
            run_key,
            self._signature_payload(
                result.policy_name,
                tuple(executions),
                signature_ids,
                transitions,
                transition_ids,
            ),
        )
        return result

    def _run_cold_phases(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy],
        run_key: str,
        start: float,
    ) -> ScenarioRunResult:
        """The per-phase cold path (``phase_dedup=False``): one solve per phase.

        Kept as the reference implementation the deduplicated path is
        benchmarked and bit-identity-tested against.
        """
        runner = self._runner()
        lowered = self.lower(scenario, system, policy)
        profiles = self._profiles(scenario)

        unique: List[Tuple[str, SimulationConfig]] = []
        seen = set()
        for phase in lowered:
            for leaf in phase.leaves:
                key = (leaf.application, leaf.config)
                if key not in seen:
                    seen.add(key)
                    unique.append(key)
        batch = runner.run_leaves(
            [(profiles[application], config) for application, config in unique]
        )
        stats_by_leaf: Dict[Tuple[str, SimulationConfig], SimulationStats] = dict(
            zip(unique, batch)
        )

        # Solve shared-bandwidth contention once per *distinct* co-run
        # leaf set: repeated phases (e.g. every full/dip round of an
        # overlap timeline) share one fixed point, exactly as they share
        # one replay.
        solutions: Dict[
            Tuple[Tuple[str, SimulationConfig], ...], PhaseContentionSolution
        ] = {}
        with telemetry().span("scenario.arbitrate", system=system) as arbitrate_span:
            for phase in lowered:
                keys = tuple(
                    (leaf.application, leaf.config) for leaf in phase.leaves
                )
                if len(keys) > 1 and keys not in solutions:
                    solutions[keys] = solve_phase_contention(
                        runner,
                        self.gpu,
                        [
                            (profiles[application], config)
                            for application, config in keys
                        ],
                        [stats_by_leaf[key] for key in keys],
                        self.contention,
                    )
            arbitrate_span.set(corun_sets=len(solutions))

        executions = []
        tel = telemetry()
        for phase in lowered:
            keys = tuple((leaf.application, leaf.config) for leaf in phase.leaves)
            uncontended = [stats_by_leaf[key] for key in keys]
            if len(keys) > 1:
                solution = solutions[keys]
                leaf_stats: Sequence[SimulationStats] = solution.stats
                envelopes: Sequence[ResourceEnvelope] = solution.envelopes
            else:
                leaf_stats = uncontended
                envelopes = (DEFAULT_ENVELOPE,) * len(keys)
            instructions = (
                phase.phase.duration_weight * scenario.instructions_per_weight
            )
            aggregate_ipc = sum(stats.ipc for stats in leaf_stats)
            compute_cycles = instructions / max(aggregate_ipc, 1e-9)
            executions.append(
                PhaseExecution(
                    index=phase.index,
                    phase=phase.phase,
                    decision=phase.decision,
                    residents=tuple(
                        ResidentExecution(
                            grant=leaf.grant,
                            stats=stats,
                            instructions=stats.ipc * compute_cycles,
                            envelope=envelope,
                            uncontended_ipc=base.ipc,
                        )
                        for leaf, stats, envelope, base in zip(
                            phase.leaves, leaf_stats, envelopes, uncontended
                        )
                    ),
                    instructions=instructions,
                    compute_cycles=compute_cycles,
                )
            )
            if tel.enabled:
                tel.event(
                    "scenario.phase",
                    index=phase.index,
                    system=system,
                    residents=len(keys),
                    corun=len(keys) > 1,
                    compute_cycles=compute_cycles,
                    flush_cycles=phase.decision.transition.flush_cycles,
                    warmup_cycles=phase.decision.transition.warmup_cycles,
                )
        result = ScenarioRunResult(
            scenario=scenario,
            system=system,
            policy_name=self._policy_name(system, policy),
            phases=tuple(executions),
            run_key=run_key,
            elapsed_seconds=time.perf_counter() - start,
        )
        runner.store_scenario_payload(run_key, self._result_to_payload(result))
        return result

    # -- scenario-aggregate persistence --------------------------------------------------

    @staticmethod
    def _result_to_payload(result: ScenarioRunResult) -> Dict[str, Any]:
        """Serialize one run's aggregate for the cache's scenario tier.

        The scenario spec itself is *not* stored: the aggregate is loaded
        by a caller holding the same spec (the run key proves it), so the
        payload only carries what the run computed.  Floats survive JSON
        via repr, so a reloaded result is bit-identical to the stored one.
        """
        return {
            "policy_name": result.policy_name,
            "phases": [
                {
                    "index": execution.index,
                    "split": dataclasses.asdict(execution.decision.split),
                    "transition": dataclasses.asdict(execution.decision.transition),
                    "grants": [
                        dataclasses.asdict(grant)
                        for grant in execution.decision.grants
                    ],
                    "residents": [
                        {
                            "grant": dataclasses.asdict(resident.grant),
                            "stats": stats_to_jsonable(resident.stats),
                            "instructions": resident.instructions,
                            "envelope": dataclasses.asdict(resident.envelope),
                            "uncontended_ipc": resident.uncontended_ipc,
                        }
                        for resident in execution.residents
                    ],
                    "instructions": execution.instructions,
                    "compute_cycles": execution.compute_cycles,
                }
                for execution in result.phases
            ],
        }

    @staticmethod
    def _signature_payload(
        policy_name: str,
        executions: Tuple[SignatureExecution, ...],
        signature_ids: Sequence[int],
        transitions: Sequence[TransitionCost],
        transition_ids: Sequence[int],
    ) -> Dict[str, Any]:
        """Serialize a deduplicated run in the signature-keyed layout.

        O(signatures) payload for an O(phases) timeline: the distinct
        signature executions and interned transitions are stored once, and
        each phase contributes one ``[signature_id, transition_id]`` pair.
        This layout is what :data:`SCENARIO_SCHEMA_VERSION` 4 names; the
        legacy per-phase layout remains readable.
        """
        return {
            "layout": "signatures",
            "policy_name": policy_name,
            "signatures": [
                {
                    "residents_spec": [
                        dataclasses.asdict(residency)
                        for residency in execution.signature.residents
                    ],
                    "duration_weight": execution.signature.duration_weight,
                    "split": dataclasses.asdict(execution.signature.split),
                    "grants": [
                        dataclasses.asdict(grant)
                        for grant in execution.signature.grants
                    ],
                    "residents": [
                        {
                            "grant": dataclasses.asdict(resident.grant),
                            "stats": stats_to_jsonable(resident.stats),
                            "instructions": resident.instructions,
                            "envelope": dataclasses.asdict(resident.envelope),
                            "uncontended_ipc": resident.uncontended_ipc,
                        }
                        for resident in execution.residents
                    ],
                    "instructions": execution.instructions,
                    "compute_cycles": execution.compute_cycles,
                    "count": execution.count,
                }
                for execution in executions
            ],
            "transitions": [
                dataclasses.asdict(transition) for transition in transitions
            ],
            "phases": [
                [signature_id, transition_id]
                for signature_id, transition_id in zip(
                    signature_ids, transition_ids
                )
            ],
        }

    @staticmethod
    def _result_from_signature_payload(
        scenario: ScenarioSpec,
        system: str,
        run_key: str,
        payload: Mapping[str, Any],
        elapsed_seconds: float,
    ) -> ScenarioRunResult:
        """Rebuild a deduplicated run from :meth:`_signature_payload`."""
        entries = payload["phases"]
        if len(entries) != len(scenario.phases):
            raise ValueError(
                f"aggregate has {len(entries)} phases for a "
                f"{len(scenario.phases)}-phase scenario"
            )
        transitions = tuple(
            TransitionCost(**entry) for entry in payload["transitions"]
        )
        executions = []
        for entry in payload["signatures"]:
            signature = PhaseSignature(
                residents=tuple(
                    Residency(**residency)
                    for residency in entry["residents_spec"]
                ),
                duration_weight=entry["duration_weight"],
                split=MorpheusOperatingPoint(**entry["split"]),
                grants=tuple(
                    ResidentGrant(**grant) for grant in entry["grants"]
                ),
            )
            executions.append(
                SignatureExecution(
                    signature=signature,
                    residents=tuple(
                        ResidentExecution(
                            grant=ResidentGrant(**resident["grant"]),
                            stats=stats_from_jsonable(resident["stats"]),
                            instructions=resident["instructions"],
                            envelope=ResourceEnvelope(**resident["envelope"]),
                            uncontended_ipc=resident["uncontended_ipc"],
                        )
                        for resident in entry["residents"]
                    ),
                    instructions=entry["instructions"],
                    compute_cycles=entry["compute_cycles"],
                    count=entry["count"],
                )
            )
        signature_ids: List[int] = []
        transition_ids: List[int] = []
        for item in entries:
            signature_id, transition_id = item
            if not isinstance(signature_id, int) or not isinstance(
                transition_id, int
            ):
                raise ValueError("aggregate phase ids must be integers")
            if not 0 <= signature_id < len(executions):
                raise ValueError(
                    f"aggregate signature id {signature_id} out of range"
                )
            if not 0 <= transition_id < len(transitions):
                raise ValueError(
                    f"aggregate transition id {transition_id} out of range"
                )
            signature_ids.append(signature_id)
            transition_ids.append(transition_id)
        executions = tuple(executions)
        return ScenarioRunResult(
            scenario=scenario,
            system=system,
            policy_name=payload["policy_name"],
            phases=SignaturePhases(
                scenario,
                executions,
                tuple(signature_ids),
                transitions,
                tuple(transition_ids),
            ),
            run_key=run_key,
            elapsed_seconds=elapsed_seconds,
            signatures=executions,
        )

    @staticmethod
    def _result_from_payload(
        scenario: ScenarioSpec,
        system: str,
        run_key: str,
        payload: Mapping[str, Any],
        elapsed_seconds: float,
    ) -> ScenarioRunResult:
        """Rebuild a :class:`ScenarioRunResult` from a stored aggregate.

        Dispatches on the payload's ``layout``: the signature-keyed layout
        written by the deduplicating engine, or the legacy per-phase layout
        (the ``phase_dedup=False`` path still writes it, and pre-bump
        entries used it exclusively).  Both reconstruct the same phases.
        """
        if payload.get("layout", "phases") == "signatures":
            return ScenarioEngine._result_from_signature_payload(
                scenario, system, run_key, payload, elapsed_seconds
            )
        executions = []
        if len(payload["phases"]) != len(scenario.phases):
            raise ValueError(
                f"aggregate has {len(payload['phases'])} phases for a "
                f"{len(scenario.phases)}-phase scenario"
            )
        for entry in payload["phases"]:
            index = entry["index"]
            if not 0 <= index < len(scenario.phases):
                # Guard the scenario.phases[index] below: a corrupt entry
                # must fall into the caller's recompute path, not raise
                # IndexError (or silently attach a negatively-indexed phase).
                raise ValueError(f"aggregate phase index {index} out of range")
            decision = PhaseDecision(
                split=MorpheusOperatingPoint(**entry["split"]),
                transition=TransitionCost(**entry["transition"]),
                grants=tuple(ResidentGrant(**grant) for grant in entry["grants"]),
            )
            residents = tuple(
                ResidentExecution(
                    grant=ResidentGrant(**resident["grant"]),
                    stats=stats_from_jsonable(resident["stats"]),
                    instructions=resident["instructions"],
                    envelope=ResourceEnvelope(**resident["envelope"]),
                    uncontended_ipc=resident["uncontended_ipc"],
                )
                for resident in entry["residents"]
            )
            executions.append(
                PhaseExecution(
                    index=index,
                    phase=scenario.phases[index],
                    decision=decision,
                    residents=residents,
                    instructions=entry["instructions"],
                    compute_cycles=entry["compute_cycles"],
                )
            )
        return ScenarioRunResult(
            scenario=scenario,
            system=system,
            policy_name=payload["policy_name"],
            phases=tuple(executions),
            run_key=run_key,
            elapsed_seconds=elapsed_seconds,
        )

    @staticmethod
    def _policy_name(system: str, policy: Optional[CapacityPolicy]) -> str:
        """The label a run records for its capacity policy."""
        if system == "BL":
            return "all-active"
        if system == "IBL":
            return "power-gate"
        return (policy or DynamicCapacityManager()).name

    def run_systems(
        self,
        scenario: ScenarioSpec,
        systems: Sequence[str] = SCENARIO_SYSTEMS,
        policy: Optional[CapacityPolicy] = None,
    ) -> Dict[str, ScenarioRunResult]:
        """Run ``scenario`` on several systems; ``{system: result}``."""
        return {system: self.run(scenario, system, policy) for system in systems}

    def solo_reference_ipcs(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> Dict[str, float]:
        """Per-application solo reference IPCs for co-run metrics.

        For every application in ``scenario``, runs the timeline that
        application would see **alone**: only the phases where it is
        resident, at its own compute-SM demand, with the whole idle
        remainder of the GPU available to the capacity policy.  The
        reference is the duration-weight-weighted mean of the solo leaf
        IPCs — the same *equal-slice* aggregation
        :func:`repro.analysis.scenarios.per_app_timelines` uses for the
        shared run, so normalized progress compares each phase like for
        like (transition stalls are reported separately on both sides).
        Solo leaves flow through the same two-phase cache as everything
        else, so warm re-runs replay nothing.

        References are memoized per (scenario, system, policy, engine
        parameters) — the same content key addressing the run's scenario
        aggregates — so repeated co-run analyses against the same
        references do **zero** runner work after the first call.  Across
        processes the computed references are persisted in the cache's
        scenario tier, so a warm call costs one payload load.

        The cold path plans every application's solo timeline, then
        deduplicates the per-(application, config) solo leaves **across
        all applications** into one replay-pooled batch — residents whose
        solo residencies overlap (the common case: every round of a co-run
        timeline grants the same shares) cost one leaf execution total,
        not one per application per phase.  Each reference is the same
        duration-weighted mean of the same leaf IPCs the per-app runs
        computed, in the same order, so the values are bit-identical.
        """
        memo_key = self.run_key(scenario, system, policy)
        cached = self._solo_reference_memo.get(memo_key)
        if cached is not None:
            return dict(cached)
        runner = self._runner()
        references_key = content_hash({"solo_references": memo_key})
        payload = runner.load_scenario_payload(references_key)
        if payload is not None:
            try:
                references = {
                    str(name): float(value)
                    for name, value in payload["references"].items()
                }
            except (AttributeError, KeyError, TypeError, ValueError):
                references = None
            if references is not None and set(references) == set(
                scenario.applications
            ):
                self._solo_reference_memo[memo_key] = dict(references)
                return references
        # Cold: plan each solo timeline, dedup the leaves across every
        # application, execute one batch, and fold the references.
        unique: List[Tuple[str, SimulationConfig]] = []
        leaf_index: Dict[Tuple[str, SimulationConfig], int] = {}
        per_app: Dict[str, List[Tuple[float, int]]] = {}
        for application in scenario.applications:
            phases = tuple(
                ScenarioPhase(
                    application=application,
                    compute_sm_demand=next(
                        residency.compute_sm_demand
                        for residency in phase.residents
                        if residency.application == application
                    ),
                    duration_weight=phase.duration_weight,
                    label=phase.label,
                )
                for phase in scenario.phases
                if application in phase.applications
            )
            solo = ScenarioSpec(
                name=f"{scenario.name}:{application}-solo",
                phases=phases,
                instructions_per_weight=scenario.instructions_per_weight,
                description=f"{application}'s residencies of {scenario.name!r}, alone",
            )
            self._validate_demands(solo)
            profiles = self._profiles(solo)
            decisions, morpheus = self._plan(solo, system, policy, profiles)
            entries: List[Tuple[float, int]] = []
            for phase, decision in zip(solo.phases, decisions):
                grant = self._decision_grants(phase, decision)[0]
                key = (application, self._leaf_config(grant, morpheus, system))
                index = leaf_index.get(key)
                if index is None:
                    index = len(unique)
                    leaf_index[key] = index
                    unique.append(key)
                entries.append((phase.duration_weight, index))
            per_app[application] = entries
        batch = runner.run_leaves(
            [
                (get_application(application), config)
                for application, config in unique
            ]
        )
        references = {}
        for application, entries in per_app.items():
            total_weight = sum(weight for weight, _ in entries)
            references[application] = (
                sum(weight * batch[index].ipc for weight, index in entries)
                / total_weight
                if total_weight > 0
                else 0.0
            )
        runner.store_scenario_payload(
            references_key, {"references": references}
        )
        self._solo_reference_memo[memo_key] = dict(references)
        return dict(references)

    def run_key(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> str:
        """Content-hash key of one timeline run (scenario-level artifacts).

        Extends :meth:`ScenarioSpec.scenario_key` — which already embeds the
        replay/score/scenario schema versions — with everything else that
        shapes the result: system, policy, GPU, fidelity, seed, predictor,
        the transition-cost knobs, the co-run contention-solver knobs and
        the energy constants the runner scores (and keys) leaves with.
        This key addresses the persisted scenario aggregates in the cache's
        ``scenarios/`` tier.
        """
        policy = policy if policy is not None else (
            None if system in ("BL", "IBL") else DynamicCapacityManager()
        )
        # Class name + instance fields, so parameterized policy subclasses
        # (a public extension point) never collide on a shared `name`.
        policy_fields: Dict[str, object] = dict(vars(policy)) if policy is not None else {}
        policy_class = type(policy).__name__ if policy is not None else None
        energy_model = self._runner().energy_model
        energies = energy_model.energies if energy_model is not None else DEFAULT_ENERGIES
        return content_hash(
            {
                "schema": SCENARIO_SCHEMA_VERSION,
                "scenario_key": scenario.scenario_key(),
                "system": system,
                "policy": policy.name if policy is not None else None,
                "policy_class": policy_class,
                "policy_fields": policy_fields,
                "gpu": self.gpu,
                "fidelity": self.fidelity,
                "seed": self.seed,
                "predictor": self.predictor,
                "transition_model": self.transition_model,
                "contention": self.contention,
                "energies": energies,
            }
        )
