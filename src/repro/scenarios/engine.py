"""The scenario engine: lowering timelines to leaf runs and executing them.

:class:`ScenarioEngine` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into per-phase :class:`~repro.sim.simulator.SimulationConfig` leaves
(**lowering** — pure, no simulation) and executes them through the
process-wide :class:`~repro.runner.runner.ExperimentRunner`'s two-phase
cache (**running**).  Because leaves are addressed by the ordinary
replay/score keys, repeated phases replay **at most once** per timeline,
re-running a scenario over a warm cache replays nothing, and analytic
re-scores of scenario leaves stay zero-replay-cost like any other run.

Baselines and every Morpheus variant run under any scenario:

* ``BL`` keeps idle SMs active (burning static power),
* ``IBL`` power-gates them,
* ``Morpheus-*`` borrow them for the extended LLC under a
  :class:`~repro.scenarios.policy.CapacityPolicy` — by default the
  :class:`~repro.scenarios.policy.DynamicCapacityManager`, which replaces
  the offline per-application split search for timeline runs and charges
  flush/warm-up costs at every reconfiguration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.energy.components import DEFAULT_ENERGIES
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.runner.runner import ExperimentRunner, active_runner
from repro.runner.spec import content_hash
from repro.scenarios.policy import (
    CapacityPolicy,
    DynamicCapacityManager,
    NO_TRANSITION,
    PhaseDecision,
    ResidentGrant,
    TransitionCostModel,
)
from repro.scenarios.spec import SCENARIO_SCHEMA_VERSION, ScenarioPhase, ScenarioSpec
from repro.sim.simulator import SimulationConfig
from repro.sim.stats import SimulationStats
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY
from repro.systems.morpheus_system import MorpheusVariant
from repro.systems.registry import SCENARIO_SYSTEMS
from repro.workloads.applications import ApplicationProfile, get_application

_MORPHEUS_VARIANTS: Dict[str, MorpheusVariant] = {
    variant.value: variant for variant in MorpheusVariant
}


@dataclass(frozen=True)
class LoweredLeaf:
    """One resident's leaf simulation within a lowered phase."""

    grant: ResidentGrant
    config: SimulationConfig

    @property
    def application(self) -> str:
        """The resident application this leaf simulates."""
        return self.grant.application


@dataclass(frozen=True)
class LoweredPhase:
    """One phase lowered to concrete leaf simulations (one per resident)."""

    index: int
    phase: ScenarioPhase
    decision: PhaseDecision
    leaves: Tuple[LoweredLeaf, ...]

    @property
    def config(self) -> SimulationConfig:
        """The single leaf config of a single-tenant phase (convenience)."""
        if len(self.leaves) != 1:
            raise ValueError(
                f"co-run phase {self.phase.describe()!r} lowers to "
                f"{len(self.leaves)} leaves; use .leaves"
            )
        return self.leaves[0].config


@dataclass(frozen=True)
class ResidentExecution:
    """One resident's executed leaf within a phase.

    ``instructions`` is the share of the phase's instruction budget this
    resident retired — residents run *concurrently* for the whole phase, so
    each contributes in proportion to its leaf IPC.
    """

    grant: ResidentGrant
    stats: SimulationStats
    instructions: float

    @property
    def application(self) -> str:
        """The resident application."""
        return self.grant.application

    @property
    def ipc(self) -> float:
        """The resident's modelled IPC at its granted shares."""
        return self.stats.ipc


@dataclass(frozen=True)
class PhaseExecution:
    """One executed phase: its lowered form plus the scored leaf results.

    ``instructions`` is the phase's share of the timeline
    (``duration_weight * instructions_per_weight``), retired collectively by
    the phase's residents; ``compute_cycles`` is the wall-clock time that
    takes at their aggregate IPC (for a single-tenant phase, exactly
    ``instructions / ipc``).  The transition cost into the phase lives in
    ``decision.transition``.
    """

    index: int
    phase: ScenarioPhase
    decision: PhaseDecision
    residents: Tuple[ResidentExecution, ...]
    instructions: float
    compute_cycles: float

    @property
    def stats(self) -> SimulationStats:
        """The single leaf stats of a single-tenant phase (convenience)."""
        if len(self.residents) != 1:
            raise ValueError(
                f"co-run phase {self.phase.describe()!r} has "
                f"{len(self.residents)} resident results; use .residents"
            )
        return self.residents[0].stats

    @property
    def cycles(self) -> float:
        """Phase cycles including the transition stall charged on entry."""
        return self.compute_cycles + self.decision.transition.total_cycles


@dataclass
class ScenarioRunResult:
    """The full outcome of one (scenario, system, policy) timeline run."""

    scenario: ScenarioSpec
    system: str
    policy_name: str
    phases: Tuple[PhaseExecution, ...]
    run_key: str
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def total_instructions(self) -> float:
        """Instructions retired across the whole timeline."""
        return sum(execution.instructions for execution in self.phases)

    @property
    def compute_cycles(self) -> float:
        """Cycles spent retiring instructions (no transition stalls)."""
        return sum(execution.compute_cycles for execution in self.phases)

    @property
    def transition_cycles(self) -> float:
        """Cycles lost to extended-LLC flushes and warm-ups."""
        return sum(
            execution.decision.transition.total_cycles for execution in self.phases
        )

    @property
    def total_cycles(self) -> float:
        """End-to-end timeline cycles (compute + transitions)."""
        return self.compute_cycles + self.transition_cycles


class ScenarioEngine:
    """Lowers scenario timelines to leaf runs and executes them via the runner.

    Args:
        runner: Runner executing the leaves; ``None`` resolves the
            process-wide runner at call time.
        gpu: Baseline GPU configuration shared by all phases.
        fidelity: Trace sizing preset for the phase leaves.
        seed: Trace-generation seed shared by all phases.
        transition_model: Flush/warm-up cost knobs for dynamic policies.
        predictor: Hit/miss predictor flavour for Morpheus systems.
    """

    def __init__(
        self,
        runner: Optional[ExperimentRunner] = None,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Fidelity = STANDARD_FIDELITY,
        seed: int = 1,
        transition_model: Optional[TransitionCostModel] = None,
        predictor: str = "bloom",
    ) -> None:
        self.runner = runner
        self.gpu = gpu
        self.fidelity = fidelity
        self.seed = seed
        self.transition_model = transition_model or TransitionCostModel()
        self.predictor = predictor

    def _runner(self) -> ExperimentRunner:
        return self.runner if self.runner is not None else active_runner()

    def _profiles(self, scenario: ScenarioSpec) -> Dict[str, ApplicationProfile]:
        return {name: get_application(name) for name in scenario.applications}

    # -- lowering (pure) ---------------------------------------------------------------

    def lower(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> List[LoweredPhase]:
        """Lower every phase of ``scenario`` to leaf configs (no simulation).

        A single-tenant phase lowers to one leaf; a co-run phase lowers to
        **one leaf per resident**, each simulated at the resident's granted
        compute-SM share and its arbitrated slice of the pooled extended-LLC
        capacity.  This is the hot path of scenario execution bookkeeping:
        policy planning plus config construction, benchmarked separately
        from the (cached) leaf simulations.
        """
        for phase in scenario.phases:
            if phase.total_compute_sm_demand > self.gpu.num_sms:
                raise ValueError(
                    f"phase {phase.describe()!r} demands "
                    f"{phase.total_compute_sm_demand} SMs but the GPU has "
                    f"{self.gpu.num_sms}"
                )
        profiles = self._profiles(scenario)
        decisions, morpheus = self._plan(scenario, system, policy, profiles)
        lowered = []
        for index, (phase, decision) in enumerate(zip(scenario.phases, decisions)):
            grants = self._decision_grants(phase, decision)
            leaves = tuple(
                LoweredLeaf(
                    grant=grant,
                    config=SimulationConfig(
                        gpu=self.gpu,
                        morpheus=morpheus if grant.cache_sms > 0 else None,
                        num_compute_sms=grant.compute_sms,
                        num_cache_sms=grant.cache_sms,
                        power_gate_unused=system != "BL",
                        capacity_scale=self.fidelity.capacity_scale,
                        trace_accesses=self.fidelity.trace_accesses,
                        warmup_accesses=self.fidelity.warmup_accesses,
                        system_name=system,
                        seed=self.seed,
                    ),
                )
                for grant in grants
            )
            lowered.append(
                LoweredPhase(
                    index=index, phase=phase, decision=decision, leaves=leaves
                )
            )
        return lowered

    @staticmethod
    def _decision_grants(
        phase: ScenarioPhase, decision: PhaseDecision
    ) -> Tuple[ResidentGrant, ...]:
        """The per-resident grants of one decision, validated against the phase.

        Policies that predate co-run support may omit grants for
        single-tenant phases; the engine synthesizes the obvious one-entry
        breakdown from the aggregate split.  Explicit grants must cover
        exactly the phase's residents at their demanded compute shares, and
        their pooled cache SMs must match the aggregate split.
        """
        split = decision.split
        if not decision.grants:
            if phase.is_corun:
                raise ValueError(
                    f"co-run phase {phase.describe()!r} needs per-resident "
                    "grants, but the policy returned none"
                )
            return (
                ResidentGrant(
                    application=phase.application,
                    compute_sms=split.num_compute_sms,
                    cache_sms=split.num_cache_sms,
                ),
            )
        grants = decision.grants
        granted = {grant.application: grant for grant in grants}
        demanded = {r.application: r.compute_sm_demand for r in phase.residents}
        if set(granted) != set(demanded) or any(
            granted[app].compute_sms != demanded[app] for app in demanded
        ):
            raise ValueError(
                f"phase {phase.describe()!r}: per-resident grants "
                f"{[(g.application, g.compute_sms) for g in grants]} do not "
                f"match the residency list {sorted(demanded.items())}"
            )
        if sum(grant.cache_sms for grant in grants) != split.num_cache_sms:
            raise ValueError(
                f"phase {phase.describe()!r}: resident cache grants sum to "
                f"{sum(g.cache_sms for g in grants)} but the split allocates "
                f"{split.num_cache_sms} cache-mode SMs"
            )
        return grants

    def _plan(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy],
        profiles: Mapping[str, ApplicationProfile],
    ) -> Tuple[List[PhaseDecision], Optional[object]]:
        """Per-phase decisions plus the Morpheus config (``None`` for baselines)."""
        from repro.systems.morpheus_system import MorpheusOperatingPoint

        if system in ("BL", "IBL"):
            decisions = [
                PhaseDecision(
                    split=MorpheusOperatingPoint(
                        num_compute_sms=phase.total_compute_sm_demand,
                        num_cache_sms=0,
                        # BL keeps idle SMs active; IBL gates them.
                        num_gated_sms=(
                            self.gpu.num_sms - phase.total_compute_sm_demand
                            if system == "IBL"
                            else 0
                        ),
                    ),
                    transition=NO_TRANSITION,
                    grants=tuple(
                        ResidentGrant(
                            application=residency.application,
                            compute_sms=residency.compute_sm_demand,
                            cache_sms=0,
                        )
                        for residency in phase.residents
                    ),
                )
                for phase in scenario.phases
            ]
            return decisions, None
        variant = _MORPHEUS_VARIANTS.get(system)
        if variant is None:
            valid = ", ".join(SCENARIO_SYSTEMS)
            raise ValueError(
                f"unknown scenario system {system!r}; expected one of: {valid}"
            )
        morpheus = variant.to_config(self.predictor)
        policy = policy or DynamicCapacityManager()
        decisions = policy.plan(
            scenario, self.gpu, morpheus, profiles, self.transition_model
        )
        if len(decisions) != len(scenario.phases):
            raise ValueError(
                f"policy {policy.name!r} returned {len(decisions)} decisions "
                f"for {len(scenario.phases)} phases"
            )
        return decisions, morpheus

    # -- execution ---------------------------------------------------------------------

    def run(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> ScenarioRunResult:
        """Execute ``scenario`` on ``system`` and return the timeline result.

        Leaves are deduplicated by (application, config) — the config alone
        does not identify a leaf: co-run phases of different applications
        can lower to identical configs and must not share a result — and
        executed as **one** replay-pooled batch, so repeated phases cost one
        leaf execution and parallel runners replay distinct leaves
        concurrently even across applications and residents.

        Co-run phases run their residents *concurrently*: the phase retires
        its instruction budget collectively, each resident contributing in
        proportion to its leaf IPC, and the phase's wall-clock cycles are
        the budget over the residents' aggregate IPC.
        """
        start = time.perf_counter()
        runner = self._runner()
        lowered = self.lower(scenario, system, policy)
        profiles = self._profiles(scenario)

        unique: List[Tuple[str, SimulationConfig]] = []
        seen = set()
        for phase in lowered:
            for leaf in phase.leaves:
                key = (leaf.application, leaf.config)
                if key not in seen:
                    seen.add(key)
                    unique.append(key)
        batch = runner.run_leaves(
            [(profiles[application], config) for application, config in unique]
        )
        stats_by_leaf: Dict[Tuple[str, SimulationConfig], SimulationStats] = dict(
            zip(unique, batch)
        )

        executions = []
        for phase in lowered:
            leaf_stats = [
                stats_by_leaf[(leaf.application, leaf.config)]
                for leaf in phase.leaves
            ]
            instructions = (
                phase.phase.duration_weight * scenario.instructions_per_weight
            )
            aggregate_ipc = sum(stats.ipc for stats in leaf_stats)
            compute_cycles = instructions / max(aggregate_ipc, 1e-9)
            executions.append(
                PhaseExecution(
                    index=phase.index,
                    phase=phase.phase,
                    decision=phase.decision,
                    residents=tuple(
                        ResidentExecution(
                            grant=leaf.grant,
                            stats=stats,
                            instructions=stats.ipc * compute_cycles,
                        )
                        for leaf, stats in zip(phase.leaves, leaf_stats)
                    ),
                    instructions=instructions,
                    compute_cycles=compute_cycles,
                )
            )
        runner.maybe_auto_prune()
        return ScenarioRunResult(
            scenario=scenario,
            system=system,
            policy_name=self._policy_name(system, policy),
            phases=tuple(executions),
            run_key=self.run_key(scenario, system, policy),
            elapsed_seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _policy_name(system: str, policy: Optional[CapacityPolicy]) -> str:
        """The label a run records for its capacity policy."""
        if system == "BL":
            return "all-active"
        if system == "IBL":
            return "power-gate"
        return (policy or DynamicCapacityManager()).name

    def run_systems(
        self,
        scenario: ScenarioSpec,
        systems: Sequence[str] = SCENARIO_SYSTEMS,
        policy: Optional[CapacityPolicy] = None,
    ) -> Dict[str, ScenarioRunResult]:
        """Run ``scenario`` on several systems; ``{system: result}``."""
        return {system: self.run(scenario, system, policy) for system in systems}

    def solo_reference_ipcs(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> Dict[str, float]:
        """Per-application solo reference IPCs for co-run metrics.

        For every application in ``scenario``, runs the timeline that
        application would see **alone**: only the phases where it is
        resident, at its own compute-SM demand, with the whole idle
        remainder of the GPU available to the capacity policy.  The
        reference is the duration-weight-weighted mean of the solo leaf
        IPCs — the same *equal-slice* aggregation
        :func:`repro.analysis.scenarios.per_app_timelines` uses for the
        shared run, so normalized progress compares each phase like for
        like (transition stalls are reported separately on both sides).
        Solo leaves flow through the same two-phase cache as everything
        else, so warm re-runs replay nothing.
        """
        references: Dict[str, float] = {}
        for application in scenario.applications:
            phases = tuple(
                ScenarioPhase(
                    application=application,
                    compute_sm_demand=next(
                        residency.compute_sm_demand
                        for residency in phase.residents
                        if residency.application == application
                    ),
                    duration_weight=phase.duration_weight,
                    label=phase.label,
                )
                for phase in scenario.phases
                if application in phase.applications
            )
            solo = ScenarioSpec(
                name=f"{scenario.name}:{application}-solo",
                phases=phases,
                instructions_per_weight=scenario.instructions_per_weight,
                description=f"{application}'s residencies of {scenario.name!r}, alone",
            )
            result = self.run(solo, system, policy)
            total_weight = sum(
                execution.phase.duration_weight for execution in result.phases
            )
            references[application] = (
                sum(
                    execution.phase.duration_weight * execution.stats.ipc
                    for execution in result.phases
                )
                / total_weight
                if total_weight > 0
                else 0.0
            )
        return references

    def run_key(
        self,
        scenario: ScenarioSpec,
        system: str,
        policy: Optional[CapacityPolicy] = None,
    ) -> str:
        """Content-hash key of one timeline run (scenario-level artifacts).

        Extends :meth:`ScenarioSpec.scenario_key` — which already embeds the
        replay/score/scenario schema versions — with everything else that
        shapes the result: system, policy, GPU, fidelity, seed, predictor,
        the transition-cost knobs and the energy constants the runner
        scores (and keys) leaves with.
        """
        policy = policy if policy is not None else (
            None if system in ("BL", "IBL") else DynamicCapacityManager()
        )
        # Class name + instance fields, so parameterized policy subclasses
        # (a public extension point) never collide on a shared `name`.
        policy_fields: Dict[str, object] = dict(vars(policy)) if policy is not None else {}
        policy_class = type(policy).__name__ if policy is not None else None
        energy_model = self._runner().energy_model
        energies = energy_model.energies if energy_model is not None else DEFAULT_ENERGIES
        return content_hash(
            {
                "schema": SCENARIO_SCHEMA_VERSION,
                "scenario_key": scenario.scenario_key(),
                "system": system,
                "policy": policy.name if policy is not None else None,
                "policy_class": policy_class,
                "policy_fields": policy_fields,
                "gpu": self.gpu,
                "fidelity": self.fidelity,
                "seed": self.seed,
                "predictor": self.predictor,
                "transition_model": self.transition_model,
                "energies": energies,
            }
        )
