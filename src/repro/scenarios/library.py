"""Library of named scenarios.

Each factory builds a :class:`~repro.scenarios.spec.ScenarioSpec` from a few
shape parameters; :func:`get_scenario` looks factories up by name so scripts
and CI can request timelines declaratively (``get_scenario("bursty")``).

The shapes mirror how idle GPU capacity actually comes and goes:

* ``steady`` — a constant-demand timeline: the repo's historical
  single-phase evaluation, expressed as a (repeated) scenario.
* ``bursty`` — alternating low/high demand, e.g. background analytics
  interrupted by latency-critical kernel bursts.  Each burst forces Morpheus
  to hand borrowed SMs back to compute, and each lull lets it re-borrow them.
* ``corun_pair`` — two applications alternating ownership of the GPU, a
  time-sliced co-run mix.
* ``corun_overlap`` — two applications **concurrently resident**, one of
  them periodically dipping its compute demand: the true multi-tenant
  setting where the capacity policies arbitrate the pooled idle-SM
  extended-LLC capacity between live tenants.
* ``mixed_tenancy`` — tenants arriving and departing: solo phases of each
  application around overlapping co-run phases.
* ``ramp`` (alias ``diurnal``) — demand climbing to a peak and easing back
  down, a compressed diurnal load curve.
* ``fleet`` — a seeded arrival-process generator: tenants arrive with
  exponential inter-arrival gaps, stay for exponential residencies, and
  their compute demand follows a quantized diurnal envelope.  Produces
  deterministic N-phase timelines (thousands of phases, tens of distinct
  phase signatures) for fleet-scale engine runs.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.scenarios.spec import Residency, ScenarioPhase, ScenarioSpec


def steady(
    application: str = "spmv",
    compute_sms: int = 34,
    num_phases: int = 4,
    phase_weight: float = 1.0,
) -> ScenarioSpec:
    """A constant-demand timeline (``num_phases`` identical phases).

    Every phase lowers to the *same* leaf simulation, so the whole timeline
    costs one trace replay — the degenerate case the two-phase cache makes
    free, and the reference point transition-cost comparisons are made
    against (a steady timeline never reconfigures).
    """
    if num_phases <= 0:
        raise ValueError("num_phases must be positive")
    phases = [
        ScenarioPhase(
            application=application,
            compute_sm_demand=compute_sms,
            duration_weight=phase_weight,
            label=f"steady-{index}",
        )
        for index in range(num_phases)
    ]
    return ScenarioSpec(
        name="steady",
        phases=tuple(phases),
        description=f"{application} at a constant {compute_sms}-SM demand",
    )


def bursty(
    application: str = "kmeans",
    low_sms: int = 24,
    high_sms: int = 60,
    bursts: int = 3,
    low_weight: float = 2.0,
    high_weight: float = 1.0,
) -> ScenarioSpec:
    """Alternating low/high compute demand: ``low, high, low, ..., low``.

    The low phases leave most of the GPU idle (Morpheus grows the extended
    LLC); each burst reclaims those SMs for compute (Morpheus flushes and
    hands capacity back), then the following lull re-grows it — the dynamic
    capacity manager pays a flush + warm-up on every edge.
    """
    if bursts <= 0:
        raise ValueError("bursts must be positive")
    if low_sms >= high_sms:
        raise ValueError("low_sms must be below high_sms")
    phases: List[ScenarioPhase] = []
    for index in range(bursts):
        phases.append(
            ScenarioPhase(
                application=application,
                compute_sm_demand=low_sms,
                duration_weight=low_weight,
                label=f"lull-{index}",
            )
        )
        phases.append(
            ScenarioPhase(
                application=application,
                compute_sm_demand=high_sms,
                duration_weight=high_weight,
                label=f"burst-{index}",
            )
        )
    phases.append(
        ScenarioPhase(
            application=application,
            compute_sm_demand=low_sms,
            duration_weight=low_weight,
            label=f"lull-{bursts}",
        )
    )
    return ScenarioSpec(
        name="bursty",
        phases=tuple(phases),
        description=(
            f"{application} alternating {low_sms}/{high_sms}-SM demand, "
            f"{bursts} bursts"
        ),
    )


def corun_pair(
    application_a: str = "spmv",
    application_b: str = "cfd",
    sms_a: int = 42,
    sms_b: int = 24,
    rounds: int = 2,
) -> ScenarioSpec:
    """Two applications alternating ownership of the GPU (time-sliced co-run).

    Even when the SM split barely moves, every slice boundary changes the
    *owner* of the extended LLC contents, so the dynamic capacity manager
    writes back the outgoing application's dirty blocks and re-warms for the
    incoming one.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    phases: List[ScenarioPhase] = []
    for index in range(rounds):
        phases.append(
            ScenarioPhase(
                application=application_a,
                compute_sm_demand=sms_a,
                label=f"{application_a}-{index}",
            )
        )
        phases.append(
            ScenarioPhase(
                application=application_b,
                compute_sm_demand=sms_b,
                label=f"{application_b}-{index}",
            )
        )
    return ScenarioSpec(
        name="corun_pair",
        phases=tuple(phases),
        description=(
            f"{application_a} ({sms_a} SMs) / {application_b} ({sms_b} SMs) "
            f"time-sliced, {rounds} rounds"
        ),
    )


def corun_overlap(
    application_a: str = "spmv",
    application_b: str = "cfd",
    sms_a: int = 28,
    sms_b: int = 24,
    dip_sms_b: int = 8,
    rounds: int = 2,
    full_weight: float = 1.0,
    dip_weight: float = 1.0,
) -> ScenarioSpec:
    """Two concurrently resident applications; B's demand periodically dips.

    Every phase keeps **both** applications resident — this is the
    overlapping co-run the time-sliced ``corun_pair`` cannot express.  In
    the full phases the pooled idle capacity is small; in each dip phase B
    releases compute SMs, the pool grows, and the arbitration mode decides
    which tenant's extended LLC benefits.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    if not 0 < dip_sms_b < sms_b:
        raise ValueError("dip_sms_b must be positive and below sms_b")
    phases: List[ScenarioPhase] = []
    for index in range(rounds):
        phases.append(
            ScenarioPhase(
                residents=(
                    Residency(application_a, sms_a),
                    Residency(application_b, sms_b),
                ),
                duration_weight=full_weight,
                label=f"full-{index}",
            )
        )
        phases.append(
            ScenarioPhase(
                residents=(
                    Residency(application_a, sms_a),
                    Residency(application_b, dip_sms_b),
                ),
                duration_weight=dip_weight,
                label=f"dip-{index}",
            )
        )
    return ScenarioSpec(
        name="corun_overlap",
        phases=tuple(phases),
        description=(
            f"{application_a} ({sms_a} SMs) and {application_b} "
            f"({sms_b}/{dip_sms_b} SMs) concurrently resident, {rounds} rounds"
        ),
    )


def mixed_tenancy(
    application_a: str = "kmeans",
    application_b: str = "cfd",
    solo_sms: int = 48,
    shared_sms_a: int = 30,
    shared_sms_b: int = 24,
    rounds: int = 1,
    solo_weight: float = 1.0,
    shared_weight: float = 2.0,
) -> ScenarioSpec:
    """Tenants arriving and departing: solo A, A+B overlap, solo B.

    Models a multi-tenant GPU whose population changes: A runs alone, B
    arrives (both shrink to their shared shares and the policies arbitrate
    the pooled idle capacity between them), then A departs and B runs
    alone.  Every tenancy-change boundary moves extended-LLC ownership, so
    per-resident transition accounting is exercised in both directions.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    phases: List[ScenarioPhase] = []
    for index in range(rounds):
        phases.append(
            ScenarioPhase(
                application=application_a,
                compute_sm_demand=solo_sms,
                duration_weight=solo_weight,
                label=f"{application_a}-solo-{index}",
            )
        )
        phases.append(
            ScenarioPhase(
                residents=(
                    Residency(application_a, shared_sms_a),
                    Residency(application_b, shared_sms_b),
                ),
                duration_weight=shared_weight,
                label=f"shared-{index}",
            )
        )
        phases.append(
            ScenarioPhase(
                application=application_b,
                compute_sm_demand=solo_sms,
                duration_weight=solo_weight,
                label=f"{application_b}-solo-{index}",
            )
        )
    return ScenarioSpec(
        name="mixed_tenancy",
        phases=tuple(phases),
        description=(
            f"{application_a} solo, {application_a}+{application_b} overlap, "
            f"{application_b} solo ({rounds} rounds)"
        ),
    )


def ramp(
    application: str = "spmv",
    low_sms: int = 10,
    high_sms: int = 60,
    steps: int = 4,
) -> ScenarioSpec:
    """Demand ramping up to a peak and back down (compressed diurnal curve).

    Produces ``2 * steps - 1`` phases whose demands are evenly spaced between
    ``low_sms`` and ``high_sms``; idle capacity shrinks one notch at a time
    on the way up and returns on the way down, so the dynamic manager pays a
    sequence of small handbacks rather than one large one.
    """
    if steps < 2:
        raise ValueError("steps must be at least 2")
    if low_sms >= high_sms:
        raise ValueError("low_sms must be below high_sms")
    ascend = [
        low_sms + round((high_sms - low_sms) * index / (steps - 1))
        for index in range(steps)
    ]
    demands = ascend + ascend[-2::-1]
    phases = [
        ScenarioPhase(
            application=application,
            compute_sm_demand=demand,
            label=f"ramp-{index}",
        )
        for index, demand in enumerate(demands)
    ]
    return ScenarioSpec(
        name="ramp",
        phases=tuple(phases),
        description=(
            f"{application} demand ramping {low_sms}->{high_sms}->{low_sms} SMs "
            f"in {steps} steps"
        ),
    )


def fleet(
    applications: Sequence[str] = ("spmv", "cfd", "kmeans"),
    num_phases: int = 512,
    seed: int = 1,
    mean_interarrival_phases: float = 8.0,
    mean_residency_phases: float = 24.0,
    max_residents: int = 2,
    demand_levels: Sequence[int] = (8, 16, 24, 32),
    diurnal_period: int = 96,
    total_sm_budget: int = 64,
    phase_weight: float = 1.0,
) -> ScenarioSpec:
    """A seeded fleet timeline: tenant arrivals under a diurnal envelope.

    Tenants (drawn from ``applications``) arrive via an exponential
    inter-arrival process, stay resident for an exponential number of
    phases, and each resident's compute demand follows a sinusoidal diurnal
    envelope *quantized* to ``demand_levels``.  The quantization is what
    keeps the signature space small: a ``num_phases=5000`` timeline has
    thousands of phases but only tens of distinct (residents, demand)
    combinations, which is exactly the shape the engine's phase-signature
    dedup exploits.

    The generator is deterministic for a given argument set — it draws only
    from ``random.Random(seed)`` — so the resulting spec (and therefore its
    ``scenario_key``) is reproducible across processes and platforms.

    Args:
        applications: Pool of tenant applications.
        num_phases: Length of the timeline.
        seed: Seed for the arrival/residency/choice draws.
        mean_interarrival_phases: Mean phases between tenant arrivals.
        mean_residency_phases: Mean phases a tenant stays resident.
        max_residents: Maximum concurrently resident tenants.
        demand_levels: Ascending per-tenant compute-SM demand levels the
            diurnal envelope is quantized to.
        diurnal_period: Phases per diurnal cycle.
        total_sm_budget: Cap on the aggregate compute demand of a phase;
            per-tenant demand is clamped to ``total_sm_budget // residents``
            so every phase fits the GPU regardless of tenancy.
        phase_weight: ``duration_weight`` of every phase (fleet phases are
            fixed-length scheduler intervals).
    """
    if num_phases <= 0:
        raise ValueError("num_phases must be positive")
    if not applications:
        raise ValueError("fleet needs at least one application")
    if max_residents <= 0 or max_residents > len(set(applications)):
        raise ValueError(
            "max_residents must be in 1..len(set(applications)) "
            "(residents of a phase must be distinct applications)"
        )
    if not demand_levels or any(level <= 0 for level in demand_levels):
        raise ValueError("demand_levels must be positive")
    if diurnal_period <= 0:
        raise ValueError("diurnal_period must be positive")
    levels = tuple(sorted(demand_levels))
    if levels[0] > total_sm_budget // max_residents:
        raise ValueError("smallest demand level exceeds the per-resident budget")
    rng = random.Random(seed)
    # Active tenants in admission order: (application, departure phase).
    active: List[Tuple[str, float]] = []

    def admit(now: int) -> None:
        resident_names = {name for name, _ in active}
        candidates = [name for name in applications if name not in resident_names]
        if not candidates:
            return
        application = rng.choice(candidates)
        residency = 1.0 + rng.expovariate(1.0 / mean_residency_phases)
        active.append((application, now + residency))

    next_arrival = 0.0
    phases: List[ScenarioPhase] = []
    for index in range(num_phases):
        active[:] = [entry for entry in active if entry[1] > index]
        while next_arrival <= index:
            if len(active) < max_residents:
                admit(index)
            next_arrival += 1.0 + rng.expovariate(1.0 / mean_interarrival_phases)
        if not active:
            # The GPU is never left empty: force-admit a background tenant.
            admit(index)
        # Diurnal envelope in [0, 1], quantized to the demand levels.
        envelope = 0.5 * (1.0 + math.sin(2.0 * math.pi * index / diurnal_period))
        level = levels[min(int(envelope * len(levels)), len(levels) - 1)]
        demand = min(level, total_sm_budget // len(active))
        phases.append(
            ScenarioPhase(
                residents=tuple(Residency(name, demand) for name, _ in active),
                duration_weight=phase_weight,
            )
        )
    return ScenarioSpec(
        name="fleet",
        phases=tuple(phases),
        description=(
            f"{num_phases}-phase fleet arrival process over "
            f"{'/'.join(applications)} (seed {seed})"
        ),
    )


#: Named scenario factories, for declarative lookup by scripts and CI.
SCENARIO_LIBRARY: Dict[str, Callable[..., ScenarioSpec]] = {
    "steady": steady,
    "bursty": bursty,
    "corun_pair": corun_pair,
    "corun_overlap": corun_overlap,
    "mixed_tenancy": mixed_tenancy,
    "ramp": ramp,
    "diurnal": ramp,
    "fleet": fleet,
}


def get_scenario(name: str, **kwargs) -> ScenarioSpec:
    """Build a library scenario by name, forwarding shape parameters."""
    try:
        factory = SCENARIO_LIBRARY[name]
    except KeyError:
        valid = ", ".join(sorted(SCENARIO_LIBRARY))
        raise KeyError(
            f"unknown scenario {name!r}; expected one of: {valid}"
        ) from None
    return factory(**kwargs)
