"""Capacity policies: how Morpheus splits SMs across a timeline's phases.

The repo's static evaluation searches offline for one best (compute, cache,
gated) split per application and never changes it.  Under a timeline that is
not enough: when a phase's compute demand rises, the scheduler *hands SMs
back* and the extended LLC must shrink — dirty extended-LLC blocks are
written back to DRAM before the SMs can leave cache mode — and when demand
falls, newly borrowed SMs start *cold* and must be re-warmed from DRAM.

Two policies model the ends of that spectrum:

* :class:`FixedSplitPolicy` — one conservative split sized for the
  timeline's worst-case demand, never resized: no resizing costs (only the
  unavoidable flush when the running application changes), but low phases
  waste idle SMs (they are gated instead of caching).
* :class:`DynamicCapacityManager` — tracks each phase's idle capacity,
  deriving phase *i*'s split from phase *i-1*'s and charging
  :class:`TransitionCostModel` costs on every reconfiguration (and on
  application changes, which orphan the extended LLC's contents).

Costs are *analytic* and layered on top of the per-phase replay/score
results: they never change a leaf simulation, so no cached measurement or
stats entry is invalidated by tuning them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import MorpheusConfig
from repro.gpu.config import GPUConfig
from repro.scenarios.spec import Residency, ScenarioPhase, ScenarioSpec
from repro.systems.morpheus_system import MorpheusOperatingPoint
from repro.workloads.applications import ApplicationProfile

KIB = 1024

#: Supported extended-LLC arbitration modes for multi-resident phases.
ARBITRATION_MODES: Tuple[str, ...] = ("proportional", "sensitivity")


def _validate_arbitration(mode: str) -> str:
    """Validate an arbitration-mode name (shared by policies and arbiter)."""
    if mode not in ARBITRATION_MODES:
        valid = ", ".join(ARBITRATION_MODES)
        raise ValueError(f"unknown arbitration mode {mode!r}; expected one of: {valid}")
    return mode


def llc_capacity_sensitivity(profile: ApplicationProfile) -> float:
    """How much one application benefits from extra LLC capacity, per SM.

    The FUSE-style proxy: the fraction of instructions that miss the L1 and
    carry temporal reuse — traffic an extended LLC can actually capture.
    Streaming traffic (no reuse) is capacity-insensitive whatever the cache
    size, so it is excluded.
    """
    return (
        profile.memory_fraction
        * (1.0 - profile.l1_hit_rate)
        * (1.0 - profile.streaming_fraction)
    )


def _dram_pressure(profile: ApplicationProfile) -> float:
    """Per-SM proxy of one application's pressure on the shared DRAM channels."""
    return profile.memory_fraction * (1.0 - profile.l1_hit_rate)


def contended_llc_sensitivity(
    residency: Residency,
    residents: Sequence[Residency],
    profiles: Mapping[str, ApplicationProfile],
) -> float:
    """One resident's LLC capacity sensitivity *under its phase's contention*.

    Co-residents share the DRAM channels, so the value of an extended-LLC
    hit is not fixed: a byte captured on-chip dodges a DRAM system that the
    *other* residents are pressuring too.  The solo
    :func:`llc_capacity_sensitivity` is therefore scaled by the fraction of
    the phase's aggregate memory pressure contributed by the co-residents —
    ``base * (1 + others / total)`` — so grant decisions see the
    interference their placement relieves: capacity flows preferentially to
    tenants whose captured traffic unloads the most-contended channel.

    Continuity: for a single-tenant phase the co-resident pressure is zero
    and the contended sensitivity equals the solo one exactly, so
    single-tenant arbitration (and every pre-co-run timeline) is unchanged.
    """
    base = llc_capacity_sensitivity(profiles[residency.application])
    pressures = {
        entry.application: entry.compute_sm_demand
        * _dram_pressure(profiles[entry.application])
        for entry in residents
    }
    total = sum(pressures.values())
    if total <= 0.0:
        return base
    others = total - pressures[residency.application]
    return base * (1.0 + others / total)


def arbitrate_extended_llc(
    pool_sms: int,
    residents: Sequence[Residency],
    profiles: Mapping[str, ApplicationProfile],
    mode: str = "proportional",
) -> Dict[str, int]:
    """Split ``pool_sms`` cache-mode SMs across a phase's residents.

    Modes:

    * ``"proportional"`` — grants follow each resident's compute-SM share
      (more SMs generate more LLC traffic);
    * ``"sensitivity"`` — grants follow compute share **weighted by**
      :func:`contended_llc_sensitivity` — the solo capacity sensitivity
      scaled up by the co-residents' share of the phase's memory pressure —
      steering pooled capacity toward the residents whose captured traffic
      both converts into hits *and* relieves the contended shared channels.
      On a single-tenant phase this degrades to the solo
      :func:`llc_capacity_sensitivity` exactly.

    Uses largest-remainder apportionment with residency-order tie-breaking,
    so grants are deterministic integers that sum to exactly ``pool_sms``
    (never more than the pooled idle capacity).
    """
    _validate_arbitration(mode)
    if pool_sms < 0:
        raise ValueError("pool_sms must be non-negative")
    if mode == "sensitivity":
        weights = [
            residency.compute_sm_demand
            * contended_llc_sensitivity(residency, residents, profiles)
            for residency in residents
        ]
        if sum(weights) <= 0.0:
            # All residents fully streaming: degrade continuously to the
            # proportional split rather than jumping to equal shares.
            weights = [float(residency.compute_sm_demand) for residency in residents]
    else:
        weights = [float(residency.compute_sm_demand) for residency in residents]
    total = sum(weights)
    quotas = [pool_sms * weight / total for weight in weights]
    grants = [int(quota) for quota in quotas]
    leftover = pool_sms - sum(grants)
    # Hand the leftover SMs to the largest fractional parts, residency order
    # breaking ties (sort is stable, so equal remainders keep their order).
    by_remainder = sorted(
        range(len(residents)), key=lambda i: quotas[i] - grants[i], reverse=True
    )
    for index in by_remainder[:leftover]:
        grants[index] += 1
    return {
        residency.application: grant
        for residency, grant in zip(residents, grants)
    }


@dataclass(frozen=True)
class TransitionCost:
    """Cost of reconfiguring the extended LLC at a phase boundary.

    All cycle counts are core cycles charged *between* phases (the GPU is
    reconfiguring, not retiring application instructions).

    Attributes:
        flush_cycles: Cycles spent writing the reclaimed/orphaned extended
            LLC blocks' dirty data back to DRAM.
        warmup_cycles: Cycles spent refilling grown (or newly owned) extended
            LLC capacity from DRAM.
        flushed_dirty_bytes: Dirty extended-LLC bytes written back to DRAM.
        warmup_fill_bytes: Bytes streamed from DRAM to re-warm capacity.
        reclaimed_sms: Cache-mode SMs handed back to compute (or orphaned by
            an application change).
        added_sms: SMs newly entering cache mode (or re-warmed after an
            application change).
    """

    flush_cycles: float = 0.0
    warmup_cycles: float = 0.0
    flushed_dirty_bytes: float = 0.0
    warmup_fill_bytes: float = 0.0
    reclaimed_sms: int = 0
    added_sms: int = 0

    @property
    def total_cycles(self) -> float:
        """Total reconfiguration stall in core cycles."""
        return self.flush_cycles + self.warmup_cycles

    @property
    def dram_bytes(self) -> float:
        """Total DRAM traffic caused by the transition."""
        return self.flushed_dirty_bytes + self.warmup_fill_bytes

    @property
    def is_zero(self) -> bool:
        """True when the boundary required no reconfiguration work."""
        return self.total_cycles == 0.0 and self.dram_bytes == 0.0


#: A no-op transition (phase boundaries that keep the split and owner).
NO_TRANSITION = TransitionCost()


@dataclass(frozen=True)
class TransitionCostModel:
    """Analytic model of extended-LLC flush and warm-up costs.

    Attributes:
        extended_bytes_per_cache_sm: Extended-LLC capacity contributed by one
            cache-mode SM.  Defaults to the paper's combined RF+L1
            configuration (328 KiB, §5).
        dirty_fraction: Fraction of flushed capacity that is dirty and must
            be written back.  ``None`` uses the outgoing application's
            ``write_fraction`` (its steady-state mix of writes).
        warmup_fill_fraction: Fraction of grown capacity that is re-fetched
            from DRAM before the extended LLC reaches steady state.
        flush_bandwidth_gbps_per_sm: Rate at which one cache-mode SM can
            drain its stores during a flush, in **gigabytes** per second
            (the repo-wide ``*_gbps`` convention, e.g.
            ``ExtendedLLCTiming.per_sm_extended_bandwidth_gbps``); defaults
            to the extended LLC kernel's per-SM bandwidth (34 GB/s, §5).
    """

    extended_bytes_per_cache_sm: int = 328 * KIB
    dirty_fraction: Optional[float] = None
    warmup_fill_fraction: float = 0.85
    flush_bandwidth_gbps_per_sm: float = 34.0

    def __post_init__(self) -> None:
        if self.extended_bytes_per_cache_sm <= 0:
            raise ValueError("extended_bytes_per_cache_sm must be positive")
        if self.dirty_fraction is not None and not 0.0 <= self.dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be in [0, 1]")
        if not 0.0 <= self.warmup_fill_fraction <= 1.0:
            raise ValueError("warmup_fill_fraction must be in [0, 1]")
        if self.flush_bandwidth_gbps_per_sm <= 0:
            raise ValueError("flush_bandwidth_gbps_per_sm must be positive")

    # -- cost primitives ---------------------------------------------------------------

    def _dram_bytes_per_cycle(self, gpu: GPUConfig) -> float:
        return gpu.dram.bytes_per_cycle_per_channel * gpu.dram.num_channels

    def flush_cost(
        self,
        gpu: GPUConfig,
        reclaimed_sms: int,
        outgoing_profile: ApplicationProfile,
    ) -> TransitionCost:
        """Cost of draining ``reclaimed_sms`` cache-mode SMs' extended LLC.

        Clean blocks are dropped for free; dirty blocks are written back to
        DRAM, limited by the slower of the SMs' aggregate drain rate and the
        DRAM write bandwidth.
        """
        if reclaimed_sms <= 0:
            return NO_TRANSITION
        capacity = float(reclaimed_sms * self.extended_bytes_per_cache_sm)
        dirty_fraction = (
            outgoing_profile.write_fraction
            if self.dirty_fraction is None
            else self.dirty_fraction
        )
        dirty = capacity * dirty_fraction
        drain_bpc = self.flush_bandwidth_gbps_per_sm / gpu.core_clock_ghz * reclaimed_sms
        bandwidth = min(drain_bpc, self._dram_bytes_per_cycle(gpu))
        return TransitionCost(
            flush_cycles=dirty / bandwidth if dirty else 0.0,
            flushed_dirty_bytes=dirty,
            reclaimed_sms=reclaimed_sms,
        )

    def warmup_cost(self, gpu: GPUConfig, added_sms: int) -> TransitionCost:
        """Cost of warming ``added_sms`` freshly borrowed cache-mode SMs.

        The new capacity starts cold; its working set streams in from DRAM.
        Charging the fill serially (instead of folding it into the phase's
        miss rate) is a deliberate pessimistic bound — the per-phase replay
        measures steady state, so the fill must be accounted somewhere.
        """
        if added_sms <= 0:
            return NO_TRANSITION
        fill = (
            float(added_sms * self.extended_bytes_per_cache_sm)
            * self.warmup_fill_fraction
        )
        return TransitionCost(
            warmup_cycles=fill / self._dram_bytes_per_cycle(gpu) if fill else 0.0,
            warmup_fill_bytes=fill,
            added_sms=added_sms,
        )

    def transition(
        self,
        gpu: GPUConfig,
        previous_cache_sms: int,
        new_cache_sms: int,
        outgoing_profile: ApplicationProfile,
        application_changed: bool,
    ) -> TransitionCost:
        """Combined cost of moving from one phase's split/owner to the next.

        A pure resize flushes only the reclaimed SMs and warms only the
        added ones.  An application change orphans *all* retained contents:
        the whole outgoing allocation is flushed and the whole incoming one
        re-warmed, whatever the resize.
        """
        if application_changed:
            flush_sms = previous_cache_sms
            warm_sms = new_cache_sms
        else:
            flush_sms = max(0, previous_cache_sms - new_cache_sms)
            warm_sms = max(0, new_cache_sms - previous_cache_sms)
        flush = self.flush_cost(gpu, flush_sms, outgoing_profile)
        warm = self.warmup_cost(gpu, warm_sms)
        if flush.is_zero and warm.is_zero:
            return NO_TRANSITION
        return TransitionCost(
            flush_cycles=flush.flush_cycles,
            warmup_cycles=warm.warmup_cycles,
            flushed_dirty_bytes=flush.flushed_dirty_bytes,
            warmup_fill_bytes=warm.warmup_fill_bytes,
            reclaimed_sms=flush.reclaimed_sms,
            added_sms=warm.added_sms,
        )


def combine_costs(costs: Sequence[TransitionCost]) -> TransitionCost:
    """Sum several transition costs into one phase-boundary charge.

    Cycles are summed (flushes and warm-ups of different residents share the
    DRAM channels, so charging them serially is the same deliberately
    pessimistic bound :meth:`TransitionCostModel.warmup_cost` documents).
    """
    costs = [cost for cost in costs if not cost.is_zero]
    if not costs:
        return NO_TRANSITION
    return TransitionCost(
        flush_cycles=sum(cost.flush_cycles for cost in costs),
        warmup_cycles=sum(cost.warmup_cycles for cost in costs),
        flushed_dirty_bytes=sum(cost.flushed_dirty_bytes for cost in costs),
        warmup_fill_bytes=sum(cost.warmup_fill_bytes for cost in costs),
        reclaimed_sms=sum(cost.reclaimed_sms for cost in costs),
        added_sms=sum(cost.added_sms for cost in costs),
    )


@dataclass(frozen=True)
class ResidentGrant:
    """One resident's share of a phase: compute SMs plus extended-LLC SMs."""

    application: str
    compute_sms: int
    cache_sms: int

    def __post_init__(self) -> None:
        if self.compute_sms <= 0:
            raise ValueError("compute_sms must be positive")
        if self.cache_sms < 0:
            raise ValueError("cache_sms must be non-negative")


@dataclass(frozen=True)
class PhaseDecision:
    """One phase's chosen SM split plus the cost of transitioning into it.

    ``grants`` carries the per-resident breakdown of the split: each
    resident's compute-SM share and its arbitrated slice of the pooled
    extended-LLC capacity.  Policies that predate co-run support may leave
    it empty for single-tenant phases — the engine synthesizes the obvious
    one-entry breakdown — but a co-run phase requires explicit grants.
    """

    split: MorpheusOperatingPoint
    transition: TransitionCost = NO_TRANSITION
    grants: Tuple[ResidentGrant, ...] = ()


def max_cache_mode_sms(gpu: GPUConfig, morpheus: MorpheusConfig) -> int:
    """The §4.1.3 cap on cache-mode SMs (at most 75 % of the GPU)."""
    return int(gpu.num_sms * morpheus.max_cache_mode_fraction)


def grant_transition(
    model: TransitionCostModel,
    gpu: GPUConfig,
    previous: Mapping[str, int],
    current: Mapping[str, int],
    profiles: Mapping[str, ApplicationProfile],
) -> TransitionCost:
    """Per-resident transition cost between two phases' extended-LLC grants.

    ``previous``/``current`` map each resident application to its granted
    cache-mode SMs.  A resident whose grant shrank — or who departed, which
    orphans its contents outright — flushes the lost SMs' dirty data with
    *its own* write mix; a resident whose grant grew (or who just arrived)
    warms the gained capacity from DRAM.  For single-tenant timelines this
    reproduces the classic accounting exactly: a pure resize flushes/warms
    the delta, and an application change flushes the whole outgoing
    allocation and re-warms the whole incoming one.
    """
    costs: List[TransitionCost] = []
    for application, previous_sms in previous.items():
        shrink = previous_sms - current.get(application, 0)
        if shrink > 0:
            costs.append(model.flush_cost(gpu, shrink, profiles[application]))
    warm_sms = sum(
        max(0, granted - previous.get(application, 0))
        for application, granted in current.items()
    )
    costs.append(model.warmup_cost(gpu, warm_sms))
    return combine_costs(costs)


def _phase_grants(
    phase: ScenarioPhase, shares: Mapping[str, int]
) -> Tuple[ResidentGrant, ...]:
    """Materialize one phase's residency list into grants."""
    return tuple(
        ResidentGrant(
            application=residency.application,
            compute_sms=residency.compute_sm_demand,
            cache_sms=shares[residency.application],
        )
        for residency in phase.residents
    )


class CapacityPolicy(abc.ABC):
    """Chooses a (compute, cache, gated) split for every phase of a timeline."""

    name: str = "policy"

    @abc.abstractmethod
    def plan(
        self,
        scenario: ScenarioSpec,
        gpu: GPUConfig,
        morpheus: MorpheusConfig,
        profiles: Mapping[str, ApplicationProfile],
        transition_model: TransitionCostModel,
    ) -> List[PhaseDecision]:
        """One :class:`PhaseDecision` per scenario phase, in timeline order."""

    def _split(
        self, gpu: GPUConfig, compute_sms: int, cache_sms: int
    ) -> MorpheusOperatingPoint:
        if compute_sms + cache_sms > gpu.num_sms:
            raise ValueError(
                f"split exceeds the GPU ({compute_sms} + {cache_sms} > {gpu.num_sms})"
            )
        return MorpheusOperatingPoint(
            num_compute_sms=compute_sms,
            num_cache_sms=cache_sms,
            num_gated_sms=gpu.num_sms - compute_sms - cache_sms,
        )


class FixedSplitPolicy(CapacityPolicy):
    """One static split sized for the timeline's worst-case compute demand.

    The cache allocation is the largest that fits under *every* phase's
    demand (and the cache-mode cap), so the split never changes and resizing
    costs are never paid — the scenario generalization of the repo's offline
    per-application operating point.  The price is wasted idle capacity:
    low-demand phases gate SMs the dynamic manager would borrow.

    Application changes still cost: the outgoing application's extended-LLC
    contents are physically orphaned whatever the policy, so the static
    split pays the same flush + re-warm at an ownership change as the
    dynamic manager would for an unchanged allocation — keeping
    static-vs-dynamic comparisons about *capacity adaptation*, not about
    asymmetric accounting.

    Under a co-run phase the static pool is arbitrated across the residents
    (see :func:`arbitrate_extended_llc`); grant ownership changes between
    phases — a resident departing, arriving or seeing its slice move — pay
    the same per-resident flush/warm-up as they would under the dynamic
    manager.

    Args:
        arbitration: How the pool is split across a co-run phase's
            residents (``"proportional"`` or ``"sensitivity"``).
    """

    name = "static"

    def __init__(self, arbitration: str = "proportional") -> None:
        self.arbitration = _validate_arbitration(arbitration)

    def plan(
        self,
        scenario: ScenarioSpec,
        gpu: GPUConfig,
        morpheus: MorpheusConfig,
        profiles: Mapping[str, ApplicationProfile],
        transition_model: TransitionCostModel,
    ) -> List[PhaseDecision]:
        worst_idle = gpu.num_sms - scenario.max_compute_sm_demand
        pool = max(0, min(worst_idle, max_cache_mode_sms(gpu, morpheus)))
        decisions: List[PhaseDecision] = []
        previous_shares: Dict[str, int] = {}
        for index, phase in enumerate(scenario.phases):
            shares = arbitrate_extended_llc(
                pool, phase.residents, profiles, self.arbitration
            )
            if index == 0:
                transition = NO_TRANSITION
            else:
                transition = grant_transition(
                    transition_model, gpu, previous_shares, shares, profiles
                )
            decisions.append(
                PhaseDecision(
                    split=self._split(gpu, phase.total_compute_sm_demand, pool),
                    transition=transition,
                    grants=_phase_grants(phase, shares),
                )
            )
            previous_shares = shares
        return decisions


class DynamicCapacityManager(CapacityPolicy):
    """Tracks idle capacity phase by phase, paying for every reconfiguration.

    Each phase's split is derived from the previous phase's: the manager
    targets the phase's full idle capacity (up to the cache-mode cap), hands
    SMs back when compute demand rises (charging the extended-LLC flush),
    re-borrows them when demand falls (charging the warm-up), and flushes +
    re-warms everything when the running application changes.  Entering the
    first phase is free — the initial split is configured before the
    timeline starts, like the static policies' offline setup.

    Under a co-run phase the pooled allocation is arbitrated across the
    residents (see :func:`arbitrate_extended_llc`) and transitions are
    accounted **per resident**: a resident whose grant shrinks (or who
    departs) flushes exactly the lost SMs once with its own write mix, a
    resident whose grant grows (or who arrives) warms the gained capacity.

    Args:
        hysteresis_sms: Pooled-allocation changes of at most this many SMs
            are skipped (the previous pool is kept) when the previous
            allocation still fits the new phase's idle capacity — damping
            reactions to small demand wiggles that would not pay for their
            own transition cost.
        arbitration: How the pool is split across a co-run phase's
            residents (``"proportional"`` or ``"sensitivity"``).
        pool_cap_sms: Optional cap on the pooled cache-mode allocation,
            *below* the architectural §4.1.3 cap — the tunable "split
            point" a design-space search moves.  ``None`` (the default)
            targets the full idle capacity, the original behaviour.
    """

    name = "dynamic"

    def __init__(
        self,
        hysteresis_sms: int = 0,
        arbitration: str = "proportional",
        pool_cap_sms: Optional[int] = None,
    ) -> None:
        if hysteresis_sms < 0:
            raise ValueError("hysteresis_sms must be non-negative")
        if pool_cap_sms is not None and pool_cap_sms < 0:
            raise ValueError("pool_cap_sms must be non-negative")
        self.hysteresis_sms = hysteresis_sms
        self.arbitration = _validate_arbitration(arbitration)
        self.pool_cap_sms = pool_cap_sms

    def plan(
        self,
        scenario: ScenarioSpec,
        gpu: GPUConfig,
        morpheus: MorpheusConfig,
        profiles: Mapping[str, ApplicationProfile],
        transition_model: TransitionCostModel,
    ) -> List[PhaseDecision]:
        cap = max_cache_mode_sms(gpu, morpheus)
        if self.pool_cap_sms is not None:
            cap = min(cap, self.pool_cap_sms)
        decisions: List[PhaseDecision] = []
        previous_pool = 0
        previous_shares: Dict[str, int] = {}
        for index, phase in enumerate(scenario.phases):
            idle = gpu.num_sms - phase.total_compute_sm_demand
            target = max(0, min(idle, cap))
            pool = target
            if (
                previous_pool <= idle
                and abs(target - previous_pool) <= self.hysteresis_sms
            ):
                pool = previous_pool
            shares = arbitrate_extended_llc(
                pool, phase.residents, profiles, self.arbitration
            )
            if (
                pool == previous_pool
                and set(shares) == set(previous_shares)
                and all(
                    abs(shares[name] - previous_shares[name]) <= self.hysteresis_sms
                    for name in shares
                )
            ):
                # Damp per-resident wiggles too: when the pool is unchanged,
                # the residents are the same and every slice moved by at
                # most the hysteresis, keep the previous slices — otherwise
                # a small demand redistribution inside a co-run phase would
                # pay the very transition costs hysteresis exists to skip.
                # (With hysteresis 0 this only keeps slices that are
                # already identical.)
                shares = dict(previous_shares)
            if index == 0:
                transition = NO_TRANSITION
            else:
                transition = grant_transition(
                    transition_model, gpu, previous_shares, shares, profiles
                )
            decisions.append(
                PhaseDecision(
                    split=self._split(gpu, phase.total_compute_sm_demand, pool),
                    transition=transition,
                    grants=_phase_grants(phase, shares),
                )
            )
            previous_pool = pool
            previous_shares = shares
        return decisions
