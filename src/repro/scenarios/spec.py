"""Declarative multi-phase workload timelines.

A :class:`ScenarioSpec` describes a **timeline**: an ordered sequence of
:class:`ScenarioPhase` entries, each naming the application that owns the
GPU during that phase, how many SMs the scheduler grants it for compute
(``compute_sm_demand`` — the rest of the GPU is idle from the application's
point of view), and a relative ``duration_weight``.  Phases are what Morpheus
reacts to: when the demand drops, idle SMs can be borrowed for the extended
LLC; when it rises, the scheduler hands capacity back and the extended LLC
must shrink.

Scenario keys layer on top of the two-phase runner contract: every phase is
lowered to an existing :class:`~repro.runner.spec.RunSpec`, so the leaf
results are addressed by the ordinary replay/score keys — a scenario adds no
third cache tier.  :meth:`ScenarioSpec.scenario_key` exists so *scenario
level* artifacts (aggregated timelines, reports) can be content-addressed
too; it embeds :data:`SCENARIO_SCHEMA_VERSION` **and** both leaf schema
versions, because a replay- or score-behaviour change invalidates any
aggregate derived from the leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.runner.spec import (
    REPLAY_SCHEMA_VERSION,
    SCORE_SCHEMA_VERSION,
    content_hash,
)

#: Version of the scenario-level aggregation schema.  Bump whenever the
#: phase-lowering semantics, the transition-cost model layout or the
#: scenario aggregation (instruction accounting, cycle totals) change —
#: anything that would make a previously stored scenario-level aggregate
#: stale even though the leaf replay/score entries are still valid.
SCENARIO_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ScenarioPhase:
    """One phase of a workload timeline.

    Attributes:
        application: Name of the application running during the phase
            (see :data:`repro.workloads.applications.APPLICATIONS`).
        compute_sm_demand: SMs the scheduler grants the application for
            compute during the phase; the remaining SMs are idle and may be
            borrowed by Morpheus for the extended LLC.
        duration_weight: Relative length of the phase.  The engine converts
            weights to instructions via
            :attr:`ScenarioSpec.instructions_per_weight`.
        label: Optional human-readable tag shown in per-phase tables.
    """

    application: str
    compute_sm_demand: int
    duration_weight: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if not self.application:
            raise ValueError("a phase needs an application name")
        if self.compute_sm_demand <= 0:
            raise ValueError("compute_sm_demand must be positive")
        if self.duration_weight <= 0:
            raise ValueError("duration_weight must be positive")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named timeline of phases.

    Attributes:
        name: Scenario name (library scenarios use their factory name).
        phases: The ordered phases of the timeline.
        instructions_per_weight: Instructions executed per unit of
            ``duration_weight``.  This sets the absolute timeline length, and
            therefore how much fixed-cost reconfiguration (flush/warm-up)
            matters relative to useful work: shorter phases make transitions
            relatively more expensive.
        description: Optional human-readable summary.
    """

    name: str
    phases: Tuple[ScenarioPhase, ...]
    instructions_per_weight: float = 2.0e8
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.name:
            raise ValueError("a scenario needs a name")
        if not self.phases:
            raise ValueError("a scenario needs at least one phase")
        if self.instructions_per_weight <= 0:
            raise ValueError("instructions_per_weight must be positive")

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def total_weight(self) -> float:
        """Sum of the phases' duration weights."""
        return sum(phase.duration_weight for phase in self.phases)

    @property
    def applications(self) -> Tuple[str, ...]:
        """Distinct applications appearing in the timeline, in first-seen order."""
        seen = []
        for phase in self.phases:
            if phase.application not in seen:
                seen.append(phase.application)
        return tuple(seen)

    @property
    def max_compute_sm_demand(self) -> int:
        """The largest compute demand of any phase (sizes worst-case splits)."""
        return max(phase.compute_sm_demand for phase in self.phases)

    def scenario_key(self) -> str:
        """Content-hash key of the timeline for scenario-level artifacts.

        Layers on the runner's schema contract: the key embeds
        :data:`SCENARIO_SCHEMA_VERSION` plus both leaf schema versions, so a
        replay- or score-behaviour bump invalidates scenario-level aggregates
        exactly as it invalidates the leaf cache entries they derive from.
        """
        return content_hash(
            {
                "schema": (
                    REPLAY_SCHEMA_VERSION,
                    SCORE_SCHEMA_VERSION,
                    SCENARIO_SCHEMA_VERSION,
                ),
                "scenario": self,
            }
        )
