"""Declarative multi-phase workload timelines.

A :class:`ScenarioSpec` describes a **timeline**: an ordered sequence of
:class:`ScenarioPhase` entries, each carrying the applications *resident* on
the GPU during that phase, how many SMs the scheduler grants each of them
for compute, and a relative ``duration_weight``.  Phases are what Morpheus
reacts to: when the aggregate demand drops, idle SMs can be borrowed for the
extended LLC; when it rises, the scheduler hands capacity back and the
extended LLC must shrink.

A phase with one resident is the classic single-tenant case and keeps the
original ``ScenarioPhase(application=..., compute_sm_demand=...)``
constructor.  A phase may instead carry several :class:`Residency` entries —
a true multi-tenant **co-run**: every resident computes concurrently on its
own SM share while the capacity policies arbitrate the pooled idle-SM
extended-LLC capacity across them.

Scenario keys layer on top of the two-phase runner contract: every phase is
lowered to an existing :class:`~repro.runner.spec.RunSpec`, so the leaf
results are addressed by the ordinary replay/score keys — a scenario adds no
third cache tier.  :meth:`ScenarioSpec.scenario_key` exists so *scenario
level* artifacts (aggregated timelines, reports) can be content-addressed
too; it embeds :data:`SCENARIO_SCHEMA_VERSION` **and** both leaf schema
versions, because a replay- or score-behaviour change invalidates any
aggregate derived from the leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.runner.spec import (
    REPLAY_SCHEMA_VERSION,
    SCORE_SCHEMA_VERSION,
    content_hash,
)

#: Version of the scenario-level aggregation schema.  Bump whenever the
#: phase-lowering semantics, the transition-cost model layout or the
#: scenario aggregation (instruction accounting, cycle totals) change —
#: anything that would make a previously stored scenario-level aggregate
#: stale even though the leaf replay/score entries are still valid.
#: Version 2: phases may carry multiple concurrent residents (co-run),
#: decisions carry per-resident extended-LLC grants, and phase cycles are
#: derived from the residents' aggregate throughput.
#: Version 3: co-run residents are scored under solved shared-bandwidth
#: :class:`~repro.sim.performance_model.ResourceEnvelope` shares (the
#: contention fixed point), executions carry the contended/uncontended
#: pair, and scenario aggregates are persisted under
#: :meth:`~repro.scenarios.engine.ScenarioEngine.run_key`.
#: Version 4: persisted scenario aggregates use the signature-keyed layout
#: (distinct phase signatures plus per-phase signature/transition ids)
#: written by the deduplicating engine; the legacy per-phase layout is still
#: readable, but the layout change invalidates prior scenario-tier entries.
#: Dedup itself is execution-plan-only — leaf replay/score keys and the
#: computed per-phase results are unchanged.
SCENARIO_SCHEMA_VERSION = 4


@dataclass(frozen=True)
class Residency:
    """One application resident on the GPU during a phase.

    Attributes:
        application: Name of the resident application
            (see :data:`repro.workloads.applications.APPLICATIONS`).
        compute_sm_demand: SMs the scheduler grants this resident for
            compute during the phase.
    """

    application: str
    compute_sm_demand: int

    def __post_init__(self) -> None:
        if not self.application:
            raise ValueError("a residency needs an application name")
        if self.compute_sm_demand <= 0:
            raise ValueError("compute_sm_demand must be positive")


@dataclass(frozen=True)
class ScenarioPhase:
    """One phase of a workload timeline.

    Single-tenant phases use the original ``(application,
    compute_sm_demand)`` constructor; multi-tenant co-run phases pass a
    ``residents`` tuple instead (exactly one of the two forms).  Either way
    ``residents`` is the canonical storage — for a single-tenant phase the
    ``application``/``compute_sm_demand`` fields and the one-entry
    ``residents`` tuple agree, and for a co-run phase the two legacy fields
    are ``None`` (use :attr:`total_compute_sm_demand` and
    :attr:`applications`).

    Attributes:
        application: Name of the application running during a single-tenant
            phase; ``None`` for a co-run phase.
        compute_sm_demand: SMs the scheduler grants the single resident for
            compute; ``None`` for a co-run phase.  The GPU's remaining SMs
            are idle and may be borrowed by Morpheus for the extended LLC.
        duration_weight: Relative length of the phase.  The engine converts
            weights to instructions via
            :attr:`ScenarioSpec.instructions_per_weight`.
        label: Optional human-readable tag shown in per-phase tables.
        residents: The applications resident during the phase with their
            compute-SM shares (one entry per application).
    """

    application: Optional[str] = None
    compute_sm_demand: Optional[int] = None
    duration_weight: float = 1.0
    label: str = ""
    residents: Tuple[Residency, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_weight <= 0:
            raise ValueError("duration_weight must be positive")
        residents = tuple(self.residents)
        if residents:
            if self.application is not None or self.compute_sm_demand is not None:
                raise ValueError(
                    "pass either residents or application/compute_sm_demand, not both"
                )
            names = [residency.application for residency in residents]
            if len(set(names)) != len(names):
                raise ValueError(
                    f"a phase's residents must be distinct applications, got {names}"
                )
        else:
            if not self.application:
                raise ValueError("a phase needs an application name")
            if self.compute_sm_demand is None or self.compute_sm_demand <= 0:
                raise ValueError("compute_sm_demand must be positive")
            residents = (Residency(self.application, self.compute_sm_demand),)
        object.__setattr__(self, "residents", residents)
        if len(residents) == 1:
            # Canonicalize: a phase built from a one-entry residents tuple is
            # identical (and hashes identically) to the legacy constructor.
            object.__setattr__(self, "application", residents[0].application)
            object.__setattr__(
                self, "compute_sm_demand", residents[0].compute_sm_demand
            )
        else:
            object.__setattr__(self, "application", None)
            object.__setattr__(self, "compute_sm_demand", None)

    @property
    def is_corun(self) -> bool:
        """True when several applications are resident concurrently."""
        return len(self.residents) > 1

    @property
    def applications(self) -> Tuple[str, ...]:
        """The resident applications, in residency order."""
        return tuple(residency.application for residency in self.residents)

    @property
    def total_compute_sm_demand(self) -> int:
        """Aggregate compute-SM demand of every resident."""
        return sum(residency.compute_sm_demand for residency in self.residents)

    def describe(self) -> str:
        """Compact human-readable tag for error messages and tables."""
        if self.label:
            return self.label
        return "+".join(self.applications)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named timeline of phases.

    Attributes:
        name: Scenario name (library scenarios use their factory name).
        phases: The ordered phases of the timeline.
        instructions_per_weight: Instructions executed per unit of
            ``duration_weight``.  This sets the absolute timeline length, and
            therefore how much fixed-cost reconfiguration (flush/warm-up)
            matters relative to useful work: shorter phases make transitions
            relatively more expensive.
        description: Optional human-readable summary.
    """

    name: str
    phases: Tuple[ScenarioPhase, ...]
    instructions_per_weight: float = 2.0e8
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.name:
            raise ValueError("a scenario needs a name")
        if not self.phases:
            raise ValueError("a scenario needs at least one phase")
        if self.instructions_per_weight <= 0:
            raise ValueError("instructions_per_weight must be positive")

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def total_weight(self) -> float:
        """Sum of the phases' duration weights."""
        return sum(phase.duration_weight for phase in self.phases)

    @property
    def applications(self) -> Tuple[str, ...]:
        """Distinct applications appearing in the timeline, in first-seen order."""
        seen = []
        for phase in self.phases:
            for name in phase.applications:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    @property
    def max_compute_sm_demand(self) -> int:
        """The largest aggregate compute demand of any phase (sizes worst-case splits)."""
        return max(phase.total_compute_sm_demand for phase in self.phases)

    @property
    def has_corun_phases(self) -> bool:
        """True when any phase carries several concurrent residents."""
        return any(phase.is_corun for phase in self.phases)

    def scenario_key(self) -> str:
        """Content-hash key of the timeline for scenario-level artifacts.

        Layers on the runner's schema contract: the key embeds
        :data:`SCENARIO_SCHEMA_VERSION` plus both leaf schema versions, so a
        replay- or score-behaviour bump invalidates scenario-level aggregates
        exactly as it invalidates the leaf cache entries they derive from.

        Canonicalizing a fleet-scale timeline walks every phase, so the key
        is computed once and memoized on this (frozen, immutable) instance —
        a warm re-run of a thousand-phase spec must not pay the O(phases)
        hash again.
        """
        versions = (
            REPLAY_SCHEMA_VERSION,
            SCORE_SCHEMA_VERSION,
            SCENARIO_SCHEMA_VERSION,
        )
        cached = self.__dict__.get("_scenario_key_memo")
        if cached is not None and cached[0] == versions:
            return cached[1]
        key = content_hash({"schema": versions, "scenario": self})
        object.__setattr__(self, "_scenario_key_memo", (versions, key))
        return key
