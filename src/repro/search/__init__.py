"""Design-space search over the Morpheus configuration knobs.

ArchGym-style agent loops (ROADMAP open item 1): a declarative
:class:`~repro.search.space.SearchSpace` of tunable axes, a
:class:`~repro.search.problem.SearchProblem` that scores candidates through
the two-phase cache (warm searches are score-tier-only — zero replay
misses), seeded deterministic agents behind one
:class:`~repro.search.agents.Agent` propose/observe interface, and a
telemetry-logged :func:`~repro.search.loop.run_search` driver.
"""

from .agents import AGENT_TYPES, Agent, GeneticAgent, RandomWalkAgent, make_agent
from .loop import SearchResult, SearchStep, run_search
from .problem import (
    Evaluation,
    EnvelopeSearchProblem,
    ScenarioSearchProblem,
    SearchProblem,
)
from .space import (
    Axis,
    CategoricalAxis,
    Candidate,
    FloatAxis,
    IntAxis,
    SearchSpace,
    envelope_space,
    morpheus_policy_space,
)

__all__ = [
    "AGENT_TYPES",
    "Agent",
    "Axis",
    "CategoricalAxis",
    "Candidate",
    "Evaluation",
    "EnvelopeSearchProblem",
    "FloatAxis",
    "GeneticAgent",
    "IntAxis",
    "RandomWalkAgent",
    "ScenarioSearchProblem",
    "SearchProblem",
    "SearchResult",
    "SearchSpace",
    "SearchStep",
    "make_agent",
    "morpheus_policy_space",
    "envelope_space",
    "run_search",
]
