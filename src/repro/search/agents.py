"""Search agents: propose/observe strategies over a :class:`SearchSpace`.

Every agent speaks one two-call protocol, the ArchGym-style agent loop:

1. ``candidate = agent.propose()`` — the next configuration to evaluate;
2. ``agent.observe(candidate, fitness)`` — the measured fitness, fed back.

The calls strictly alternate (enforced, so a buggy loop fails loudly
instead of silently corrupting an agent's state), and all randomness comes
from a ``random.Random(seed)`` owned by the agent — the same seed over the
same problem replays the exact same trajectory, which is what makes warm
re-runs of a search hit the scenario cache on every step.

Two built-in strategies:

* :class:`RandomWalkAgent` — an explore/exploit hill climber: mutate the
  best candidate seen so far, occasionally restarting from a fresh uniform
  sample.
* :class:`GeneticAgent` — a steady generational GA: tournament parent
  selection, uniform crossover, per-axis mutation, elitism.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Tuple

from .space import Candidate, FrozenCandidate, SearchSpace


class Agent(abc.ABC):
    """One search strategy; subclasses implement ``_propose``/``_observe``."""

    name: str = "agent"

    def __init__(self, space: SearchSpace, seed: int = 0) -> None:
        self.space = space
        self.seed = seed
        self.rng = random.Random(seed)
        self.steps = 0
        self.best_candidate: Optional[Candidate] = None
        self.best_fitness = float("-inf")
        self._pending: Optional[FrozenCandidate] = None

    # -- the propose/observe protocol --------------------------------------------------

    def propose(self) -> Candidate:
        """The next candidate to evaluate (must be followed by ``observe``)."""
        if self._pending is not None:
            raise RuntimeError(
                f"{self.name}: propose() called with an unobserved proposal pending"
            )
        candidate = self._propose()
        self.space.validate(candidate)
        self._pending = self.space.freeze(candidate)
        return dict(candidate)

    def observe(self, candidate: Candidate, fitness: float) -> None:
        """Feed back the fitness of the candidate ``propose`` just returned."""
        if self._pending is None:
            raise RuntimeError(f"{self.name}: observe() called with nothing proposed")
        if self.space.freeze(candidate) != self._pending:
            raise RuntimeError(
                f"{self.name}: observe() got a candidate that was not the "
                "pending proposal"
            )
        self._pending = None
        self.steps += 1
        # Strictly-greater keeps the *first* best under ties, so trajectories
        # (and the reported best config) are deterministic.
        if fitness > self.best_fitness:
            self.best_fitness = fitness
            self.best_candidate = dict(candidate)
        self._observe(dict(candidate), fitness)

    # -- strategy hooks ----------------------------------------------------------------

    @abc.abstractmethod
    def _propose(self) -> Candidate:
        """The strategy's next candidate."""

    def _observe(self, candidate: Candidate, fitness: float) -> None:
        """Strategy-specific bookkeeping (default: none)."""


class RandomWalkAgent(Agent):
    """Explore/exploit hill climber over the space's mutation kernel.

    Proposes a mutation of the best candidate seen so far; with probability
    ``explore_probability`` (and always on the first step) it instead
    samples a fresh uniform candidate, so the walk cannot pin itself to the
    first local optimum it finds.
    """

    name = "random_walk"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        explore_probability: float = 0.25,
    ) -> None:
        super().__init__(space, seed)
        if not 0.0 <= explore_probability <= 1.0:
            raise ValueError("explore_probability must be in [0, 1]")
        self.explore_probability = explore_probability

    def _propose(self) -> Candidate:
        if (
            self.best_candidate is None
            or self.rng.random() < self.explore_probability
        ):
            return self.space.sample(self.rng)
        return self.space.mutate(self.best_candidate, self.rng)


class GeneticAgent(Agent):
    """A small generational GA: tournaments, uniform crossover, elitism.

    The first ``population_size`` proposals are uniform samples (generation
    zero).  Once a full generation is observed, the next one is bred:
    the ``elite_count`` fittest survive unchanged, and every remaining slot
    is filled by crossing two tournament-selected parents and mutating the
    child with probability ``mutation_probability``.  Ties break toward the
    earlier individual (stable sort), keeping breeding deterministic.
    """

    name = "genetic"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        population_size: int = 8,
        elite_count: int = 2,
        tournament_size: int = 3,
        mutation_probability: float = 0.6,
    ) -> None:
        super().__init__(space, seed)
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not 0 <= elite_count < population_size:
            raise ValueError("elite_count must be in [0, population_size)")
        if tournament_size < 1:
            raise ValueError("tournament_size must be positive")
        if not 0.0 <= mutation_probability <= 1.0:
            raise ValueError("mutation_probability must be in [0, 1]")
        self.population_size = population_size
        self.elite_count = elite_count
        self.tournament_size = tournament_size
        self.mutation_probability = mutation_probability
        self.generation = 0
        self._queue: List[Candidate] = [
            self.space.sample(self.rng) for _ in range(population_size)
        ]
        self._next_index = 0
        self._scored: List[Tuple[Candidate, float]] = []

    def _propose(self) -> Candidate:
        if self._next_index >= len(self._queue):
            self._breed()
        candidate = self._queue[self._next_index]
        self._next_index += 1
        return candidate

    def _observe(self, candidate: Candidate, fitness: float) -> None:
        self._scored.append((candidate, fitness))

    def _breed(self) -> None:
        """Replace the evaluated generation with its offspring."""
        ranked = sorted(
            self._scored, key=lambda entry: entry[1], reverse=True
        )  # stable: equal fitness keeps evaluation order
        parents = ranked[: max(2, self.population_size // 2)]
        offspring: List[Candidate] = [
            dict(candidate) for candidate, _ in ranked[: self.elite_count]
        ]
        while len(offspring) < self.population_size:
            first = self._tournament(parents)
            second = self._tournament(parents)
            child = self.space.crossover(first, second, self.rng)
            if self.rng.random() < self.mutation_probability:
                child = self.space.mutate(child, self.rng)
            offspring.append(child)
        self.generation += 1
        self._queue = offspring
        self._next_index = 0
        self._scored = []

    def _tournament(self, pool: List[Tuple[Candidate, float]]) -> Candidate:
        """The fittest of ``tournament_size`` random picks from ``pool``."""
        best: Optional[Tuple[Candidate, float]] = None
        for _ in range(self.tournament_size):
            entry = pool[self.rng.randrange(len(pool))]
            if best is None or entry[1] > best[1]:
                best = entry
        assert best is not None
        return best[0]


#: Registry used by scripts and tests to build agents by name.
AGENT_TYPES: Dict[str, type] = {
    RandomWalkAgent.name: RandomWalkAgent,
    GeneticAgent.name: GeneticAgent,
}


def make_agent(name: str, space: SearchSpace, seed: int = 0) -> Agent:
    """Construct a registered agent by name with its default knobs."""
    try:
        agent_type = AGENT_TYPES[name]
    except KeyError:
        valid = ", ".join(sorted(AGENT_TYPES))
        raise ValueError(f"unknown agent {name!r}; expected one of: {valid}") from None
    return agent_type(space, seed=seed)
