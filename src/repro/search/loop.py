"""The search loop: drive one agent over one problem, telemetry-logged.

:func:`run_search` is the deterministic outer loop ROADMAP open item 1
asks for: ``steps`` iterations of propose → evaluate → observe, with an
in-loop memo so an agent revisiting a candidate costs a dictionary lookup
instead of a scenario run, and every step wrapped in a ``search.step``
telemetry span carrying proposal/fitness/cache-hit metrics (the existing
trace format — no private logging).

The returned :class:`SearchResult` carries the full trajectory (for
convergence plots and determinism tests), the best candidate, and the
cache-accounting counters the zero-replay-miss assertions check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry import telemetry

from .agents import Agent
from .problem import Evaluation, SearchProblem
from .space import Candidate, FrozenCandidate


@dataclass(frozen=True)
class SearchStep:
    """One iteration of the loop: what was proposed and how it scored."""

    index: int
    candidate: Dict[str, object]
    fitness: float
    memo_hit: bool
    elapsed_seconds: float


@dataclass(frozen=True)
class SearchResult:
    """One agent's finished trajectory over one problem."""

    agent: str
    seed: int
    steps: Tuple[SearchStep, ...]
    best_candidate: Dict[str, object]
    best_fitness: float
    evaluations: int
    memo_hits: int
    elapsed_seconds: float
    baseline_fitness: Optional[float] = None

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of steps served by the in-loop memo."""
        return self.memo_hits / len(self.steps) if self.steps else 0.0

    @property
    def improvement_over_baseline(self) -> Optional[float]:
        """Best fitness relative to the baseline (None without a baseline)."""
        if self.baseline_fitness is None or self.baseline_fitness == 0.0:
            return None
        return self.best_fitness / self.baseline_fitness - 1.0

    def convergence(self) -> List[float]:
        """Running best fitness after each step (for convergence plots)."""
        best = float("-inf")
        trace: List[float] = []
        for step in self.steps:
            best = max(best, step.fitness)
            trace.append(best)
        return trace

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-serializable report of the trajectory."""
        return {
            "agent": self.agent,
            "seed": self.seed,
            "steps": len(self.steps),
            "best_candidate": dict(self.best_candidate),
            "best_fitness": self.best_fitness,
            "baseline_fitness": self.baseline_fitness,
            "improvement_over_baseline": self.improvement_over_baseline,
            "evaluations": self.evaluations,
            "memo_hits": self.memo_hits,
            "memo_hit_rate": self.memo_hit_rate,
            "elapsed_seconds": self.elapsed_seconds,
            "convergence": self.convergence(),
        }


def run_search(
    problem: SearchProblem,
    agent: Agent,
    steps: int,
    baseline: Optional[Evaluation] = None,
    memo: Optional[Dict[FrozenCandidate, Evaluation]] = None,
) -> SearchResult:
    """Run ``agent`` over ``problem`` for ``steps`` iterations.

    ``baseline`` (usually ``problem.baseline()``) is recorded on the result
    for improvement reporting; pass ``memo`` to share one evaluation memo
    across several agents searching the same problem (candidates one agent
    already paid for are free to the others — the in-process analogue of
    the on-disk scenario tier).
    """
    if steps < 1:
        raise ValueError("steps must be positive")
    memo = {} if memo is None else memo
    trajectory: List[SearchStep] = []
    evaluations = 0
    memo_hits = 0
    started = time.perf_counter()
    tracer = telemetry()
    for index in range(steps):
        step_started = time.perf_counter()
        with tracer.span("search.step", agent=agent.name, step=index):
            candidate = agent.propose()
            key = problem.space.freeze(candidate)
            cached = memo.get(key)
            if cached is not None:
                evaluation = cached
                memo_hits += 1
                tracer.count("search.memo_hits")
            else:
                evaluation = problem.evaluate(candidate)
                memo[key] = evaluation
                evaluations += 1
                tracer.count("search.evaluations")
            agent.observe(candidate, evaluation.fitness)
            tracer.count("search.proposals")
            tracer.observe("search.fitness", evaluation.fitness)
            tracer.gauge("search.best_fitness", agent.best_fitness)
        trajectory.append(
            SearchStep(
                index=index,
                candidate=dict(candidate),
                fitness=evaluation.fitness,
                memo_hit=cached is not None,
                elapsed_seconds=time.perf_counter() - step_started,
            )
        )
    assert agent.best_candidate is not None  # steps >= 1 guarantees one observe
    return SearchResult(
        agent=agent.name,
        seed=agent.seed,
        steps=tuple(trajectory),
        best_candidate=dict(agent.best_candidate),
        best_fitness=agent.best_fitness,
        evaluations=evaluations,
        memo_hits=memo_hits,
        elapsed_seconds=time.perf_counter() - started,
        baseline_fitness=baseline.fitness if baseline is not None else None,
    )
