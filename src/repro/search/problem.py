"""Search problems: how a candidate configuration earns its fitness.

A :class:`SearchProblem` binds a :class:`~repro.search.space.SearchSpace`
to an evaluator; :meth:`SearchProblem.evaluate` turns one candidate into an
:class:`Evaluation` (fitness plus diagnostic metrics), and
:meth:`SearchProblem.baseline` scores the hand-tuned reference
configuration every search is trying to beat.

Both concrete problems ride the two-phase cache:

* :class:`ScenarioSearchProblem` — scores a policy-knob candidate by
  running a scenario timeline through
  :class:`~repro.scenarios.engine.ScenarioEngine` and measuring the
  multi-tenant weighted speedup against *fixed* solo references (computed
  once, under the default hand-tuned policy, so every candidate is judged
  against the same yardstick).  Replay-affecting axes (predictor, SM
  splits) miss the replay tier at most once per distinct leaf; a re-run of
  the same seeded search is served entirely from the scenario tier.
* :class:`EnvelopeSearchProblem` — tunes one leaf's
  :class:`~repro.sim.performance_model.ResourceEnvelope` bandwidth shares
  under a total-share budget.  The single replay measurement is fetched
  once and every candidate is scored analytically via
  :meth:`~repro.runner.runner.ExperimentRunner.score_measurement` —
  score-tier-only by construction, zero replays after the first fetch.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

from repro.analysis.scenarios import fairness, weighted_speedup
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.runner.runner import ExperimentRunner, active_runner
from repro.scenarios.engine import ContentionModel, ScenarioEngine
from repro.scenarios.library import get_scenario
from repro.scenarios.policy import DynamicCapacityManager, TransitionCostModel
from repro.scenarios.spec import ScenarioSpec
from repro.sim.performance_model import ResourceEnvelope
from repro.sim.simulator import SimulationConfig
from repro.systems.fidelity import FAST_FIDELITY, Fidelity, get_fidelity
from repro.workloads.applications import get_application

from .space import Candidate, SearchSpace, envelope_space, morpheus_policy_space

#: Transition-model axes forwarded verbatim to :class:`TransitionCostModel`.
_TRANSITION_AXES = (
    "dirty_fraction",
    "warmup_fill_fraction",
    "flush_bandwidth_gbps_per_sm",
)


@dataclass(frozen=True)
class Evaluation:
    """One candidate's measured outcome."""

    candidate: Dict[str, object]
    fitness: float
    metrics: Dict[str, float] = field(default_factory=dict)


class SearchProblem(abc.ABC):
    """Binds a search space to a candidate evaluator."""

    space: SearchSpace

    @abc.abstractmethod
    def evaluate(self, candidate: Candidate) -> Evaluation:
        """Score one candidate (higher fitness is better)."""

    @abc.abstractmethod
    def baseline(self) -> Evaluation:
        """Score the hand-tuned reference configuration (the bar to beat)."""


class ScenarioSearchProblem(SearchProblem):
    """Tune the dynamic-policy knobs on one scenario timeline.

    Fitness is :func:`~repro.analysis.scenarios.weighted_speedup` against
    per-application solo references computed **once** with the default
    hand-tuned :class:`DynamicCapacityManager` — a fixed yardstick, so two
    candidates' fitnesses are always comparable and the baseline's fitness
    is exactly the hand-tuned configuration's weighted speedup.

    Args:
        scenario: A :class:`ScenarioSpec` or a library scenario name
            (default ``"mixed_tenancy"``, the co-run timeline ROADMAP open
            item 1 targets).
        system: Scenario system to evaluate under.
        runner: Runner executing the leaves; ``None`` resolves the
            process-wide runner at call time.
        space: Knob space; default :func:`morpheus_policy_space` for the
            given GPU.
    """

    def __init__(
        self,
        scenario: Union[str, ScenarioSpec] = "mixed_tenancy",
        system: str = "Morpheus-Basic",
        runner: Optional[ExperimentRunner] = None,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Union[str, Fidelity] = FAST_FIDELITY,
        seed: int = 1,
        space: Optional[SearchSpace] = None,
        contention: Optional[ContentionModel] = None,
    ) -> None:
        self.scenario = (
            get_scenario(scenario) if isinstance(scenario, str) else scenario
        )
        self.system = system
        self.runner = runner
        self.gpu = gpu
        self.fidelity = get_fidelity(fidelity)
        self.seed = seed
        self.space = space or morpheus_policy_space(gpu)
        self.contention = contention
        self._references: Optional[Dict[str, float]] = None

    # -- candidate lowering ------------------------------------------------------------

    def policy_for(self, candidate: Mapping[str, object]) -> DynamicCapacityManager:
        """The :class:`DynamicCapacityManager` a candidate configures.

        Axes a reduced space omits keep their hand-tuned defaults, so the
        problem works over any subset of :func:`morpheus_policy_space`.
        """
        return DynamicCapacityManager(
            hysteresis_sms=int(candidate.get("hysteresis_sms", 0)),
            arbitration=str(candidate.get("arbitration", "proportional")),
            pool_cap_sms=candidate.get("pool_cap_sms"),  # type: ignore[arg-type]
        )

    def transition_model_for(
        self, candidate: Mapping[str, object]
    ) -> TransitionCostModel:
        """The :class:`TransitionCostModel` a candidate configures."""
        kwargs = {axis: candidate[axis] for axis in _TRANSITION_AXES if axis in candidate}
        return TransitionCostModel(**kwargs)  # type: ignore[arg-type]

    def _engine(
        self,
        transition_model: Optional[TransitionCostModel] = None,
        predictor: str = "bloom",
    ) -> ScenarioEngine:
        return ScenarioEngine(
            runner=self.runner,
            gpu=self.gpu,
            fidelity=self.fidelity,
            seed=self.seed,
            transition_model=transition_model,
            predictor=predictor,
            contention=self.contention,
        )

    def reference_ipcs(self) -> Dict[str, float]:
        """The fixed per-application solo references (memoized)."""
        if self._references is None:
            engine = self._engine()
            self._references = engine.solo_reference_ipcs(
                self.scenario, self.system, DynamicCapacityManager()
            )
        return dict(self._references)

    # -- SearchProblem interface -------------------------------------------------------

    def evaluate(self, candidate: Candidate) -> Evaluation:
        self.space.validate(candidate)
        engine = self._engine(
            transition_model=self.transition_model_for(candidate),
            predictor=str(candidate.get("predictor", "bloom")),
        )
        return self._evaluate_with(engine, self.policy_for(candidate), dict(candidate))

    def baseline(self) -> Evaluation:
        """The hand-tuned default: ``DynamicCapacityManager()`` + default
        transition model + default predictor (an empty candidate)."""
        return self._evaluate_with(self._engine(), DynamicCapacityManager(), {})

    def _evaluate_with(
        self,
        engine: ScenarioEngine,
        policy: DynamicCapacityManager,
        candidate: Dict[str, object],
    ) -> Evaluation:
        references = self.reference_ipcs()
        result = engine.run(self.scenario, self.system, policy)
        fitness = weighted_speedup(result, references)
        metrics = {
            "weighted_speedup": fitness,
            "fairness": fairness(result, references),
            "transition_cycles": result.transition_cycles,
            "total_cycles": result.total_cycles,
        }
        return Evaluation(candidate=candidate, fitness=fitness, metrics=metrics)


class EnvelopeSearchProblem(SearchProblem):
    """Tune one leaf's resource-envelope shares under a share budget.

    Models a fabric-allocation question: each of the three shared channels
    (DRAM, LLC, NoC) can be granted at most its full bandwidth, but the sum
    of grants is capped at ``budget`` — giving every channel 100 % is not
    allowed, so the search must find where bandwidth matters most for the
    application.  Fitness is the scored IPC minus a linear penalty per unit
    of budget overrun (soft constraint, so agents get a gradient back
    toward feasibility instead of a cliff).

    The replay measurement is fetched once (one replay-tier access for the
    whole search) and every candidate is scored with
    :meth:`ExperimentRunner.score_measurement` — pure analytic scoring,
    zero cache traffic per step.
    """

    def __init__(
        self,
        application: str = "kmeans",
        runner: Optional[ExperimentRunner] = None,
        fidelity: Union[str, Fidelity] = FAST_FIDELITY,
        num_compute_sms: int = 34,
        seed: int = 1,
        budget: float = 2.2,
        penalty: float = 2.0,
        space: Optional[SearchSpace] = None,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        self.application = application
        self.runner = runner
        self.fidelity = get_fidelity(fidelity)
        self.num_compute_sms = num_compute_sms
        self.seed = seed
        self.budget = budget
        self.penalty = penalty
        self.space = space or envelope_space()
        self.profile = get_application(application)
        self._measurement = None

    def _base_config(self) -> SimulationConfig:
        return SimulationConfig(
            num_compute_sms=self.num_compute_sms,
            power_gate_unused=True,
            capacity_scale=self.fidelity.capacity_scale,
            trace_accesses=self.fidelity.trace_accesses,
            warmup_accesses=self.fidelity.warmup_accesses,
            system_name="envelope-search",
            seed=self.seed,
        )

    def _active_runner(self) -> ExperimentRunner:
        return self.runner if self.runner is not None else active_runner()

    def evaluate(self, candidate: Candidate) -> Evaluation:
        self.space.validate(candidate)
        envelope = ResourceEnvelope(**{k: float(v) for k, v in candidate.items()})
        return self._evaluate_envelope(envelope, dict(candidate))

    def baseline(self) -> Evaluation:
        """An even split of the budget across the three channels."""
        share = min(1.0, self.budget / 3.0)
        envelope = ResourceEnvelope(
            dram_bandwidth_share=share,
            llc_bandwidth_share=share,
            noc_bandwidth_share=share,
        )
        return self._evaluate_envelope(envelope, {})

    def _evaluate_envelope(
        self, envelope: ResourceEnvelope, candidate: Dict[str, object]
    ) -> Evaluation:
        runner = self._active_runner()
        base = self._base_config()
        if self._measurement is None:
            self._measurement = runner.measurement_for(self.profile, base)
        config = dataclasses.replace(base, envelope=envelope)
        stats = runner.score_measurement(self.profile, config, self._measurement)
        spent = (
            envelope.dram_bandwidth_share
            + envelope.llc_bandwidth_share
            + envelope.noc_bandwidth_share
        )
        overrun = max(0.0, spent - self.budget)
        fitness = stats.ipc - self.penalty * overrun
        metrics = {
            "ipc": stats.ipc,
            "share_total": spent,
            "budget_overrun": overrun,
        }
        return Evaluation(candidate=candidate, fitness=fitness, metrics=metrics)
