"""Declarative search spaces over the Morpheus configuration knobs.

A :class:`SearchSpace` is an ordered tuple of named axes — integer ranges,
float intervals, categorical choices — with the three genetic primitives
every agent needs: ``sample`` (a fresh uniform candidate), ``mutate`` (a
nearby candidate, at least one axis changed) and ``crossover`` (a per-axis
recombination of two parents).  All randomness flows through a caller-owned
``random.Random``, so a seeded agent's trajectory is exactly reproducible.

Candidates are plain ``{axis name: value}`` dicts; :meth:`SearchSpace.freeze`
turns one into a hashable key for memoization and trajectory comparison.

Two concrete spaces cover ROADMAP open item 1's axes:

* :func:`morpheus_policy_space` — the scenario-level policy knobs: the
  Morpheus split point (``pool_cap_sms``), the
  :class:`~repro.scenarios.policy.DynamicCapacityManager` hysteresis and
  arbitration mode, the predictor flavour, and the
  :class:`~repro.scenarios.policy.TransitionCostModel` constants.
* :func:`envelope_space` — the per-leaf
  :class:`~repro.sim.performance_model.ResourceEnvelope` bandwidth shares.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.core.config import MorpheusConfig
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.scenarios.policy import ARBITRATION_MODES, max_cache_mode_sms

#: A point in the search space: one value per axis.
Candidate = Dict[str, object]

#: Hashable form of a candidate (axis order, so keys compare stably).
FrozenCandidate = Tuple[Tuple[str, object], ...]

#: Predictor flavours accepted by :class:`~repro.core.config.MorpheusConfig`.
PREDICTOR_FLAVOURS: Tuple[str, ...] = ("bloom", "none", "perfect")


@dataclass(frozen=True)
class Axis(abc.ABC):
    """One named tunable dimension of a search space."""

    name: str

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> object:
        """A uniform random valid value."""

    @abc.abstractmethod
    def mutate(self, value: object, rng: random.Random) -> object:
        """A nearby valid value, different from ``value`` whenever the axis
        has more than one value."""

    @abc.abstractmethod
    def validate(self, value: object) -> None:
        """Raise ``ValueError`` when ``value`` is not a point on this axis."""


@dataclass(frozen=True)
class IntAxis(Axis):
    """An inclusive integer range ``low..high`` on a fixed ``step`` grid."""

    low: int = 0
    high: int = 0
    step: int = 1

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"axis {self.name}: low must be <= high")
        if self.step < 1:
            raise ValueError(f"axis {self.name}: step must be positive")
        if (self.high - self.low) % self.step:
            raise ValueError(f"axis {self.name}: high must sit on the step grid")

    @property
    def count(self) -> int:
        return (self.high - self.low) // self.step + 1

    def sample(self, rng: random.Random) -> int:
        return self.low + self.step * rng.randrange(self.count)

    def mutate(self, value: object, rng: random.Random) -> int:
        self.validate(value)
        if self.count == 1:
            return self.low
        # A short +-1/+-2 step walk; reflecting off the ends keeps the
        # result in range *and* different from the input.
        current = int(value)  # type: ignore[arg-type]
        offset = rng.choice((-2, -1, 1, 2)) * self.step
        moved = current + offset
        if not self.low <= moved <= self.high:
            moved = current - offset
        if not self.low <= moved <= self.high:
            moved = current + (self.step if current == self.low else -self.step)
        return moved

    def validate(self, value: object) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"axis {self.name}: {value!r} is not an int")
        if not self.low <= value <= self.high or (value - self.low) % self.step:
            raise ValueError(
                f"axis {self.name}: {value!r} outside "
                f"{self.low}..{self.high} step {self.step}"
            )


@dataclass(frozen=True)
class FloatAxis(Axis):
    """A closed float interval ``[low, high]``."""

    low: float = 0.0
    high: float = 1.0
    #: Mutation kick as a fraction of the interval width.
    mutation_scale: float = 0.15

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"axis {self.name}: low must be < high")
        if self.mutation_scale <= 0:
            raise ValueError(f"axis {self.name}: mutation_scale must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mutate(self, value: object, rng: random.Random) -> float:
        self.validate(value)
        sigma = (self.high - self.low) * self.mutation_scale
        moved = float(value) + rng.gauss(0.0, sigma)  # type: ignore[arg-type]
        return min(self.high, max(self.low, moved))

    def validate(self, value: object) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"axis {self.name}: {value!r} is not a number")
        if not self.low <= float(value) <= self.high:
            raise ValueError(
                f"axis {self.name}: {value!r} outside [{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class CategoricalAxis(Axis):
    """A finite unordered set of choices."""

    choices: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"axis {self.name}: choices must be non-empty")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"axis {self.name}: choices must be unique")

    def sample(self, rng: random.Random) -> object:
        return self.choices[rng.randrange(len(self.choices))]

    def mutate(self, value: object, rng: random.Random) -> object:
        self.validate(value)
        if len(self.choices) == 1:
            return value
        others = [choice for choice in self.choices if choice != value]
        return others[rng.randrange(len(others))]

    def validate(self, value: object) -> None:
        if value not in self.choices:
            raise ValueError(
                f"axis {self.name}: {value!r} not one of {self.choices!r}"
            )


class SearchSpace:
    """An ordered, named collection of axes with the genetic primitives."""

    def __init__(self, axes: Sequence[Axis]) -> None:
        if not axes:
            raise ValueError("a search space needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names: {names}")
        self.axes: Tuple[Axis, ...] = tuple(axes)
        self._by_name: Dict[str, Axis] = {axis.name: axis for axis in self.axes}

    def __len__(self) -> int:
        return len(self.axes)

    def __iter__(self) -> Iterator[Axis]:
        return iter(self.axes)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    def axis(self, name: str) -> Axis:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no axis named {name!r}; have {self.names}") from None

    def validate(self, candidate: Mapping[str, object]) -> None:
        """Raise ``ValueError`` unless ``candidate`` covers every axis exactly."""
        unknown = set(candidate) - set(self._by_name)
        if unknown:
            raise ValueError(f"unknown axes in candidate: {sorted(unknown)}")
        missing = set(self._by_name) - set(candidate)
        if missing:
            raise ValueError(f"candidate missing axes: {sorted(missing)}")
        for name, value in candidate.items():
            self._by_name[name].validate(value)

    def sample(self, rng: random.Random) -> Candidate:
        """A fresh uniform candidate."""
        return {axis.name: axis.sample(rng) for axis in self.axes}

    def mutate(
        self,
        candidate: Mapping[str, object],
        rng: random.Random,
        rate: Optional[float] = None,
    ) -> Candidate:
        """A copy of ``candidate`` with each axis mutated with probability
        ``rate`` (default ``1/len(axes)``) and at least one axis always
        mutated — a zero-change "mutation" would stall a hill climber."""
        self.validate(candidate)
        if rate is None:
            rate = 1.0 / len(self.axes)
        forced = rng.randrange(len(self.axes))
        mutated: Candidate = {}
        for index, axis in enumerate(self.axes):
            value = candidate[axis.name]
            if index == forced or rng.random() < rate:
                value = axis.mutate(value, rng)
            mutated[axis.name] = value
        return mutated

    def crossover(
        self,
        first: Mapping[str, object],
        second: Mapping[str, object],
        rng: random.Random,
    ) -> Candidate:
        """Uniform crossover: each axis inherited from a random parent."""
        self.validate(first)
        self.validate(second)
        return {
            axis.name: (first if rng.random() < 0.5 else second)[axis.name]
            for axis in self.axes
        }

    def freeze(self, candidate: Mapping[str, object]) -> FrozenCandidate:
        """Hashable axis-ordered form of ``candidate`` (for memo keys)."""
        self.validate(candidate)
        return tuple((axis.name, candidate[axis.name]) for axis in self.axes)


def morpheus_policy_space(
    gpu: GPUConfig = RTX3080_CONFIG,
    morpheus: Optional[MorpheusConfig] = None,
) -> SearchSpace:
    """The scenario-policy knob space ROADMAP open item 1 describes.

    Axes: the Morpheus split point (a cap on the dynamic manager's pooled
    cache-mode allocation), the manager's hysteresis and arbitration mode,
    the predictor flavour, and the transition-cost constants.  The split
    point and hysteresis sit on coarse grids: neighbouring values that the
    timeline's idle capacity already clamps together would otherwise bloat
    the replay tier with duplicate-in-behaviour leaves.
    """
    cap = max_cache_mode_sms(gpu, morpheus or MorpheusConfig())
    pool_high = max(8, cap - (cap % 4))
    return SearchSpace(
        [
            IntAxis("pool_cap_sms", low=4, high=pool_high, step=4),
            IntAxis("hysteresis_sms", low=0, high=8, step=2),
            CategoricalAxis("arbitration", choices=ARBITRATION_MODES),
            CategoricalAxis("predictor", choices=PREDICTOR_FLAVOURS),
            FloatAxis("dirty_fraction", low=0.0, high=1.0),
            FloatAxis("warmup_fill_fraction", low=0.1, high=1.0),
            FloatAxis("flush_bandwidth_gbps_per_sm", low=8.0, high=64.0),
        ]
    )


def envelope_space(low: float = 0.2, high: float = 1.0) -> SearchSpace:
    """The per-leaf :class:`ResourceEnvelope` bandwidth-share space."""
    return SearchSpace(
        [
            FloatAxis("dram_bandwidth_share", low=low, high=high),
            FloatAxis("llc_bandwidth_share", low=low, high=high),
            FloatAxis("noc_bandwidth_share", low=low, high=high),
        ]
    )
