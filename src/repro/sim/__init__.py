"""Cycle-approximate, trace-driven GPU simulation."""

from repro.sim.engine import HierarchyCounters, MemoryHierarchyEngine
from repro.sim.simulator import GPUSimulator, SimulationConfig
from repro.sim.stats import SimulationStats

__all__ = [
    "GPUSimulator",
    "HierarchyCounters",
    "MemoryHierarchyEngine",
    "SimulationConfig",
    "SimulationStats",
]
