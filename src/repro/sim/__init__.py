"""Cycle-approximate, trace-driven GPU simulation."""

from repro.sim.engine import HierarchyCounters, MemoryHierarchyEngine
from repro.sim.performance_model import PerformanceModel, ReplayMeasurement
from repro.sim.simulator import GPUSimulator, SimulationConfig
from repro.sim.stats import SimulationStats

__all__ = [
    "GPUSimulator",
    "HierarchyCounters",
    "MemoryHierarchyEngine",
    "PerformanceModel",
    "ReplayMeasurement",
    "SimulationConfig",
    "SimulationStats",
]
