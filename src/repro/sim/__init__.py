"""Cycle-approximate, trace-driven GPU simulation."""

from repro.sim.engine import HierarchyCounters, MemoryHierarchyEngine
from repro.sim.performance_model import (
    DEFAULT_ENVELOPE,
    PerformanceModel,
    ReplayMeasurement,
    ResourceEnvelope,
    shared_bandwidth_capacities,
    shared_bandwidth_demand,
)
from repro.sim.simulator import GPUSimulator, SimulationConfig
from repro.sim.stats import SimulationStats

__all__ = [
    "DEFAULT_ENVELOPE",
    "GPUSimulator",
    "HierarchyCounters",
    "MemoryHierarchyEngine",
    "PerformanceModel",
    "ReplayMeasurement",
    "ResourceEnvelope",
    "SimulationConfig",
    "SimulationStats",
    "shared_bandwidth_capacities",
    "shared_bandwidth_demand",
]
