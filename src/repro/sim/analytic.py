"""First-order analytic measurement predictor (the ``"analytic"`` fidelity).

Where the functional replay drives a generated trace through the real
cache/controller/NoC/DRAM structures, this module *predicts* the resulting
:class:`~repro.sim.performance_model.ReplayMeasurement` in closed form from
the :class:`~repro.workloads.applications.ApplicationProfile` and the
config's capacity parameters:

* **Occupancy**: the scaled working set is split into a hot and a cold
  region (``hot_fraction`` / ``hot_probability``); the conventional LLC —
  and, for Morpheus configs, the pooled extended-LLC capacity on the
  cache-mode SMs — cover the hot region first.  Streaming accesses never
  hit.  Capacities mirror the engine's scaling rules exactly (granule
  floors, per-store minimums, compression capacity factor), so analytic
  and replay fidelities agree on *which* capacity cliff an application
  sits on even when the hit rates differ.
* **Traffic and latency**: per-access byte and latency costs follow the
  engine's counter semantics (block-sized requests, response headers, DRAM
  writeback traffic, NoC round trips), so the downstream roofline scoring
  sees the same units it sees from a replay.

The prediction is deterministic and seed-independent.  It intentionally
models **no** predictor effects, no warm-up transients and no compression
latency — it is a cheap exploration tier, keyed as its own
``replay_mode`` inside ``replay_key`` so it can never contaminate
replay-tier results.  Calibrate against a replay fidelity before trusting
absolute numbers (see README "Fast scoring & fidelity tiers").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.extended_llc import Compressibility
from repro.sim.engine import HierarchyCounters
from repro.sim.performance_model import ReplayMeasurement
from repro.workloads.applications import ApplicationProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import SimulationConfig

#: Response-header bytes the engine charges per NoC transfer.
_NOC_HEADER_BYTES = 32


def _conventional_capacity_bytes(config: "SimulationConfig") -> float:
    """Scaled conventional-LLC capacity, mirroring the engine's granule floor."""
    llc = config.gpu.llc
    scaled = int(llc.capacity_bytes * config.capacity_scale)
    floor = llc.num_partitions * llc.associativity * llc.block_size
    return float(max(floor, scaled))


def _extended_capacity_bytes(profile: ApplicationProfile, config: "SimulationConfig") -> float:
    """Scaled pooled extended-LLC capacity across the cache-mode SMs.

    Mirrors the engine's per-store scaling (register file + unified
    L1/shared per cache SM, each floored at four blocks) and applies the
    BDI compression capacity factor when the Morpheus config enables
    compression — the same effective-capacity rule
    :class:`~repro.core.extended_llc.ExtendedLLC` uses.
    """
    if config.morpheus is None or config.num_cache_sms <= 0:
        return 0.0
    gpu = config.gpu
    block_floor = config.morpheus.block_size * 4
    rf_bytes = max(block_floor, int(gpu.register_file_bytes_per_sm * config.capacity_scale))
    l1_bytes = max(block_floor, int(gpu.l1_shared_bytes_per_sm * config.capacity_scale))
    capacity = float(config.num_cache_sms * (rf_bytes + l1_bytes))
    if config.morpheus.enable_compression:
        capacity *= Compressibility(
            high_fraction=profile.compressible_high,
            low_fraction=profile.compressible_low,
        ).capacity_factor()
    return capacity


def _reuse_hit_rate(profile: ApplicationProfile, footprint: float, capacity: float) -> float:
    """Hit rate of the *reusable* accesses given ``capacity`` bytes of cache.

    Hot-region-first occupancy: cache capacity covers the hot region before
    the cold one, and a region's accesses hit in proportion to how much of
    it is covered.
    """
    if footprint <= 0.0 or capacity <= 0.0:
        return 1.0 if footprint <= 0.0 else 0.0
    hot_bytes = profile.hot_fraction * footprint
    cold_bytes = footprint - hot_bytes
    covered_hot = min(1.0, capacity / hot_bytes) if hot_bytes > 0.0 else 1.0
    remaining = max(0.0, capacity - hot_bytes)
    covered_cold = min(1.0, remaining / cold_bytes) if cold_bytes > 0.0 else 1.0
    return profile.hot_probability * covered_hot + (1.0 - profile.hot_probability) * covered_cold


def _hit_rate(profile: ApplicationProfile, footprint: float, capacity: float) -> float:
    """Overall LLC-level hit rate: streaming accesses never hit."""
    reuse_fraction = 1.0 - profile.streaming_fraction
    return reuse_fraction * _reuse_hit_rate(profile, footprint, capacity)


def predict_measurement(
    profile: ApplicationProfile, config: "SimulationConfig"
) -> ReplayMeasurement:
    """Predict the replay measurement for ``profile`` under ``config``.

    Pure and deterministic: depends only on the profile and the config's
    replay-affecting fields (the seed is ignored — there is no trace to
    generate).  Returns a fully populated
    :class:`~repro.sim.performance_model.ReplayMeasurement` that scores
    through the ordinary :class:`~repro.sim.performance_model.PerformanceModel`.
    """
    gpu = config.gpu
    block = gpu.block_size
    accesses = config.trace_accesses

    footprint = profile.footprint_bytes(config.num_compute_sms) * config.capacity_scale
    conv_capacity = _conventional_capacity_bytes(config)
    ext_capacity = _extended_capacity_bytes(profile, config)

    conv_hit_rate = _hit_rate(profile, footprint, conv_capacity)
    total_hit_rate = _hit_rate(profile, footprint, conv_capacity + ext_capacity)

    conventional_hits = int(round(accesses * conv_hit_rate))
    extended_hits = int(round(accesses * (total_hit_rate - conv_hit_rate)))
    extended_hits = min(extended_hits, accesses - conventional_hits)
    # Every conventional miss consults the extension (when one exists).
    extended_requests = accesses - conventional_hits if ext_capacity > 0.0 else 0
    dram_accesses = accesses - conventional_hits - extended_hits
    writebacks = int(round(profile.write_fraction * dram_accesses))

    # Traffic, mirroring the engine's counter semantics: block-sized
    # requests, a header per NoC response, DRAM writeback bytes.
    conventional_bytes = conventional_hits * block
    extended_bytes = extended_hits * block
    dram_bytes = dram_accesses * block + writebacks * block
    noc_bytes = accesses * (block + _NOC_HEADER_BYTES) + extended_hits * (
        block + _NOC_HEADER_BYTES
    )

    # Latency: every access pays the NoC round trip plus the conventional
    # lookup; extension hits add the cache-mode SM's kernel/tag/data path,
    # misses add the (row-buffer-blended) DRAM access.
    noc_one_way = gpu.interconnect.one_way_latency_cycles
    timing = config.morpheus.timing if config.morpheus is not None else None
    if timing is not None:
        ext_extra = (
            timing.kernel_dispatch_ns
            + timing.tag_lookup_ns
            + timing.l1_access_ns
            + 2.0 * timing.noc_one_way_ns
        ) * gpu.core_clock_ghz
    else:
        ext_extra = 0.0
    dram = gpu.dram
    dram_extra = dram.access_latency_cycles * (
        1.0 - dram.row_buffer_hit_rate * (1.0 - dram.row_buffer_hit_latency_factor)
    )
    total_latency = (
        accesses * (2.0 * noc_one_way + gpu.llc.hit_latency_cycles)
        + extended_hits * ext_extra
        + dram_accesses * dram_extra
    )

    counters = HierarchyCounters(
        llc_accesses=accesses,
        conventional_hits=conventional_hits,
        extended_hits=extended_hits,
        extended_requests=extended_requests,
        dram_accesses=dram_accesses,
        # No predictor is modelled: predicted misses are the true misses.
        predicted_misses=dram_accesses if ext_capacity > 0.0 else 0,
        false_positive_trips=0,
        writebacks=writebacks,
        total_latency_cycles=total_latency,
        conventional_bytes=conventional_bytes,
        extended_bytes=extended_bytes,
        dram_bytes=dram_bytes,
        noc_bytes=noc_bytes,
        elapsed_cycles=max(1.0, accesses * config.request_interval_cycles),
    )
    return ReplayMeasurement(
        counters=counters,
        noc_average_latency_cycles=noc_one_way,
        predictor=None,
    )
