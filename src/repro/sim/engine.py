"""The memory-hierarchy engine: drives an LLC-level trace through the model.

The engine owns the banked conventional LLC, the optional Morpheus
controllers (one per partition, sharing one aggregate extended LLC), the
interconnect and the DRAM model.  It replays a trace of LLC-level accesses
and collects the counts the performance model needs: hit rates per level,
average access latency, per-level bytes, interconnect load and DRAM traffic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import MorpheusConfig
from repro.core.controller import AccessOutcome, MorpheusController
from repro.core.extended_llc import Compressibility, ExtendedLLC
from repro.gpu.config import GPUConfig
from repro.interconnect.network import InterconnectNetwork
from repro.memory.dram import DRAMModel
from repro.memory.llc import BankedLLC
from repro.memory.request import MemoryRequest
from repro.workloads.trace import MemoryTrace


@dataclass
class HierarchyCounters:
    """Counts accumulated by one engine run over a trace."""

    llc_accesses: int = 0
    conventional_hits: int = 0
    extended_hits: int = 0
    extended_requests: int = 0
    dram_accesses: int = 0
    predicted_misses: int = 0
    false_positive_trips: int = 0
    writebacks: int = 0
    total_latency_cycles: float = 0.0
    conventional_bytes: float = 0.0
    extended_bytes: float = 0.0
    dram_bytes: float = 0.0
    noc_bytes: float = 0.0
    elapsed_cycles: float = 0.0

    @property
    def llc_hits(self) -> int:
        """Hits in either LLC."""
        return self.conventional_hits + self.extended_hits

    @property
    def llc_hit_rate(self) -> float:
        """Overall LLC hit rate."""
        return self.llc_hits / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def conventional_hit_rate(self) -> float:
        """Conventional LLC hit rate over all LLC accesses."""
        return self.conventional_hits / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def extended_hit_rate(self) -> float:
        """Extended LLC hit rate over extended-routed accesses."""
        return self.extended_hits / self.extended_requests if self.extended_requests else 0.0

    @property
    def extended_fraction(self) -> float:
        """Fraction of LLC accesses routed to the extended LLC."""
        return self.extended_requests / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def dram_access_fraction(self) -> float:
        """Fraction of LLC accesses that ended in DRAM."""
        return self.dram_accesses / self.llc_accesses if self.llc_accesses else 0.0

    @property
    def average_latency_cycles(self) -> float:
        """Average LLC-level access latency observed over the trace."""
        return self.total_latency_cycles / self.llc_accesses if self.llc_accesses else 0.0

    def to_jsonable(self) -> Dict[str, float]:
        """Render the counters as a JSON-compatible field dict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, payload: Dict[str, float]) -> "HierarchyCounters":
        """Rebuild counters from :meth:`to_jsonable` output (bit-identical)."""
        return cls(**payload)


class MemoryHierarchyEngine:
    """Replays LLC-level traces against the modelled memory hierarchy.

    Args:
        gpu: GPU configuration (provides LLC, DRAM and interconnect configs).
        morpheus: Morpheus configuration; ``None`` models a conventional GPU.
        cache_sm_ids: SMs in cache mode (ignored when ``morpheus`` is None).
        compressibility: Workload block-compressibility mix for the extended LLC.
        capacity_scale: Factor by which cache capacities are scaled down to
            match a downscaled trace footprint (keeps hit rates representative
            while traces stay short).
        request_interval_cycles: Modelled gap between consecutive trace
            entries entering the memory system; sets the offered load for the
            bandwidth/queueing models.
    """

    def __init__(
        self,
        gpu: GPUConfig,
        morpheus: Optional[MorpheusConfig] = None,
        cache_sm_ids: Optional[List[int]] = None,
        compressibility: Optional[Compressibility] = None,
        capacity_scale: float = 1.0,
        request_interval_cycles: float = 2.0,
    ) -> None:
        if not 0.0 < capacity_scale <= 1.0:
            raise ValueError("capacity_scale must be in (0, 1]")
        if request_interval_cycles <= 0:
            raise ValueError("request_interval_cycles must be positive")
        self.gpu = gpu
        self.morpheus_config = morpheus
        self.capacity_scale = capacity_scale
        self.request_interval_cycles = request_interval_cycles

        llc_config = gpu.llc
        if capacity_scale < 1.0:
            scaled = max(
                llc_config.num_partitions * llc_config.associativity * llc_config.block_size,
                int(llc_config.capacity_bytes * capacity_scale),
            )
            llc_config = llc_config.with_capacity(scaled)
        self.llc = BankedLLC(llc_config)
        self.dram = DRAMModel(gpu.dram)
        self.network = InterconnectNetwork(gpu.interconnect)

        self.extended_llc: Optional[ExtendedLLC] = None
        self.controllers: List[MorpheusController] = []
        if morpheus is not None and cache_sm_ids:
            rf_bytes = int(gpu.register_file_bytes_per_sm * capacity_scale)
            l1_bytes = int(gpu.l1_shared_bytes_per_sm * capacity_scale)
            self.extended_llc = ExtendedLLC(
                cache_sm_ids=list(cache_sm_ids),
                config=morpheus,
                register_file_bytes=max(morpheus.block_size * 4, rf_bytes),
                l1_shared_bytes=max(morpheus.block_size * 4, l1_bytes),
                compressibility=compressibility,
            )
            self.controllers = [
                MorpheusController(
                    partition,
                    self.extended_llc,
                    morpheus,
                    core_clock_ghz=gpu.core_clock_ghz,
                    dram_access=self._dram_access,
                    noc_round_trip=self._extended_noc_round_trip,
                )
                for partition in self.llc.partitions
            ]
        self.counters = HierarchyCounters()
        self._now = 0.0
        self._start_cycle = 0.0

    # -- callbacks injected into the Morpheus controllers --------------------------

    def _dram_access(self, request: MemoryRequest, at_cycle: float) -> float:
        latency = self.dram.access(request, at_cycle)
        self.counters.dram_accesses += 1
        self.counters.dram_bytes += request.size_bytes
        return latency

    def _extended_noc_round_trip(self, size_bytes: int, at_cycle: float) -> float:
        # The extra hop to the cache-mode SM uses the same network; pick the
        # port of the SM-side partition pseudo-randomly by size/time.
        partition_id = int(at_cycle) % self.gpu.interconnect.num_partitions
        latency = self.network.traverse(
            partition_id, size_bytes, at_cycle, elapsed_cycles=max(1.0, self._now)
        )
        self.counters.noc_bytes += size_bytes + self.gpu.block_size
        return latency

    # -- trace replay ------------------------------------------------------------------

    def run(self, trace: MemoryTrace) -> HierarchyCounters:
        """Replay ``trace`` and return the accumulated counters."""
        block = self.gpu.block_size
        for index, entry in enumerate(trace):
            # Time continues across run() calls so warm-up and measurement
            # share one continuous timeline (queue occupancies stay valid).
            now = self._start_cycle + index * self.request_interval_cycles
            self._now = now
            request = entry.to_request(issue_cycle=int(now), block_size=block)

            # The SM -> LLC partition hop (all LLC traffic pays this).
            partition_id = self.llc.mapping.partition_of(request.address)
            noc_latency = self.network.traverse(
                partition_id, 32, now, response_bytes=block, elapsed_cycles=max(1.0, now)
            )
            self.counters.noc_bytes += 32 + block

            if self.controllers:
                outcome = self.controllers[partition_id].access(request, now)
                self._account_morpheus(outcome, request, noc_latency)
            else:
                self._access_baseline(request, partition_id, now, noc_latency)

            self.counters.llc_accesses += 1
        self._start_cycle += len(trace) * self.request_interval_cycles
        self.counters.elapsed_cycles = max(
            1.0, self.counters.elapsed_cycles + len(trace) * self.request_interval_cycles
        )
        return self.counters

    def _access_baseline(
        self, request: MemoryRequest, partition_id: int, now: float, noc_latency: float
    ) -> None:
        hit, latency, writeback = self.llc.partitions[partition_id].access(request, now)
        total = noc_latency + latency
        if hit:
            self.counters.conventional_hits += 1
            self.counters.conventional_bytes += request.size_bytes
        else:
            dram_latency = self._dram_access(request, now + latency)
            total += dram_latency
            self.counters.conventional_bytes += request.size_bytes
        if writeback is not None:
            # An evicted dirty block always moves one full cache block to
            # DRAM, regardless of the triggering request's size.
            self.counters.writebacks += 1
            self.counters.dram_bytes += self.gpu.block_size
        self.counters.total_latency_cycles += total

    def _account_morpheus(
        self, outcome: AccessOutcome, request: MemoryRequest, noc_latency: float
    ) -> None:
        if outcome.hit_level == "llc":
            self.counters.conventional_hits += 1
            self.counters.conventional_bytes += request.size_bytes
        elif outcome.hit_level == "extended_llc":
            self.counters.extended_hits += 1
            self.counters.extended_requests += 1
            self.counters.extended_bytes += request.size_bytes
        else:  # served by DRAM
            if outcome.predicted_miss or outcome.false_positive:
                self.counters.extended_requests += 1
            else:
                self.counters.conventional_bytes += request.size_bytes
            if outcome.predicted_miss:
                self.counters.predicted_misses += 1
            if outcome.false_positive:
                self.counters.false_positive_trips += 1
        self.counters.writebacks += len(outcome.writebacks)
        # Each evicted dirty block writes one full cache block back to DRAM.
        self.counters.dram_bytes += len(outcome.writebacks) * self.gpu.block_size
        self.counters.total_latency_cycles += noc_latency + outcome.latency_cycles

    # -- derived metrics -----------------------------------------------------------------

    def predictor_stats(self):
        """Aggregate hit/miss predictor statistics across all controllers."""
        from repro.core.hit_miss_predictor import PredictorStats

        total = PredictorStats()
        for controller in self.controllers:
            stats = controller.predictor.stats
            total.predictions += stats.predictions
            total.predicted_hits += stats.predicted_hits
            total.predicted_misses += stats.predicted_misses
            total.false_positives += stats.false_positives
            total.false_negatives += stats.false_negatives
            total.swaps += stats.swaps
        return total

    def llc_throughput_gbps(self) -> float:
        """Achieved conventional LLC throughput over the replayed trace."""
        return self.llc.throughput_gbps(self.counters.elapsed_cycles)

    def reset_counters(self) -> None:
        """Zero all measurement counters while preserving cache contents.

        Used after a warm-up replay so that steady-state hit rates are
        measured without the cold-start transient.
        """
        from repro.interconnect.network import NetworkStats

        self.counters = HierarchyCounters()
        self.network.stats = NetworkStats()
        self.dram.total_accesses = 0
        self.dram.total_bytes = 0
        for partition in self.llc.partitions:
            partition.cache.reset_stats()
            partition.bytes_served = 0
            partition.requests_served = 0
        for controller in self.controllers:
            controller.stats.__init__()

    def reset(self) -> None:
        """Reset all components and counters (configuration preserved)."""
        self.llc.reset()
        self.dram.reset()
        self.network.reset()
        if self.extended_llc is not None:
            self.extended_llc.reset()
        for controller in self.controllers:
            controller.reset()
        self.counters = HierarchyCounters()
        self._now = 0.0
        self._start_cycle = 0.0
