"""The bottleneck (roofline-style) performance model, split from the replay.

A simulation has two halves: a **functional memory-hierarchy replay** (the
:class:`~repro.sim.engine.MemoryHierarchyEngine` driving a trace through the
cache/controller/NoC/DRAM structures) and an **analytic scoring step** that
turns the replay's counters into IPC, execution time, energy and
performance/watt.  This module holds the second half as a standalone, pure
:class:`PerformanceModel`: given one :class:`ReplayMeasurement` it can be
re-applied under different analytic parameters (peak IPC, MLP, energy
constants) without re-running the replay — which is what makes disk-cached
and batched experiment execution cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.energy.model import EnergyModel
from repro.sim.engine import HierarchyCounters
from repro.sim.stats import SimulationStats
from repro.workloads.applications import ApplicationProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.hit_miss_predictor import PredictorStats
    from repro.sim.simulator import SimulationConfig


@dataclass(frozen=True)
class ReplayMeasurement:
    """Everything one trace replay produces that the scoring step consumes.

    Attributes:
        counters: Per-level hit/traffic/latency counters from the engine.
        noc_average_latency_cycles: Average one-way NoC latency observed.
        predictor: Aggregated hit/miss-predictor statistics, or ``None`` when
            the run had no Morpheus controllers.
    """

    counters: HierarchyCounters
    noc_average_latency_cycles: float = 0.0
    predictor: Optional["PredictorStats"] = None

    def to_jsonable(self) -> Dict[str, Any]:
        """Render the measurement as JSON-compatible data.

        The rendering round-trips exactly: floats survive JSON via repr, so
        :meth:`from_jsonable` rebuilds a measurement whose score is
        bit-identical to the original's.
        """
        return {
            "counters": self.counters.to_jsonable(),
            "noc_average_latency_cycles": self.noc_average_latency_cycles,
            "predictor": (
                self.predictor.to_jsonable() if self.predictor is not None else None
            ),
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "ReplayMeasurement":
        """Rebuild a measurement from :meth:`to_jsonable` output."""
        from repro.core.hit_miss_predictor import PredictorStats

        predictor = payload.get("predictor")
        return cls(
            counters=HierarchyCounters.from_jsonable(payload["counters"]),
            noc_average_latency_cycles=payload["noc_average_latency_cycles"],
            predictor=(
                PredictorStats.from_jsonable(predictor) if predictor is not None else None
            ),
        )


class PerformanceModel:
    """Scores one replay measurement into :class:`SimulationStats`.

    IPC is the minimum of the compute limit, the DRAM bandwidth limit, the
    conventional/extended LLC bandwidth limits, the interconnect limit and
    the latency/MLP limit.  Execution time, energy and performance/watt
    follow from the modelled IPC and the per-level traffic extrapolated to
    the application's full instruction count.

    The model is pure: ``score`` depends only on its arguments and the
    energy-model constants, so one replay can be re-scored under different
    analytic parameters without re-replaying the trace.
    """

    def __init__(self, energy_model: EnergyModel | None = None) -> None:
        self.energy_model = energy_model or EnergyModel()

    def score(
        self,
        profile: ApplicationProfile,
        config: "SimulationConfig",
        measurement: ReplayMeasurement,
    ) -> SimulationStats:
        """Turn ``measurement`` into full statistics for ``profile`` under ``config``."""
        cfg = config
        gpu = cfg.gpu
        counters = measurement.counters

        l1_hit = profile.l1_hit_rate_for_capacity(gpu.l1_shared_bytes_per_sm)
        apki_l1 = profile.l1_apki
        apki_llc = profile.llc_apki(l1_hit)
        block = gpu.block_size

        accesses = max(1, counters.llc_accesses)
        dram_demand_fraction = counters.dram_access_fraction
        llc_mpki = apki_llc * (1.0 - counters.llc_hit_rate)
        dram_apki = apki_llc * dram_demand_fraction

        # Bytes moved per kilo-instruction at each level (measured per LLC
        # access, scaled by the application's LLC access intensity).
        conv_bytes_per_ki = counters.conventional_bytes / accesses * apki_llc
        ext_bytes_per_ki = counters.extended_bytes / accesses * apki_llc
        dram_bytes_per_ki = counters.dram_bytes / accesses * apki_llc
        noc_bytes_per_ki = counters.noc_bytes / accesses * apki_llc
        l1_bytes_per_ki = apki_l1 * block

        # --- IPC limits -------------------------------------------------------------
        limits: Dict[str, float] = {}
        limits["compute"] = (
            cfg.num_compute_sms * cfg.peak_warp_ipc_per_sm * profile.compute_efficiency
        )

        def bandwidth_limit(bytes_per_cycle: float, bytes_per_ki: float) -> float:
            if bytes_per_ki <= 1e-9:
                return float("inf")
            return bytes_per_cycle / (bytes_per_ki / 1000.0)

        dram_bpc = gpu.dram.bytes_per_cycle_per_channel * gpu.dram.num_channels
        limits["dram_bandwidth"] = bandwidth_limit(dram_bpc, dram_bytes_per_ki)

        llc_bpc = gpu.llc.bytes_per_cycle_per_partition * gpu.llc.num_partitions
        limits["llc_bandwidth"] = bandwidth_limit(llc_bpc, conv_bytes_per_ki)

        if cfg.num_cache_sms > 0 and cfg.morpheus is not None:
            ext_bpc = (
                cfg.morpheus.timing.per_sm_extended_bandwidth_gbps
                / gpu.core_clock_ghz
                * cfg.num_cache_sms
            )
            limits["extended_llc_bandwidth"] = bandwidth_limit(ext_bpc, ext_bytes_per_ki)

        # The measured NoC bytes cover both directions while the per-port
        # bandwidth is per direction, so the aggregate capacity is doubled.
        noc_bpc = 2.0 * gpu.interconnect.bytes_per_cycle_per_port * gpu.interconnect.num_partitions
        limits["noc_bandwidth"] = bandwidth_limit(noc_bpc, noc_bytes_per_ki)

        avg_latency = max(1.0, counters.average_latency_cycles)
        if apki_llc > 1e-9:
            limits["latency"] = (
                cfg.num_compute_sms * cfg.mlp_per_sm / avg_latency * (1000.0 / apki_llc)
            )
        else:
            limits["latency"] = float("inf")

        ipc = min(limits.values())
        bottleneck = min(limits, key=limits.get)

        instructions = float(profile.instructions)
        execution_cycles = instructions / max(ipc, 1e-9)

        # --- energy -----------------------------------------------------------------
        kilo_instructions = instructions / 1000.0
        num_gated = 0
        num_active_extra = gpu.num_sms - cfg.num_compute_sms - cfg.num_cache_sms
        if cfg.power_gate_unused:
            num_gated = num_active_extra
            num_active_extra = 0
        breakdown = self.energy_model.compute(
            execution_cycles=execution_cycles,
            instructions=instructions,
            dram_bytes=dram_bytes_per_ki * kilo_instructions,
            llc_bytes=conv_bytes_per_ki * kilo_instructions,
            extended_llc_bytes=ext_bytes_per_ki * kilo_instructions,
            l1_bytes=l1_bytes_per_ki * kilo_instructions,
            noc_bytes=noc_bytes_per_ki * kilo_instructions,
            num_compute_sms=cfg.num_compute_sms + num_active_extra,
            num_cache_sms=cfg.num_cache_sms,
            num_gated_sms=num_gated,
            morpheus_enabled=cfg.morpheus is not None and cfg.num_cache_sms > 0,
        )
        perf_per_watt = self.energy_model.performance_per_watt(ipc, breakdown, execution_cycles)
        avg_power = self.energy_model.average_power_watts(breakdown, execution_cycles)

        predictor = measurement.predictor

        # Achieved throughputs at the modelled IPC (GB/s).
        seconds_per_ki = (1000.0 / max(ipc, 1e-9)) / (gpu.core_clock_ghz * 1e9)

        def throughput_gbps(bytes_per_ki: float) -> float:
            if seconds_per_ki <= 0:
                return 0.0
            return bytes_per_ki / seconds_per_ki / 1e9

        return SimulationStats(
            application=profile.name,
            system=cfg.system_name,
            num_compute_sms=cfg.num_compute_sms,
            num_cache_sms=cfg.num_cache_sms,
            num_gated_sms=num_gated,
            ipc=ipc,
            execution_cycles=execution_cycles,
            instructions=instructions,
            l1_hit_rate=l1_hit,
            llc_hit_rate=counters.llc_hit_rate,
            conventional_llc_hit_rate=counters.conventional_hit_rate,
            extended_llc_hit_rate=counters.extended_hit_rate,
            extended_fraction=counters.extended_fraction,
            llc_mpki=llc_mpki,
            llc_apki=apki_llc,
            dram_accesses_per_ki=dram_apki,
            dram_bytes=dram_bytes_per_ki * kilo_instructions,
            dram_bandwidth_utilization=min(
                1.0, throughput_gbps(dram_bytes_per_ki) / max(1e-9, gpu.dram.total_bandwidth_gbps)
            ),
            llc_throughput_gbps=throughput_gbps(conv_bytes_per_ki + ext_bytes_per_ki),
            extended_llc_throughput_gbps=throughput_gbps(ext_bytes_per_ki),
            noc_bytes=noc_bytes_per_ki * kilo_instructions,
            noc_injection_bytes_per_cycle=noc_bytes_per_ki / 1000.0 * ipc,
            noc_average_latency_cycles=measurement.noc_average_latency_cycles,
            average_memory_latency_cycles=avg_latency,
            bottleneck=bottleneck,
            limits=limits,
            predictor_false_positive_rate=(
                predictor.false_positive_rate if predictor is not None else 0.0
            ),
            predictor_false_negatives=(
                predictor.false_negatives if predictor is not None else 0
            ),
            predicted_miss_fraction=(
                counters.predicted_misses / accesses if accesses else 0.0
            ),
            energy=breakdown,
            average_power_watts=avg_power,
            performance_per_watt=perf_per_watt,
        )
