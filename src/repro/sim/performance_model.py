"""The bottleneck (roofline-style) performance model, split from the replay.

A simulation has two halves: a **functional memory-hierarchy replay** (the
:class:`~repro.sim.engine.MemoryHierarchyEngine` driving a trace through the
cache/controller/NoC/DRAM structures) and an **analytic scoring step** that
turns the replay's counters into IPC, execution time, energy and
performance/watt.  This module holds the second half as a standalone, pure
:class:`PerformanceModel`: given one :class:`ReplayMeasurement` it can be
re-applied under different analytic parameters (peak IPC, MLP, energy
constants) without re-running the replay — which is what makes disk-cached
and batched experiment execution cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.energy.model import EnergyModel
from repro.sim.engine import HierarchyCounters
from repro.sim.stats import SimulationStats
from repro.workloads.applications import ApplicationProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.hit_miss_predictor import PredictorStats
    from repro.gpu.config import GPUConfig
    from repro.sim.simulator import SimulationConfig
    from repro.sim.vector_model import MeasurementScorer


@dataclass(frozen=True)
class ResourceEnvelope:
    """The share of each *shared* memory-system resource a run may use.

    The performance model's bandwidth limits are computed against this
    envelope instead of hardcoded whole-GPU capacities: a share of ``s``
    caps the run at ``s`` times the GPU's aggregate bandwidth on that
    channel.  The default envelope grants every channel in full, which
    reproduces the historical single-tenant numbers bit-for-bit (the
    capacities are multiplied by exactly ``1.0``).

    Only the channels *shared between concurrent residents* are enveloped:
    DRAM bandwidth, conventional-LLC bandwidth and the NoC.  Compute and
    the extended-LLC bandwidth are private — they live in the resident's
    own granted SMs — and the latency/MLP limit keeps the replay-measured
    latency (queueing inflation under contention is not modelled).

    The envelope is a pure *scoring* input: it never affects the
    functional replay, so sweeping envelopes re-scores cached
    measurements at zero replay cost (it is a
    :data:`~repro.sim.simulator.SCORE_FIELDS` entry of the config).

    Attributes:
        dram_bandwidth_share: Fraction of the aggregate DRAM bandwidth.
        llc_bandwidth_share: Fraction of the conventional-LLC bandwidth.
        noc_bandwidth_share: Fraction of the NoC bandwidth.
    """

    dram_bandwidth_share: float = 1.0
    llc_bandwidth_share: float = 1.0
    noc_bandwidth_share: float = 1.0

    def __post_init__(self) -> None:
        for name in ("dram_bandwidth_share", "llc_bandwidth_share", "noc_bandwidth_share"):
            share = getattr(self, name)
            if not 0.0 < share <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {share}")

    @property
    def is_default(self) -> bool:
        """True for the whole-GPU envelope (every share exactly 1)."""
        return (
            self.dram_bandwidth_share == 1.0
            and self.llc_bandwidth_share == 1.0
            and self.noc_bandwidth_share == 1.0
        )


#: The whole-GPU envelope: every shared channel granted in full.
DEFAULT_ENVELOPE = ResourceEnvelope()

#: The shared memory-system channels an envelope apportions, in the fixed
#: order solvers iterate them.
SHARED_CHANNELS: Tuple[str, ...] = ("dram", "llc", "noc")

#: Envelope field per shared channel.
ENVELOPE_FIELDS: Dict[str, str] = {
    "dram": "dram_bandwidth_share",
    "llc": "llc_bandwidth_share",
    "noc": "noc_bandwidth_share",
}


def shared_bandwidth_capacities(gpu: "GPUConfig") -> Dict[str, float]:
    """Whole-GPU aggregate capacity of each shared channel, in bytes/cycle.

    The measured NoC bytes cover both directions while the per-port
    bandwidth is per direction, so the aggregate NoC capacity is doubled.
    """
    return {
        "dram": gpu.dram.bytes_per_cycle_per_channel * gpu.dram.num_channels,
        "llc": gpu.llc.bytes_per_cycle_per_partition * gpu.llc.num_partitions,
        "noc": (
            2.0
            * gpu.interconnect.bytes_per_cycle_per_port
            * gpu.interconnect.num_partitions
        ),
    }


def shared_bandwidth_demand(stats: SimulationStats, gpu: "GPUConfig") -> Dict[str, float]:
    """One scored run's offered load on each shared channel, in bytes/cycle.

    Derived purely from the run's :class:`~repro.sim.stats.SimulationStats`
    at its modelled IPC — the demand signal the co-run contention solver
    turns into proportional-pressure envelope shares.  The conventional-LLC
    demand excludes extended-LLC traffic (that bandwidth is private to the
    resident's own cache-mode SMs).
    """
    dram = (
        stats.dram_bytes / stats.instructions * stats.ipc
        if stats.instructions > 0
        else 0.0
    )
    conventional_llc = (
        max(0.0, stats.llc_throughput_gbps - stats.extended_llc_throughput_gbps)
        / gpu.core_clock_ghz
    )
    return {
        "dram": dram,
        "llc": conventional_llc,
        "noc": stats.noc_injection_bytes_per_cycle,
    }


@dataclass(frozen=True)
class ReplayMeasurement:
    """Everything one trace replay produces that the scoring step consumes.

    Attributes:
        counters: Per-level hit/traffic/latency counters from the engine.
        noc_average_latency_cycles: Average one-way NoC latency observed.
        predictor: Aggregated hit/miss-predictor statistics, or ``None`` when
            the run had no Morpheus controllers.
    """

    counters: HierarchyCounters
    noc_average_latency_cycles: float = 0.0
    predictor: Optional["PredictorStats"] = None

    def to_jsonable(self) -> Dict[str, Any]:
        """Render the measurement as JSON-compatible data.

        The rendering round-trips exactly: floats survive JSON via repr, so
        :meth:`from_jsonable` rebuilds a measurement whose score is
        bit-identical to the original's.
        """
        return {
            "counters": self.counters.to_jsonable(),
            "noc_average_latency_cycles": self.noc_average_latency_cycles,
            "predictor": (
                self.predictor.to_jsonable() if self.predictor is not None else None
            ),
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "ReplayMeasurement":
        """Rebuild a measurement from :meth:`to_jsonable` output."""
        from repro.core.hit_miss_predictor import PredictorStats

        predictor = payload.get("predictor")
        return cls(
            counters=HierarchyCounters.from_jsonable(payload["counters"]),
            noc_average_latency_cycles=payload["noc_average_latency_cycles"],
            predictor=(
                PredictorStats.from_jsonable(predictor) if predictor is not None else None
            ),
        )


class PerformanceModel:
    """Scores one replay measurement into :class:`SimulationStats`.

    IPC is the minimum of the compute limit, the DRAM bandwidth limit, the
    conventional/extended LLC bandwidth limits, the interconnect limit and
    the latency/MLP limit.  The shared-channel capacities (DRAM,
    conventional LLC, NoC) are granted through the config's
    :class:`ResourceEnvelope` — the default whole-GPU envelope reproduces
    the historical numbers bit-for-bit, while fractional shares model a
    co-resident tenant's slice of the memory system.  Execution time,
    energy and performance/watt follow from the modelled IPC and the
    per-level traffic extrapolated to the application's full instruction
    count.

    The model is pure: ``score`` depends only on its arguments and the
    energy-model constants, so one replay can be re-scored under different
    analytic parameters without re-replaying the trace.
    """

    def __init__(self, energy_model: EnergyModel | None = None) -> None:
        self.energy_model = energy_model or EnergyModel()

    def score(
        self,
        profile: ApplicationProfile,
        config: "SimulationConfig",
        measurement: ReplayMeasurement,
    ) -> SimulationStats:
        """Turn ``measurement`` into full statistics for ``profile`` under ``config``."""
        cfg = config
        gpu = cfg.gpu
        counters = measurement.counters

        l1_hit = profile.l1_hit_rate_for_capacity(gpu.l1_shared_bytes_per_sm)
        apki_l1 = profile.l1_apki
        apki_llc = profile.llc_apki(l1_hit)
        block = gpu.block_size

        accesses = max(1, counters.llc_accesses)
        dram_demand_fraction = counters.dram_access_fraction
        llc_mpki = apki_llc * (1.0 - counters.llc_hit_rate)
        dram_apki = apki_llc * dram_demand_fraction

        # Bytes moved per kilo-instruction at each level (measured per LLC
        # access, scaled by the application's LLC access intensity).
        conv_bytes_per_ki = counters.conventional_bytes / accesses * apki_llc
        ext_bytes_per_ki = counters.extended_bytes / accesses * apki_llc
        dram_bytes_per_ki = counters.dram_bytes / accesses * apki_llc
        noc_bytes_per_ki = counters.noc_bytes / accesses * apki_llc
        l1_bytes_per_ki = apki_l1 * block

        # --- IPC limits -------------------------------------------------------------
        limits: Dict[str, float] = {}
        limits["compute"] = (
            cfg.num_compute_sms * cfg.peak_warp_ipc_per_sm * profile.compute_efficiency
        )

        def bandwidth_limit(bytes_per_cycle: float, bytes_per_ki: float) -> float:
            if bytes_per_ki <= 1e-9:
                return float("inf")
            return bytes_per_cycle / (bytes_per_ki / 1000.0)

        # Shared-channel capacities are granted through the config's resource
        # envelope; the default envelope multiplies by exactly 1.0, so
        # single-tenant scoring is bit-identical to the pre-envelope model.
        envelope = cfg.envelope
        capacities = shared_bandwidth_capacities(gpu)

        dram_bpc = capacities["dram"] * envelope.dram_bandwidth_share
        limits["dram_bandwidth"] = bandwidth_limit(dram_bpc, dram_bytes_per_ki)

        llc_bpc = capacities["llc"] * envelope.llc_bandwidth_share
        limits["llc_bandwidth"] = bandwidth_limit(llc_bpc, conv_bytes_per_ki)

        if cfg.num_cache_sms > 0 and cfg.morpheus is not None:
            ext_bpc = (
                cfg.morpheus.timing.per_sm_extended_bandwidth_gbps
                / gpu.core_clock_ghz
                * cfg.num_cache_sms
            )
            limits["extended_llc_bandwidth"] = bandwidth_limit(ext_bpc, ext_bytes_per_ki)

        noc_bpc = capacities["noc"] * envelope.noc_bandwidth_share
        limits["noc_bandwidth"] = bandwidth_limit(noc_bpc, noc_bytes_per_ki)

        avg_latency = max(1.0, counters.average_latency_cycles)
        if apki_llc > 1e-9:
            limits["latency"] = (
                cfg.num_compute_sms * cfg.mlp_per_sm / avg_latency * (1000.0 / apki_llc)
            )
        else:
            limits["latency"] = float("inf")

        ipc = min(limits.values())
        bottleneck = min(limits, key=limits.get)

        instructions = float(profile.instructions)
        execution_cycles = instructions / max(ipc, 1e-9)

        # --- energy -----------------------------------------------------------------
        kilo_instructions = instructions / 1000.0
        num_gated = 0
        num_active_extra = gpu.num_sms - cfg.num_compute_sms - cfg.num_cache_sms
        if cfg.power_gate_unused:
            num_gated = num_active_extra
            num_active_extra = 0
        breakdown = self.energy_model.compute(
            execution_cycles=execution_cycles,
            instructions=instructions,
            dram_bytes=dram_bytes_per_ki * kilo_instructions,
            llc_bytes=conv_bytes_per_ki * kilo_instructions,
            extended_llc_bytes=ext_bytes_per_ki * kilo_instructions,
            l1_bytes=l1_bytes_per_ki * kilo_instructions,
            noc_bytes=noc_bytes_per_ki * kilo_instructions,
            num_compute_sms=cfg.num_compute_sms + num_active_extra,
            num_cache_sms=cfg.num_cache_sms,
            num_gated_sms=num_gated,
            morpheus_enabled=cfg.morpheus is not None and cfg.num_cache_sms > 0,
        )
        perf_per_watt = self.energy_model.performance_per_watt(ipc, breakdown, execution_cycles)
        avg_power = self.energy_model.average_power_watts(breakdown, execution_cycles)

        predictor = measurement.predictor

        # Achieved throughputs at the modelled IPC (GB/s).
        seconds_per_ki = (1000.0 / max(ipc, 1e-9)) / (gpu.core_clock_ghz * 1e9)

        def throughput_gbps(bytes_per_ki: float) -> float:
            if seconds_per_ki <= 0:
                return 0.0
            return bytes_per_ki / seconds_per_ki / 1e9

        return SimulationStats(
            application=profile.name,
            system=cfg.system_name,
            num_compute_sms=cfg.num_compute_sms,
            num_cache_sms=cfg.num_cache_sms,
            num_gated_sms=num_gated,
            ipc=ipc,
            execution_cycles=execution_cycles,
            instructions=instructions,
            l1_hit_rate=l1_hit,
            llc_hit_rate=counters.llc_hit_rate,
            conventional_llc_hit_rate=counters.conventional_hit_rate,
            extended_llc_hit_rate=counters.extended_hit_rate,
            extended_fraction=counters.extended_fraction,
            llc_mpki=llc_mpki,
            llc_apki=apki_llc,
            dram_accesses_per_ki=dram_apki,
            dram_bytes=dram_bytes_per_ki * kilo_instructions,
            dram_bandwidth_utilization=min(
                1.0, throughput_gbps(dram_bytes_per_ki) / max(1e-9, gpu.dram.total_bandwidth_gbps)
            ),
            llc_throughput_gbps=throughput_gbps(conv_bytes_per_ki + ext_bytes_per_ki),
            extended_llc_throughput_gbps=throughput_gbps(ext_bytes_per_ki),
            noc_bytes=noc_bytes_per_ki * kilo_instructions,
            noc_injection_bytes_per_cycle=noc_bytes_per_ki / 1000.0 * ipc,
            noc_average_latency_cycles=measurement.noc_average_latency_cycles,
            average_memory_latency_cycles=avg_latency,
            bottleneck=bottleneck,
            limits=limits,
            predictor_false_positive_rate=(
                predictor.false_positive_rate if predictor is not None else 0.0
            ),
            predictor_false_negatives=(
                predictor.false_negatives if predictor is not None else 0
            ),
            predicted_miss_fraction=(
                counters.predicted_misses / accesses if accesses else 0.0
            ),
            energy=breakdown,
            average_power_watts=avg_power,
            performance_per_watt=perf_per_watt,
        )

    def scorer(
        self,
        profile: ApplicationProfile,
        config: "SimulationConfig",
        measurement: ReplayMeasurement,
    ) -> "MeasurementScorer":
        """A :class:`~repro.sim.vector_model.MeasurementScorer` over ``measurement``.

        The scorer hoists every replay-side invariant once; use it to score
        the same measurement under many score-tier parameter variants
        (batch sweeps, per-iteration contention envelopes) without paying
        the full :meth:`score` preamble per point.  Results are
        bit-identical to :meth:`score`.
        """
        from repro.sim.vector_model import MeasurementScorer

        return MeasurementScorer(
            profile, config, measurement, energy_model=self.energy_model
        )

    def score_batch(
        self,
        profile: ApplicationProfile,
        configs: Sequence["SimulationConfig"],
        measurement: ReplayMeasurement,
        validate: bool = True,
    ) -> List[SimulationStats]:
        """Score ``measurement`` under every config in one vectorized pass.

        All configs must share the replay parameters the measurement was
        produced under (they may differ in any
        :data:`~repro.sim.simulator.SCORE_FIELDS` dimension); with
        ``validate`` each config is checked against the first and a
        mismatch raises :class:`ValueError`.  Callers that group configs by
        ``replay_key`` (e.g. the runner) may pass ``validate=False``.

        Bit-identical to calling :meth:`score` per config; transparently
        falls back to the scalar loop when numpy is unavailable or the
        batch is tiny.
        """
        if not configs:
            return []
        scorer = self.scorer(profile, configs[0], measurement)
        if validate:
            for config in configs[1:]:
                if not scorer.matches_replay(config):
                    raise ValueError(
                        "score_batch configs must share replay parameters; "
                        f"{config!r} differs from {configs[0]!r} in a "
                        "REPLAY_FIELDS dimension"
                    )
        return scorer.score_batch(configs)
