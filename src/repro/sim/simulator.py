"""The top-level GPU simulator.

:class:`GPUSimulator` combines two layers:

1. A **functional memory-hierarchy replay** — the
   :class:`~repro.sim.engine.MemoryHierarchyEngine` drives an application's
   LLC-level trace through the real cache, controller, interconnect and DRAM
   structures to measure hit rates, routing fractions, latency and traffic.
2. A **bottleneck (roofline-style) performance model** — IPC is the minimum
   of the compute limit, the DRAM bandwidth limit, the conventional/extended
   LLC bandwidth limits, the interconnect limit and the latency/MLP limit.
   This reproduces the behaviours the paper's evaluation rests on: memory-
   bound applications saturate when the DRAM bandwidth limit binds, thrash
   when growing per-SM footprints push the LLC hit rate down, and speed up
   when a larger (conventional or extended) LLC converts DRAM traffic into
   on-chip hits.

Execution time, energy and performance/watt follow from the modelled IPC and
the per-level traffic extrapolated to the application's full instruction
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.config import MorpheusConfig
from repro.core.extended_llc import Compressibility
from repro.energy.model import EnergyModel
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.engine import HierarchyCounters, MemoryHierarchyEngine
from repro.sim.stats import SimulationStats
from repro.workloads.applications import ApplicationProfile
from repro.workloads.generator import TraceGenerator


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    Attributes:
        gpu: GPU hardware configuration.
        morpheus: Morpheus configuration, or ``None`` for a conventional GPU.
        num_compute_sms: SMs executing application threads.
        num_cache_sms: SMs in cache mode (Morpheus only).
        power_gate_unused: Power-gate SMs that are neither computing nor
            caching (IBL-style); the plain baseline keeps them active.
        capacity_scale: Downscaling factor applied to cache capacities and
            workload footprints for the functional replay.
        trace_accesses: LLC-level accesses replayed (after warm-up).
        warmup_accesses: LLC-level accesses replayed to warm the caches
            before measurement starts.
        peak_warp_ipc_per_sm: Peak warp instructions per cycle per SM.
        mlp_per_sm: Outstanding LLC-level requests one SM can sustain.
        system_name: Label recorded in the result (e.g. ``"Morpheus-ALL"``).
        seed: Trace generation seed.
    """

    gpu: GPUConfig = RTX3080_CONFIG
    morpheus: Optional[MorpheusConfig] = None
    num_compute_sms: int = 68
    num_cache_sms: int = 0
    power_gate_unused: bool = False
    capacity_scale: float = 1.0 / 16.0
    trace_accesses: int = 24_000
    warmup_accesses: int = 8_000
    peak_warp_ipc_per_sm: float = 4.0
    mlp_per_sm: float = 320.0
    system_name: str = "BL"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_compute_sms <= 0:
            raise ValueError("num_compute_sms must be positive")
        if self.num_cache_sms < 0:
            raise ValueError("num_cache_sms must be non-negative")
        if self.num_compute_sms + self.num_cache_sms > self.gpu.num_sms:
            raise ValueError(
                "compute + cache SMs exceed the GPU's SM count "
                f"({self.num_compute_sms} + {self.num_cache_sms} > {self.gpu.num_sms})"
            )
        if self.morpheus is None and self.num_cache_sms:
            raise ValueError("cache-mode SMs require a Morpheus configuration")
        if self.trace_accesses <= 0:
            raise ValueError("trace_accesses must be positive")
        if self.warmup_accesses < 0:
            raise ValueError("warmup_accesses must be non-negative")


class GPUSimulator:
    """Simulates one application on one system configuration."""

    def __init__(self, config: SimulationConfig, energy_model: EnergyModel | None = None) -> None:
        self.config = config
        self.energy_model = energy_model or EnergyModel()

    # -- internal helpers ------------------------------------------------------------

    def _build_engine(self, profile: ApplicationProfile) -> MemoryHierarchyEngine:
        cfg = self.config
        cache_sm_ids = list(
            range(cfg.num_compute_sms, cfg.num_compute_sms + cfg.num_cache_sms)
        )
        compressibility = Compressibility(
            high_fraction=profile.compressible_high,
            low_fraction=profile.compressible_low,
        )
        return MemoryHierarchyEngine(
            gpu=cfg.gpu,
            morpheus=cfg.morpheus if cfg.num_cache_sms > 0 else None,
            cache_sm_ids=cache_sm_ids,
            compressibility=compressibility,
            capacity_scale=cfg.capacity_scale,
        )

    def _l1_hit_rate(self, profile: ApplicationProfile) -> float:
        return profile.l1_hit_rate_for_capacity(self.config.gpu.l1_shared_bytes_per_sm)

    # -- the run -------------------------------------------------------------------------

    def run(self, profile: ApplicationProfile) -> SimulationStats:
        """Simulate ``profile`` on the configured system and return statistics."""
        cfg = self.config
        gpu = cfg.gpu

        engine = self._build_engine(profile)
        generator = TraceGenerator(
            profile,
            num_compute_sms=cfg.num_compute_sms,
            scale=cfg.capacity_scale,
            seed=cfg.seed,
        )
        if cfg.warmup_accesses:
            warmup = generator.generate(cfg.warmup_accesses)
            engine.run(warmup)
            engine.reset_counters()
        trace = generator.generate(cfg.trace_accesses)
        counters = engine.run(trace)

        return self._build_stats(profile, engine, counters)

    # -- the bottleneck performance model -----------------------------------------------------

    def _build_stats(
        self,
        profile: ApplicationProfile,
        engine: MemoryHierarchyEngine,
        counters: HierarchyCounters,
    ) -> SimulationStats:
        cfg = self.config
        gpu = cfg.gpu

        l1_hit = self._l1_hit_rate(profile)
        apki_l1 = profile.l1_apki
        apki_llc = profile.llc_apki(l1_hit)
        block = gpu.block_size

        accesses = max(1, counters.llc_accesses)
        dram_demand_fraction = counters.dram_access_fraction
        writebacks_per_access = counters.writebacks / accesses
        llc_mpki = apki_llc * (1.0 - counters.llc_hit_rate)
        dram_apki = apki_llc * dram_demand_fraction

        # Bytes moved per kilo-instruction at each level (measured per LLC
        # access, scaled by the application's LLC access intensity).
        conv_bytes_per_ki = counters.conventional_bytes / accesses * apki_llc
        ext_bytes_per_ki = counters.extended_bytes / accesses * apki_llc
        dram_bytes_per_ki = counters.dram_bytes / accesses * apki_llc
        noc_bytes_per_ki = counters.noc_bytes / accesses * apki_llc
        l1_bytes_per_ki = apki_l1 * block

        # --- IPC limits -------------------------------------------------------------
        limits: Dict[str, float] = {}
        limits["compute"] = (
            cfg.num_compute_sms * cfg.peak_warp_ipc_per_sm * profile.compute_efficiency
        )

        def bandwidth_limit(bytes_per_cycle: float, bytes_per_ki: float) -> float:
            if bytes_per_ki <= 1e-9:
                return float("inf")
            return bytes_per_cycle / (bytes_per_ki / 1000.0)

        dram_bpc = gpu.dram.bytes_per_cycle_per_channel * gpu.dram.num_channels
        limits["dram_bandwidth"] = bandwidth_limit(dram_bpc, dram_bytes_per_ki)

        llc_bpc = gpu.llc.bytes_per_cycle_per_partition * gpu.llc.num_partitions
        limits["llc_bandwidth"] = bandwidth_limit(llc_bpc, conv_bytes_per_ki)

        if cfg.num_cache_sms > 0 and cfg.morpheus is not None:
            ext_bpc = (
                cfg.morpheus.timing.per_sm_extended_bandwidth_gbps
                / gpu.core_clock_ghz
                * cfg.num_cache_sms
            )
            limits["extended_llc_bandwidth"] = bandwidth_limit(ext_bpc, ext_bytes_per_ki)

        # The measured NoC bytes cover both directions while the per-port
        # bandwidth is per direction, so the aggregate capacity is doubled.
        noc_bpc = 2.0 * gpu.interconnect.bytes_per_cycle_per_port * gpu.interconnect.num_partitions
        limits["noc_bandwidth"] = bandwidth_limit(noc_bpc, noc_bytes_per_ki)

        avg_latency = max(1.0, counters.average_latency_cycles)
        if apki_llc > 1e-9:
            limits["latency"] = (
                cfg.num_compute_sms * cfg.mlp_per_sm / avg_latency * (1000.0 / apki_llc)
            )
        else:
            limits["latency"] = float("inf")

        ipc = min(limits.values())
        bottleneck = min(limits, key=limits.get)

        instructions = float(profile.instructions)
        execution_cycles = instructions / max(ipc, 1e-9)

        # --- energy -----------------------------------------------------------------
        kilo_instructions = instructions / 1000.0
        num_gated = 0
        num_active_extra = gpu.num_sms - cfg.num_compute_sms - cfg.num_cache_sms
        if cfg.power_gate_unused:
            num_gated = num_active_extra
            num_active_extra = 0
        breakdown = self.energy_model.compute(
            execution_cycles=execution_cycles,
            instructions=instructions,
            dram_bytes=dram_bytes_per_ki * kilo_instructions,
            llc_bytes=conv_bytes_per_ki * kilo_instructions,
            extended_llc_bytes=ext_bytes_per_ki * kilo_instructions,
            l1_bytes=l1_bytes_per_ki * kilo_instructions,
            noc_bytes=noc_bytes_per_ki * kilo_instructions,
            num_compute_sms=cfg.num_compute_sms + num_active_extra,
            num_cache_sms=cfg.num_cache_sms,
            num_gated_sms=num_gated,
            morpheus_enabled=cfg.morpheus is not None and cfg.num_cache_sms > 0,
        )
        perf_per_watt = self.energy_model.performance_per_watt(ipc, breakdown, execution_cycles)
        avg_power = self.energy_model.average_power_watts(breakdown, execution_cycles)

        predictor = engine.predictor_stats() if engine.controllers else None

        # Achieved throughputs at the modelled IPC (GB/s).
        seconds_per_ki = (1000.0 / max(ipc, 1e-9)) / (gpu.core_clock_ghz * 1e9)
        def throughput_gbps(bytes_per_ki: float) -> float:
            if seconds_per_ki <= 0:
                return 0.0
            return bytes_per_ki / seconds_per_ki / 1e9

        stats = SimulationStats(
            application=profile.name,
            system=cfg.system_name,
            num_compute_sms=cfg.num_compute_sms,
            num_cache_sms=cfg.num_cache_sms,
            num_gated_sms=num_gated,
            ipc=ipc,
            execution_cycles=execution_cycles,
            instructions=instructions,
            l1_hit_rate=l1_hit,
            llc_hit_rate=counters.llc_hit_rate,
            conventional_llc_hit_rate=counters.conventional_hit_rate,
            extended_llc_hit_rate=counters.extended_hit_rate,
            extended_fraction=counters.extended_fraction,
            llc_mpki=llc_mpki,
            llc_apki=apki_llc,
            dram_accesses_per_ki=dram_apki,
            dram_bytes=dram_bytes_per_ki * kilo_instructions,
            dram_bandwidth_utilization=min(
                1.0, throughput_gbps(dram_bytes_per_ki) / max(1e-9, gpu.dram.total_bandwidth_gbps)
            ),
            llc_throughput_gbps=throughput_gbps(conv_bytes_per_ki + ext_bytes_per_ki),
            extended_llc_throughput_gbps=throughput_gbps(ext_bytes_per_ki),
            noc_bytes=noc_bytes_per_ki * kilo_instructions,
            noc_injection_bytes_per_cycle=noc_bytes_per_ki / 1000.0 * ipc,
            noc_average_latency_cycles=engine.network.stats.average_latency_cycles,
            average_memory_latency_cycles=avg_latency,
            bottleneck=bottleneck,
            limits=limits,
            predictor_false_positive_rate=(
                predictor.false_positive_rate if predictor is not None else 0.0
            ),
            predictor_false_negatives=(
                predictor.false_negatives if predictor is not None else 0
            ),
            predicted_miss_fraction=(
                counters.predicted_misses / accesses if accesses else 0.0
            ),
            energy=breakdown,
            average_power_watts=avg_power,
            performance_per_watt=perf_per_watt,
        )
        return stats


def simulate(
    profile: ApplicationProfile,
    config: SimulationConfig,
    energy_model: EnergyModel | None = None,
) -> SimulationStats:
    """Convenience wrapper: simulate ``profile`` under ``config``."""
    return GPUSimulator(config, energy_model=energy_model).run(profile)
