"""The top-level GPU simulator.

:class:`GPUSimulator` combines two layers:

1. A **functional memory-hierarchy replay** — the
   :class:`~repro.sim.engine.MemoryHierarchyEngine` drives an application's
   LLC-level trace through the real cache, controller, interconnect and DRAM
   structures to measure hit rates, routing fractions, latency and traffic.
   Traces are fetched from the shared
   :class:`~repro.workloads.generator.TraceCache`, so systems evaluated on
   the same (profile, SM count, scale, seed) reuse one generated trace.
2. A **bottleneck (roofline-style) performance model** — the standalone
   :class:`~repro.sim.performance_model.PerformanceModel` scores the replay's
   :class:`~repro.sim.performance_model.ReplayMeasurement` into IPC, energy
   and performance/watt.  Because scoring is pure, one replay can be
   re-scored under different analytic parameters without re-replaying.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.config import MorpheusConfig
from repro.core.extended_llc import Compressibility
from repro.energy.model import EnergyModel
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.engine import MemoryHierarchyEngine
from repro.sim.performance_model import (
    DEFAULT_ENVELOPE,
    PerformanceModel,
    ReplayMeasurement,
    ResourceEnvelope,
)
from repro.sim.stats import SimulationStats
from repro.workloads.applications import ApplicationProfile
from repro.workloads.generator import SHARED_TRACE_CACHE, TraceCache

#: Valid values of :attr:`SimulationConfig.replay_mode` (and of
#: :attr:`repro.systems.fidelity.Fidelity.mode`, which feeds it).
REPLAY_MODES: Tuple[str, ...] = ("replay", "analytic")


#: Config fields that determine the functional hierarchy replay (and hence
#: the trace, the engine structures and the :class:`ReplayMeasurement`).
REPLAY_FIELDS: Tuple[str, ...] = (
    "gpu",
    "morpheus",
    "num_compute_sms",
    "num_cache_sms",
    "capacity_scale",
    "trace_accesses",
    "warmup_accesses",
    "request_interval_cycles",
    "replay_mode",
    "seed",
)

#: Config fields consumed only by the analytic scoring step — changing one
#: re-scores an existing measurement but never requires a new replay.
SCORE_FIELDS: Tuple[str, ...] = (
    "power_gate_unused",
    "peak_warp_ipc_per_sm",
    "mlp_per_sm",
    "system_name",
    "envelope",
)


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    Fields are partitioned into :data:`REPLAY_FIELDS` (inputs of the
    functional hierarchy replay) and :data:`SCORE_FIELDS` (analytic
    parameters of the scoring step only); :meth:`replay_params` /
    :meth:`score_params` expose the two halves for content-key derivation.

    Attributes:
        gpu: GPU hardware configuration.
        morpheus: Morpheus configuration, or ``None`` for a conventional GPU.
        num_compute_sms: SMs executing application threads.
        num_cache_sms: SMs in cache mode (Morpheus only).
        power_gate_unused: Power-gate SMs that are neither computing nor
            caching (IBL-style); the plain baseline keeps them active.
        capacity_scale: Downscaling factor applied to cache capacities and
            workload footprints for the functional replay.
        trace_accesses: LLC-level accesses replayed (after warm-up).
        warmup_accesses: LLC-level accesses replayed to warm the caches
            before measurement starts.
        request_interval_cycles: Modelled gap between consecutive trace
            entries entering the memory system; sets the offered load for
            the bandwidth/queueing models.
        peak_warp_ipc_per_sm: Peak warp instructions per cycle per SM.
        mlp_per_sm: Outstanding LLC-level requests one SM can sustain.
        system_name: Label recorded in the result (e.g. ``"Morpheus-ALL"``).
        envelope: Shares of the *shared* memory-system bandwidth (DRAM,
            conventional LLC, NoC) this run may use.  The default grants
            every channel in full; co-run contention scoring passes
            fractional shares.  Score-only: envelope sweeps re-score
            cached measurements without replaying.
        replay_mode: How the measurement is produced.  ``"replay"`` drives
            the functional trace replay; ``"analytic"`` predicts the
            measurement from first-order occupancy/roofline math
            (:func:`repro.sim.analytic.predict_measurement`) without
            touching a trace.  Replay-keyed, so the two tiers of
            measurements can never be served for each other.
        seed: Trace generation seed (ignored by the analytic mode, but
            still keyed for uniformity).
    """

    gpu: GPUConfig = RTX3080_CONFIG
    morpheus: Optional[MorpheusConfig] = None
    num_compute_sms: int = 68
    num_cache_sms: int = 0
    power_gate_unused: bool = False
    capacity_scale: float = 1.0 / 16.0
    trace_accesses: int = 24_000
    warmup_accesses: int = 8_000
    request_interval_cycles: float = 2.0
    peak_warp_ipc_per_sm: float = 4.0
    mlp_per_sm: float = 320.0
    system_name: str = "BL"
    envelope: ResourceEnvelope = DEFAULT_ENVELOPE
    replay_mode: str = "replay"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_compute_sms <= 0:
            raise ValueError("num_compute_sms must be positive")
        if self.num_cache_sms < 0:
            raise ValueError("num_cache_sms must be non-negative")
        if self.num_compute_sms + self.num_cache_sms > self.gpu.num_sms:
            raise ValueError(
                "compute + cache SMs exceed the GPU's SM count "
                f"({self.num_compute_sms} + {self.num_cache_sms} > {self.gpu.num_sms})"
            )
        if self.morpheus is None and self.num_cache_sms:
            raise ValueError("cache-mode SMs require a Morpheus configuration")
        if self.trace_accesses <= 0:
            raise ValueError("trace_accesses must be positive")
        if self.warmup_accesses < 0:
            raise ValueError("warmup_accesses must be non-negative")
        if self.request_interval_cycles <= 0:
            raise ValueError("request_interval_cycles must be positive")
        if self.replay_mode not in REPLAY_MODES:
            raise ValueError(
                f"replay_mode must be one of {REPLAY_MODES}, got {self.replay_mode!r}"
            )

    def replay_params(self) -> Dict[str, Any]:
        """The replay-affecting half of the config (see :data:`REPLAY_FIELDS`)."""
        return {name: getattr(self, name) for name in REPLAY_FIELDS}

    def score_params(self) -> Dict[str, Any]:
        """The score-only analytic half of the config (see :data:`SCORE_FIELDS`)."""
        return {name: getattr(self, name) for name in SCORE_FIELDS}


# Every config field must be classified as replay-affecting or score-only;
# an unclassified field would silently fall out of both content keys.
_UNCLASSIFIED = {
    f.name for f in dataclasses.fields(SimulationConfig)
} - set(REPLAY_FIELDS) - set(SCORE_FIELDS)
if _UNCLASSIFIED:  # pragma: no cover - import-time guard
    raise RuntimeError(
        f"SimulationConfig fields missing from REPLAY_FIELDS/SCORE_FIELDS: "
        f"{sorted(_UNCLASSIFIED)}"
    )


class GPUSimulator:
    """Simulates one application on one system configuration."""

    def __init__(
        self,
        config: SimulationConfig,
        energy_model: EnergyModel | None = None,
        trace_cache: TraceCache | None = None,
    ) -> None:
        self.config = config
        self.performance_model = PerformanceModel(energy_model)
        self.trace_cache = trace_cache if trace_cache is not None else SHARED_TRACE_CACHE

    @property
    def energy_model(self) -> EnergyModel:
        """The energy model used by the scoring step."""
        return self.performance_model.energy_model

    # -- internal helpers ------------------------------------------------------------

    def _build_engine(self, profile: ApplicationProfile) -> MemoryHierarchyEngine:
        cfg = self.config
        cache_sm_ids = list(
            range(cfg.num_compute_sms, cfg.num_compute_sms + cfg.num_cache_sms)
        )
        compressibility = Compressibility(
            high_fraction=profile.compressible_high,
            low_fraction=profile.compressible_low,
        )
        return MemoryHierarchyEngine(
            gpu=cfg.gpu,
            morpheus=cfg.morpheus if cfg.num_cache_sms > 0 else None,
            cache_sm_ids=cache_sm_ids,
            compressibility=compressibility,
            capacity_scale=cfg.capacity_scale,
            request_interval_cycles=cfg.request_interval_cycles,
        )

    # -- the run -------------------------------------------------------------------------

    def replay(self, profile: ApplicationProfile) -> ReplayMeasurement:
        """Replay ``profile``'s trace through the hierarchy and return the measurement.

        The returned :class:`ReplayMeasurement` can be scored (and re-scored)
        by a :class:`~repro.sim.performance_model.PerformanceModel` without
        re-running the replay.

        In ``replay_mode="analytic"`` no trace is generated or replayed:
        the measurement is predicted in closed form from the profile
        (:func:`repro.sim.analytic.predict_measurement`).
        """
        cfg = self.config
        if cfg.replay_mode == "analytic":
            from repro.sim.analytic import predict_measurement

            return predict_measurement(profile, cfg)
        engine = self._build_engine(profile)
        warmup, trace = self.trace_cache.traces(
            profile,
            num_compute_sms=cfg.num_compute_sms,
            scale=cfg.capacity_scale,
            seed=cfg.seed,
            warmup_accesses=cfg.warmup_accesses,
            trace_accesses=cfg.trace_accesses,
        )
        if len(warmup):
            engine.run(warmup)
            engine.reset_counters()
        counters = engine.run(trace)
        return ReplayMeasurement(
            counters=counters,
            noc_average_latency_cycles=engine.network.stats.average_latency_cycles,
            predictor=engine.predictor_stats() if engine.controllers else None,
        )

    def run(self, profile: ApplicationProfile) -> SimulationStats:
        """Simulate ``profile`` on the configured system and return statistics."""
        measurement = self.replay(profile)
        return self.performance_model.score(profile, self.config, measurement)


def simulate(
    profile: ApplicationProfile,
    config: SimulationConfig,
    energy_model: EnergyModel | None = None,
) -> SimulationStats:
    """Convenience wrapper: simulate ``profile`` under ``config``."""
    return GPUSimulator(config, energy_model=energy_model).run(profile)
