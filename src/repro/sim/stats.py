"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.energy.model import EnergyBreakdown


@dataclass
class SimulationStats:
    """The full result of simulating one application on one system configuration.

    Attributes mirror the metrics the paper reports: IPC and execution time
    (Fig. 12 top), performance/watt (Fig. 12 bottom), LLC hit rates and MPKI
    (§7.4), interconnect load and latency (§7.4), off-chip traffic, and the
    bottleneck that limited performance.
    """

    application: str
    system: str
    num_compute_sms: int
    num_cache_sms: int = 0
    num_gated_sms: int = 0

    ipc: float = 0.0
    execution_cycles: float = 0.0
    instructions: float = 0.0

    l1_hit_rate: float = 0.0
    llc_hit_rate: float = 0.0
    conventional_llc_hit_rate: float = 0.0
    extended_llc_hit_rate: float = 0.0
    extended_fraction: float = 0.0
    llc_mpki: float = 0.0
    llc_apki: float = 0.0

    dram_accesses_per_ki: float = 0.0
    dram_bytes: float = 0.0
    dram_bandwidth_utilization: float = 0.0
    llc_throughput_gbps: float = 0.0
    extended_llc_throughput_gbps: float = 0.0

    noc_bytes: float = 0.0
    noc_injection_bytes_per_cycle: float = 0.0
    noc_average_latency_cycles: float = 0.0

    average_memory_latency_cycles: float = 0.0
    bottleneck: str = "compute"
    limits: Dict[str, float] = field(default_factory=dict)

    predictor_false_positive_rate: float = 0.0
    predictor_false_negatives: int = 0
    predicted_miss_fraction: float = 0.0

    energy: Optional[EnergyBreakdown] = None
    average_power_watts: float = 0.0
    performance_per_watt: float = 0.0

    @property
    def execution_time_seconds(self) -> float:
        """Execution time at a 1.44 GHz core clock."""
        return self.execution_cycles / (1.44e9) if self.execution_cycles else 0.0

    @property
    def total_sms_active(self) -> int:
        """SMs not power-gated."""
        return self.num_compute_sms + self.num_cache_sms

    def speedup_over(self, baseline: "SimulationStats") -> float:
        """Speedup of this run relative to ``baseline`` (same application)."""
        if self.execution_cycles <= 0 or baseline.execution_cycles <= 0:
            return 0.0
        return baseline.execution_cycles / self.execution_cycles

    def normalized_execution_time(self, baseline: "SimulationStats") -> float:
        """Execution time normalized to ``baseline`` (Fig. 12 top, lower is better)."""
        if baseline.execution_cycles <= 0:
            return 0.0
        return self.execution_cycles / baseline.execution_cycles

    def normalized_perf_per_watt(self, baseline: "SimulationStats") -> float:
        """Performance/watt normalized to ``baseline`` (Fig. 12 bottom, higher is better)."""
        if baseline.performance_per_watt <= 0:
            return 0.0
        return self.performance_per_watt / baseline.performance_per_watt

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.application:>8s} on {self.system:<22s} "
            f"IPC={self.ipc:7.2f}  LLC hit={self.llc_hit_rate:5.1%}  "
            f"MPKI={self.llc_mpki:6.1f}  bottleneck={self.bottleneck}"
        )
