"""Vectorized batch scoring of one replay measurement (numpy-backed).

The scalar :meth:`~repro.sim.performance_model.PerformanceModel.score` is
the hot loop of every analytic sweep and of the co-run contention fixed
point: it re-derives per-measurement invariants (hit rates, bytes per
kilo-instruction, channel capacities) on every call and then evaluates a
handful of float expressions that actually depend on the score-tier
parameters.  :class:`MeasurementScorer` splits those halves:

* ``__init__`` hoists everything that depends only on (profile, replay
  config, measurement, energy constants) — computed once per measurement;
* :meth:`score_config` / :meth:`score_envelope` are scalar fast paths over
  the hoisted state (used per-iteration by the contention solver);
* :meth:`score_batch` scores a whole grid of score-parameter variants in
  one numpy pass — every array expression preserves the scalar code's
  evaluation order, so results are **bit-identical** to calling
  ``PerformanceModel.score`` per point (IEEE-754 float64 elementwise ops
  match CPython float ops when the operation order is preserved);
* :meth:`score_energy_batch` shares one roofline evaluation across a grid
  of energy-constant variants.

numpy is optional at runtime: without it every batch API transparently
falls back to the scalar loop (same results, scalar speed).  The
dependency is declared in ``setup.py``.
"""

from __future__ import annotations

import gc as _gc
import operator
from itertools import repeat as _repeat
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.sim.stats import SimulationStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.performance_model import ReplayMeasurement, ResourceEnvelope
    from repro.sim.simulator import SimulationConfig
    from repro.workloads.applications import ApplicationProfile

try:  # pragma: no cover - exercised via the fallback test's monkeypatch
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Below this batch size the fixed numpy dispatch overhead outweighs the
#: per-point win; the scalar fast path is used instead (identical results).
MIN_VECTOR_BATCH = 8

_INF = float("inf")

#: String score-tier input gathered per config for the batch path.
_SYSTEM_NAME = operator.attrgetter("system_name")


def have_numpy() -> bool:
    """Whether the vectorized path is available (numpy importable)."""
    return _np is not None


def require_numpy() -> None:
    """Raise a clear error when numpy is missing but explicitly required."""
    if _np is None:
        raise RuntimeError(
            "numpy is required for vectorized batch scoring but is not "
            "installed; install it (declared in setup.py: `pip install "
            "numpy`) or use the scalar PerformanceModel.score path"
        )


class MeasurementScorer:
    """Scores one measurement under many score-tier parameter variants.

    All replay-side quantities are hoisted in ``__init__``; the per-call
    work touches only the :data:`~repro.sim.simulator.SCORE_FIELDS`
    parameters (power gating, peak IPC, MLP, system label, envelope) and —
    for :meth:`score_energy_batch` — the energy constants.

    Args:
        profile: Application the measurement belongs to.
        config: A config carrying the measurement's replay parameters; its
            score-tier fields serve as defaults for :meth:`score_envelope`.
        measurement: The replay measurement being (re-)scored.
        energy_model: Energy constants for the fixed-energy paths.
    """

    def __init__(
        self,
        profile: "ApplicationProfile",
        config: "SimulationConfig",
        measurement: "ReplayMeasurement",
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        from repro.sim.performance_model import shared_bandwidth_capacities

        self.profile = profile
        self.base_config = config
        self.measurement = measurement
        self.energy_model = energy_model or EnergyModel()

        gpu = config.gpu
        counters = measurement.counters
        self._gpu = gpu

        # -- replay-side invariants (the scalar score()'s preamble) -------------
        self._l1_hit = profile.l1_hit_rate_for_capacity(gpu.l1_shared_bytes_per_sm)
        self._apki_l1 = profile.l1_apki
        self._apki_llc = profile.llc_apki(self._l1_hit)
        block = gpu.block_size

        accesses = max(1, counters.llc_accesses)
        self._accesses = accesses
        self._llc_hit_rate = counters.llc_hit_rate
        self._llc_mpki = self._apki_llc * (1.0 - counters.llc_hit_rate)
        self._dram_apki = self._apki_llc * counters.dram_access_fraction

        self._conv_bpki = counters.conventional_bytes / accesses * self._apki_llc
        self._ext_bpki = counters.extended_bytes / accesses * self._apki_llc
        self._dram_bpki = counters.dram_bytes / accesses * self._apki_llc
        self._noc_bpki = counters.noc_bytes / accesses * self._apki_llc
        self._l1_bpki = self._apki_l1 * block

        capacities = shared_bandwidth_capacities(gpu)
        self._cap_dram = capacities["dram"]
        self._cap_llc = capacities["llc"]
        self._cap_noc = capacities["noc"]

        # bandwidth_limit() divides by (bytes_per_ki / 1000.0); hoist the
        # divisor, or None when the scalar guard forces an infinite limit.
        self._dram_div = self._bpki_divisor(self._dram_bpki)
        self._llc_div = self._bpki_divisor(self._conv_bpki)
        self._noc_div = self._bpki_divisor(self._noc_bpki)

        self._num_compute = config.num_compute_sms
        self._num_cache = config.num_cache_sms
        self._raw_extra = gpu.num_sms - config.num_compute_sms - config.num_cache_sms
        self._compute_eff = profile.compute_efficiency

        self._has_ext = config.num_cache_sms > 0 and config.morpheus is not None
        if self._has_ext:
            ext_bpc = (
                config.morpheus.timing.per_sm_extended_bandwidth_gbps
                / gpu.core_clock_ghz
                * config.num_cache_sms
            )
            div = self._bpki_divisor(self._ext_bpki)
            self._ext_limit = _INF if div is None else ext_bpc / div
        else:
            self._ext_limit = _INF

        self._avg_latency = max(1.0, counters.average_latency_cycles)
        self._inv_apki_k = (
            (1000.0 / self._apki_llc) if self._apki_llc > 1e-9 else None
        )

        self._instructions = float(profile.instructions)
        kilo_instructions = self._instructions / 1000.0
        self._dram_bytes_total = self._dram_bpki * kilo_instructions
        self._conv_bytes_total = self._conv_bpki * kilo_instructions
        self._ext_bytes_total = self._ext_bpki * kilo_instructions
        self._l1_bytes_total = self._l1_bpki * kilo_instructions
        self._noc_bytes_total = self._noc_bpki * kilo_instructions

        self._ghz9 = gpu.core_clock_ghz * 1e9
        self._dram_total_bw = max(1e-9, gpu.dram.total_bandwidth_gbps)
        self._convext_bpki = self._conv_bpki + self._ext_bpki
        self._noc_bpki_over_k = self._noc_bpki / 1000.0

        predictor = measurement.predictor
        self._pred_fpr = predictor.false_positive_rate if predictor is not None else 0.0
        self._pred_fn = predictor.false_negatives if predictor is not None else 0
        self._pred_miss_frac = (
            counters.predicted_misses / accesses if accesses else 0.0
        )
        self._noc_avg_lat = measurement.noc_average_latency_cycles

        # -- fixed-energy-model invariants (used by the vectorized path) --------
        e = self.energy_model.energies
        pj_to_j = 1e-12
        dram_j = self._dram_bytes_total * e.dram_pj_per_byte * pj_to_j
        llc_j = self._conv_bytes_total * e.llc_pj_per_byte * pj_to_j
        ext_j = self._ext_bytes_total * e.extended_llc_pj_per_byte * pj_to_j
        l1_j = self._l1_bytes_total * e.l1_pj_per_byte * pj_to_j
        noc_j = self._noc_bytes_total * e.noc_pj_per_byte * pj_to_j
        core_j = self._instructions * e.core_dynamic_pj_per_instruction * pj_to_j
        self._fixed_component_j = (dram_j, llc_j, ext_j, l1_j, noc_j, core_j)
        # EnergyBreakdown.total_j sums left-to-right; hoist the fixed prefix
        # with the same association so batch totals match bit-for-bit.
        self._bytes_core_j = ((((dram_j + llc_j) + ext_j) + l1_j) + noc_j) + core_j
        # static_watts has exactly two variants (power-gated or not);
        # replicate EnergyModel.compute()'s expression order for both.
        self._sw_gated = (
            e.base_static_watts
            + self._num_compute * e.sm_static_watts
            + self._num_cache * e.sm_cache_mode_watts
            + self._raw_extra * 0.02 * e.sm_static_watts
        )
        self._sw_plain = (
            e.base_static_watts
            + (self._num_compute + self._raw_extra) * e.sm_static_watts
            + self._num_cache * e.sm_cache_mode_watts
            + 0 * 0.02 * e.sm_static_watts
        )
        self._controller_watts = e.morpheus_controller_watts
        self._e_ghz9 = e.core_clock_ghz * 1e9

    @staticmethod
    def _bpki_divisor(bytes_per_ki: float) -> Optional[float]:
        if bytes_per_ki <= 1e-9:
            return None
        return bytes_per_ki / 1000.0

    # -- replay-compatibility guard ----------------------------------------------------

    def matches_replay(self, config: "SimulationConfig") -> bool:
        """Whether ``config`` shares this scorer's replay parameters."""
        from repro.sim.simulator import REPLAY_FIELDS

        base = self.base_config
        if config is base:
            return True
        for name in REPLAY_FIELDS:
            ours = getattr(base, name)
            theirs = getattr(config, name)
            # Identity-first: sweeps share the same gpu/morpheus objects,
            # so the nested dataclass comparison almost never runs.
            if theirs is not ours and theirs != ours:
                return False
        return True

    # -- scalar fast paths -------------------------------------------------------------

    def _roofline(self, peak: float, mlp: float, envelope: "ResourceEnvelope"):
        """The IPC limits for one score-parameter point (exact scalar order)."""
        limits: Dict[str, float] = {}
        limits["compute"] = self._num_compute * peak * self._compute_eff
        limits["dram_bandwidth"] = (
            _INF
            if self._dram_div is None
            else (self._cap_dram * envelope.dram_bandwidth_share) / self._dram_div
        )
        limits["llc_bandwidth"] = (
            _INF
            if self._llc_div is None
            else (self._cap_llc * envelope.llc_bandwidth_share) / self._llc_div
        )
        if self._has_ext:
            limits["extended_llc_bandwidth"] = self._ext_limit
        limits["noc_bandwidth"] = (
            _INF
            if self._noc_div is None
            else (self._cap_noc * envelope.noc_bandwidth_share) / self._noc_div
        )
        if self._inv_apki_k is not None:
            limits["latency"] = (
                self._num_compute * mlp / self._avg_latency * self._inv_apki_k
            )
        else:
            limits["latency"] = _INF
        return limits

    def _score_scalar(
        self,
        power_gate_unused: bool,
        peak: float,
        mlp: float,
        system_name: str,
        envelope: "ResourceEnvelope",
        energy_model: Optional[EnergyModel] = None,
        _limits: Optional[Dict[str, float]] = None,
    ) -> SimulationStats:
        """One point over the hoisted state — bit-identical to the scalar score."""
        energy_model = energy_model or self.energy_model
        limits = dict(_limits) if _limits is not None else self._roofline(peak, mlp, envelope)
        ipc = min(limits.values())
        bottleneck = min(limits, key=limits.get)
        execution_cycles = self._instructions / max(ipc, 1e-9)

        num_gated = 0
        num_active_extra = self._raw_extra
        if power_gate_unused:
            num_gated = num_active_extra
            num_active_extra = 0
        breakdown = energy_model.compute(
            execution_cycles=execution_cycles,
            instructions=self._instructions,
            dram_bytes=self._dram_bytes_total,
            llc_bytes=self._conv_bytes_total,
            extended_llc_bytes=self._ext_bytes_total,
            l1_bytes=self._l1_bytes_total,
            noc_bytes=self._noc_bytes_total,
            num_compute_sms=self._num_compute + num_active_extra,
            num_cache_sms=self._num_cache,
            num_gated_sms=num_gated,
            morpheus_enabled=self._has_ext,
        )
        perf_per_watt = energy_model.performance_per_watt(ipc, breakdown, execution_cycles)
        avg_power = energy_model.average_power_watts(breakdown, execution_cycles)

        seconds_per_ki = (1000.0 / max(ipc, 1e-9)) / self._ghz9

        def throughput_gbps(bytes_per_ki: float) -> float:
            if seconds_per_ki <= 0:
                return 0.0
            return bytes_per_ki / seconds_per_ki / 1e9

        return SimulationStats(
            application=self.profile.name,
            system=system_name,
            num_compute_sms=self._num_compute,
            num_cache_sms=self._num_cache,
            num_gated_sms=num_gated,
            ipc=ipc,
            execution_cycles=execution_cycles,
            instructions=self._instructions,
            l1_hit_rate=self._l1_hit,
            llc_hit_rate=self._llc_hit_rate,
            conventional_llc_hit_rate=self.measurement.counters.conventional_hit_rate,
            extended_llc_hit_rate=self.measurement.counters.extended_hit_rate,
            extended_fraction=self.measurement.counters.extended_fraction,
            llc_mpki=self._llc_mpki,
            llc_apki=self._apki_llc,
            dram_accesses_per_ki=self._dram_apki,
            dram_bytes=self._dram_bytes_total,
            dram_bandwidth_utilization=min(
                1.0, throughput_gbps(self._dram_bpki) / self._dram_total_bw
            ),
            llc_throughput_gbps=throughput_gbps(self._convext_bpki),
            extended_llc_throughput_gbps=throughput_gbps(self._ext_bpki),
            noc_bytes=self._noc_bytes_total,
            noc_injection_bytes_per_cycle=self._noc_bpki_over_k * ipc,
            noc_average_latency_cycles=self._noc_avg_lat,
            average_memory_latency_cycles=self._avg_latency,
            bottleneck=bottleneck,
            limits=limits,
            predictor_false_positive_rate=self._pred_fpr,
            predictor_false_negatives=self._pred_fn,
            predicted_miss_fraction=self._pred_miss_frac,
            energy=breakdown,
            average_power_watts=avg_power,
            performance_per_watt=perf_per_watt,
        )

    def score_config(self, config: "SimulationConfig") -> SimulationStats:
        """Score one config variant (scalar; shares the hoisted invariants)."""
        return self._score_scalar(
            config.power_gate_unused,
            config.peak_warp_ipc_per_sm,
            config.mlp_per_sm,
            config.system_name,
            config.envelope,
        )

    def score_envelope(self, envelope: "ResourceEnvelope") -> SimulationStats:
        """Score the base config under ``envelope`` (the contention hot path).

        Equivalent to ``score_config(replace(base_config, envelope=...))``
        without constructing (and re-validating) a config per iteration.
        """
        base = self.base_config
        return self._score_scalar(
            base.power_gate_unused,
            base.peak_warp_ipc_per_sm,
            base.mlp_per_sm,
            base.system_name,
            envelope,
        )

    def score_energy_batch(
        self,
        config: "SimulationConfig",
        energy_models: Sequence[EnergyModel],
    ) -> List[SimulationStats]:
        """Score ``config`` under each energy model, sharing one roofline pass.

        The roofline (limits, IPC, bottleneck) is independent of the energy
        constants, so it is evaluated once; each grid point then runs only
        the energy arithmetic — through the real :class:`EnergyModel`, so
        results are bit-identical to scoring each point from scratch.
        """
        limits = self._roofline(
            config.peak_warp_ipc_per_sm, config.mlp_per_sm, config.envelope
        )
        return [
            self._score_scalar(
                config.power_gate_unused,
                config.peak_warp_ipc_per_sm,
                config.mlp_per_sm,
                config.system_name,
                config.envelope,
                energy_model=energy_model,
                _limits=limits,
            )
            for energy_model in energy_models
        ]

    # -- the vectorized batch ----------------------------------------------------------

    def score_batch(self, configs: Sequence["SimulationConfig"]) -> List[SimulationStats]:
        """Score every config variant in one vectorized pass.

        Configs must share this scorer's replay parameters (the caller
        guards that; see ``PerformanceModel.score_batch``).  Falls back to
        the scalar loop for tiny batches or when numpy is unavailable —
        results are identical either way.
        """
        count = len(configs)
        if count == 0:
            return []
        if _np is None or count < MIN_VECTOR_BATCH:
            return [self.score_config(config) for config in configs]

        # The batch allocates a bounded burst of result containers (a few
        # per point, most of them live on return), so generational GC runs
        # triggered mid-loop only rescan the growing result set.  Pause
        # collection for the duration; allocations stay tracked and are
        # swept by the next collection after re-enable.
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            return self._score_batch_vectorized(configs, count)
        finally:
            if gc_was_enabled:
                _gc.enable()

    def _score_batch_vectorized(
        self, configs: Sequence["SimulationConfig"], count: int
    ) -> List[SimulationStats]:
        np = _np
        peak = np.array([c.peak_warp_ipc_per_sm for c in configs], dtype=np.float64)
        mlp = np.array([c.mlp_per_sm for c in configs], dtype=np.float64)
        power_gate = np.array([c.power_gate_unused for c in configs], dtype=bool)
        envs = [c.envelope for c in configs]
        d_share = np.array(
            [e.dram_bandwidth_share for e in envs], dtype=np.float64
        )
        l_share = np.array(
            [e.llc_bandwidth_share for e in envs], dtype=np.float64
        )
        n_share = np.array(
            [e.noc_bandwidth_share for e in envs], dtype=np.float64
        )

        # --- IPC limits (expression order mirrors the scalar path) -------------
        rows: List[tuple] = []
        rows.append(("compute", (self._num_compute * peak) * self._compute_eff))
        rows.append(
            (
                "dram_bandwidth",
                _INF
                if self._dram_div is None
                else (self._cap_dram * d_share) / self._dram_div,
            )
        )
        rows.append(
            (
                "llc_bandwidth",
                _INF
                if self._llc_div is None
                else (self._cap_llc * l_share) / self._llc_div,
            )
        )
        if self._has_ext:
            rows.append(("extended_llc_bandwidth", self._ext_limit))
        rows.append(
            (
                "noc_bandwidth",
                _INF
                if self._noc_div is None
                else (self._cap_noc * n_share) / self._noc_div,
            )
        )
        rows.append(
            (
                "latency",
                _INF
                if self._inv_apki_k is None
                else ((self._num_compute * mlp) / self._avg_latency) * self._inv_apki_k,
            )
        )
        limit_names = tuple(name for name, _ in rows)
        matrix = np.empty((len(rows), count), dtype=np.float64)
        for row_index, (_, values) in enumerate(rows):
            matrix[row_index] = values
        ipc = matrix.min(axis=0)
        # First row achieving the minimum — same tie-break as the scalar
        # ``min(limits, key=limits.get)`` over the insertion-ordered dict.
        bottleneck_idx = matrix.argmin(axis=0)
        execution_cycles = self._instructions / np.maximum(ipc, 1e-9)

        # --- energy (fixed model; only the static/controller terms vary) -------
        num_gated = np.where(power_gate, self._raw_extra, 0)
        static_watts = np.where(power_gate, self._sw_gated, self._sw_plain)
        seconds = execution_cycles / self._e_ghz9
        static_j = static_watts * seconds
        if self._has_ext:
            controller_j = self._controller_watts * seconds
        else:
            controller_j = np.zeros(count)
        total_j = (self._bytes_core_j + static_j) + controller_j

        with np.errstate(divide="ignore", invalid="ignore"):
            watts = total_j / seconds
            ppw_raw = ipc / watts
        live = (execution_cycles > 0) & (seconds > 0)
        avg_power = np.where(live, watts, 0.0)
        perf_per_watt = np.where(live & (watts > 0), ppw_raw, 0.0)

        # --- throughputs at the modelled IPC ------------------------------------
        seconds_per_ki = (1000.0 / np.maximum(ipc, 1e-9)) / self._ghz9
        with np.errstate(divide="ignore", invalid="ignore"):
            tp_dram = (self._dram_bpki / seconds_per_ki) / 1e9
            tp_llc = (self._convext_bpki / seconds_per_ki) / 1e9
            tp_ext = (self._ext_bpki / seconds_per_ki) / 1e9
        positive = seconds_per_ki > 0
        tp_dram = np.where(positive, tp_dram, 0.0)
        tp_llc = np.where(positive, tp_llc, 0.0)
        tp_ext = np.where(positive, tp_ext, 0.0)
        dram_util = np.minimum(1.0, tp_dram / self._dram_total_bw)
        noc_injection = self._noc_bpki_over_k * ipc

        # --- per-point construction (exact Python floats via tolist) ------------
        ipc_l = ipc.tolist()
        cycles_l = execution_cycles.tolist()
        static_l = static_j.tolist()
        controller_l = controller_j.tolist()
        power_l = avg_power.tolist()
        ppw_l = perf_per_watt.tolist()
        util_l = dram_util.tolist()
        tp_llc_l = tp_llc.tolist()
        noc_inj_l = noc_injection.tolist()
        system_l = list(map(_SYSTEM_NAME, configs))
        # Fancy-indexing an object array gathers the per-point bottleneck
        # labels ~6x faster than a Python-level map over the indices.
        bottleneck_l = np.array(limit_names, dtype=object)[bottleneck_idx].tolist()
        # Per-limit value columns (contiguous matrix rows).  The extended
        # row only exists for Morpheus configs; a repeat() placeholder
        # keeps the loop's zip shape fixed without a per-point cost.
        has_ext = self._has_ext
        if has_ext:
            (row_compute_l, row_dram_l, row_llc_l, row_ext_l, row_noc_l,
             row_latency_l) = (matrix[i].tolist() for i in range(6))
        else:
            row_compute_l, row_dram_l, row_llc_l, row_noc_l, row_latency_l = (
                matrix[i].tolist() for i in range(5)
            )
            row_ext_l = _repeat(0.0)

        dram_j, llc_j, ext_j, l1_j, noc_j, core_j = self._fixed_component_j
        template = vars(
            self._score_scalar(
                configs[0].power_gate_unused,
                configs[0].peak_warp_ipc_per_sm,
                configs[0].mlp_per_sm,
                configs[0].system_name,
                configs[0].envelope,
            )
        )
        # The loops below are the batch's per-point floor, so they stick to
        # C-level dict plumbing: both dataclasses are plain (mutable,
        # slot-less), so `__new__` plus a `__dict__` assignment skips their
        # constructors; `template.copy()` plus one subscript store per
        # varying field beats rebuilding the 32-key dict from a display;
        # and the per-point limits dict is a literal-key display (5 or 6
        # keys, decided once per batch) rather than a `dict(zip(...))`.
        results: List[SimulationStats] = []
        append = results.append
        new_energy = EnergyBreakdown.__new__
        new_stats = SimulationStats.__new__
        # Sweep fast path: the dominant caller shape is a single-config
        # sweep (one system, one gating choice, no extended tier) where the
        # ``system``, ``num_gated_sms`` and ``extended_llc_throughput_gbps``
        # columns are batch-constant.  Bit-identity pins the template — the
        # scalar score of configs[0] — to exactly those constant values, so
        # their zip columns and per-point stores can be elided outright.
        if (
            not has_ext
            and len(set(system_l)) == 1
            and bool((num_gated == num_gated[0]).all())
            and bool((tp_ext == tp_ext[0]).all())
        ):
            # No extended tier also means the controller draws nothing, so
            # the energy dict varies in ``static_j`` alone: copy a template
            # and store one key instead of rebuilding the 8-key display.
            # (A C-level ``dict(template, **varying)`` merge measures
            # slower here — the interpreter specializes these stores.)
            # The limits dicts come from a dedicated listcomp first: the
            # narrow comprehension plus a 10-column main loop measures
            # ~10% faster than fusing the display into one 14-column loop.
            energy_template = vars(template["energy"]).copy()
            limits_l = [
                {
                    "compute": limit_compute,
                    "dram_bandwidth": limit_dram,
                    "llc_bandwidth": limit_llc,
                    "noc_bandwidth": limit_noc,
                    "latency": limit_latency,
                }
                for limit_compute, limit_dram, limit_llc, limit_noc,
                limit_latency in zip(
                    row_compute_l, row_dram_l, row_llc_l, row_noc_l,
                    row_latency_l,
                )
            ]
            # Allocation happens at C speed up front — `map(cls.__new__,
            # repeat(cls))` builds the bare objects and `map(dict.copy,
            # repeat(template))` their field dicts without touching the
            # interpreter loop, which then only stores the varying values.
            results = list(map(new_stats, _repeat(SimulationStats, count)))
            energies = map(new_energy, _repeat(EnergyBreakdown, count))
            fields_it = map(dict.copy, _repeat(template, count))
            edicts_it = map(dict.copy, _repeat(energy_template, count))
            for (
                stats, energy, fields, fields_energy, point_ipc, cycles,
                util, point_tp_llc, noc_inj, bottleneck, power, ppw,
                static_joules, limits,
            ) in zip(
                results, energies, fields_it, edicts_it, ipc_l, cycles_l,
                util_l, tp_llc_l, noc_inj_l, bottleneck_l, power_l, ppw_l,
                static_l, limits_l,
            ):
                fields_energy["static_j"] = static_joules
                energy.__dict__ = fields_energy
                fields["ipc"] = point_ipc
                fields["execution_cycles"] = cycles
                fields["dram_bandwidth_utilization"] = util
                fields["llc_throughput_gbps"] = point_tp_llc
                fields["noc_injection_bytes_per_cycle"] = noc_inj
                fields["bottleneck"] = bottleneck
                fields["limits"] = limits
                fields["energy"] = energy
                fields["average_power_watts"] = power
                fields["performance_per_watt"] = ppw
                stats.__dict__ = fields
            return results

        gated_l = num_gated.tolist()
        tp_ext_l = tp_ext.tolist()
        for (
            system_name, gated, point_ipc, cycles, util, point_tp_llc,
            point_tp_ext, noc_inj, bottleneck, power, ppw, static_joules,
            controller_joules, limit_compute, limit_dram, limit_llc,
            limit_ext, limit_noc, limit_latency,
        ) in zip(
            system_l, gated_l, ipc_l, cycles_l, util_l, tp_llc_l, tp_ext_l,
            noc_inj_l, bottleneck_l, power_l, ppw_l, static_l, controller_l,
            row_compute_l, row_dram_l, row_llc_l, row_ext_l, row_noc_l,
            row_latency_l,
        ):
            energy = new_energy(EnergyBreakdown)
            energy.__dict__ = {
                "dram_j": dram_j,
                "llc_j": llc_j,
                "extended_llc_j": ext_j,
                "l1_j": l1_j,
                "noc_j": noc_j,
                "core_dynamic_j": core_j,
                "static_j": static_joules,
                "morpheus_controller_j": controller_joules,
            }
            if has_ext:
                limits = {
                    "compute": limit_compute,
                    "dram_bandwidth": limit_dram,
                    "llc_bandwidth": limit_llc,
                    "extended_llc_bandwidth": limit_ext,
                    "noc_bandwidth": limit_noc,
                    "latency": limit_latency,
                }
            else:
                limits = {
                    "compute": limit_compute,
                    "dram_bandwidth": limit_dram,
                    "llc_bandwidth": limit_llc,
                    "noc_bandwidth": limit_noc,
                    "latency": limit_latency,
                }
            fields = template.copy()
            fields["system"] = system_name
            fields["num_gated_sms"] = gated
            fields["ipc"] = point_ipc
            fields["execution_cycles"] = cycles
            fields["dram_bandwidth_utilization"] = util
            fields["llc_throughput_gbps"] = point_tp_llc
            fields["extended_llc_throughput_gbps"] = point_tp_ext
            fields["noc_injection_bytes_per_cycle"] = noc_inj
            fields["bottleneck"] = bottleneck
            fields["limits"] = limits
            fields["energy"] = energy
            fields["average_power_watts"] = power
            fields["performance_per_watt"] = ppw
            stats = new_stats(SimulationStats)
            stats.__dict__ = fields
            append(stats)
        return results
