"""The nine evaluated systems (§6) and helpers to run them."""

from repro.systems.baseline import (
    BaselineSystem,
    FrequencyBoostSystem,
    IBL4xLLCSystem,
    ImprovedBaselineSystem,
    UnifiedSMMemSystem,
)
from repro.systems.morpheus_system import MorpheusSystem, MorpheusVariant
from repro.systems.registry import (
    EVALUATED_SYSTEMS,
    SCENARIO_SYSTEMS,
    EvaluatedSystem,
    evaluate_application,
    evaluate_all_systems,
    get_system,
    run_scenario,
)

__all__ = [
    "BaselineSystem",
    "EVALUATED_SYSTEMS",
    "EvaluatedSystem",
    "FrequencyBoostSystem",
    "IBL4xLLCSystem",
    "ImprovedBaselineSystem",
    "MorpheusSystem",
    "MorpheusVariant",
    "SCENARIO_SYSTEMS",
    "UnifiedSMMemSystem",
    "evaluate_all_systems",
    "evaluate_application",
    "get_system",
    "run_scenario",
]
