"""The five non-Morpheus evaluated systems (§6).

* **BL** — the plain RTX 3080 baseline using all 68 SMs.  For fairness the
  paper adds Morpheus's extra per-partition storage (21 KiB x 10 partitions)
  to BL's conventional LLC; we do the same.
* **IBL** — improved baseline: use the per-application best number of SMs and
  power-gate the rest.
* **IBL-4x-LLC** — IBL with a 4x conventional LLC (no latency/power penalty);
  the paper's idealized upper bound.
* **Frequency-Boost** — IBL that spends the power saved by gated SMs on
  running the memory system (NoC, LLC, DRAM) 10-20 % faster.
* **Unified-SM-Mem** — IBL with the unused register file space folded into
  the L1 data cache (no latency penalty).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.simulator import SimulationConfig
from repro.sim.stats import SimulationStats
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY, get_fidelity
from repro.workloads.applications import ApplicationProfile

#: Candidate SM counts used by best-configuration searches (spanning the
#: 10..68 range of Figure 1 at roughly even spacing).
DEFAULT_SM_CANDIDATES: Tuple[int, ...] = (10, 18, 24, 34, 42, 53, 60, 68)


class EvaluatedSystem(abc.ABC):
    """Base class for one evaluated system configuration.

    All simulations route through the process-wide
    :class:`~repro.runner.runner.ExperimentRunner`, so every leaf run —
    including the best-SM-count searches — is cached on disk (replay
    measurements and scored stats in separate tiers) and can be executed by
    parallel workers; analytic-parameter changes re-score the search's
    cached measurements instead of re-replaying its traces.
    """

    name: str = "system"

    def __init__(
        self,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Fidelity | str = STANDARD_FIDELITY,
        seed: int = 1,
    ) -> None:
        self.gpu = gpu
        self.fidelity = get_fidelity(fidelity)
        self.seed = seed

    @abc.abstractmethod
    def evaluate(self, profile: ApplicationProfile) -> SimulationStats:
        """Simulate ``profile`` on this system and return its statistics."""

    # -- shared helpers ----------------------------------------------------------

    def _config(
        self,
        gpu: GPUConfig,
        num_compute_sms: int,
        power_gate_unused: bool,
        search_fidelity: bool = False,
        **kwargs,
    ) -> SimulationConfig:
        fidelity = self.fidelity
        kwargs.setdefault("seed", self.seed)
        return SimulationConfig(
            gpu=gpu,
            num_compute_sms=num_compute_sms,
            power_gate_unused=power_gate_unused,
            capacity_scale=fidelity.capacity_scale,
            trace_accesses=(
                fidelity.search_trace_accesses if search_fidelity else fidelity.trace_accesses
            ),
            warmup_accesses=(
                fidelity.search_warmup_accesses if search_fidelity else fidelity.warmup_accesses
            ),
            system_name=self.name,
            replay_mode=fidelity.mode,
            **kwargs,
        )

    def _simulate(
        self,
        profile: ApplicationProfile,
        gpu: GPUConfig,
        num_compute_sms: int,
        power_gate_unused: bool,
        search_fidelity: bool = False,
        **kwargs,
    ) -> SimulationStats:
        from repro.runner.runner import active_runner

        config = self._config(
            gpu, num_compute_sms, power_gate_unused, search_fidelity, **kwargs
        )
        return active_runner().simulate(profile, config)

    def _best_sm_count(
        self,
        profile: ApplicationProfile,
        gpu: GPUConfig,
        candidates: Sequence[int] = DEFAULT_SM_CANDIDATES,
        power_gate_unused: bool = True,
    ) -> int:
        """Find the SM count maximizing IPC for ``profile`` on ``gpu``."""
        from repro.runner.runner import active_runner

        counts = [count for count in candidates if count <= gpu.num_sms]
        configs = [
            self._config(gpu, count, power_gate_unused, search_fidelity=True)
            for count in counts
        ]
        all_stats = active_runner().run_configs(profile, configs)
        best_count = counts[0]
        best_ipc = -1.0
        for count, stats in zip(counts, all_stats):
            if stats.ipc > best_ipc:
                best_ipc = stats.ipc
                best_count = count
        return best_count


class BaselineSystem(EvaluatedSystem):
    """BL: all 68 SMs active, conventional LLC enlarged by Morpheus's storage budget."""

    name = "BL"

    def __init__(
        self,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Fidelity = STANDARD_FIDELITY,
        seed: int = 1,
    ) -> None:
        super().__init__(gpu, fidelity, seed)
        # Fairness adjustment: fold the 21 KiB x num_partitions of Morpheus
        # controller storage into BL's conventional LLC.
        extra = 21 * 1024 * gpu.llc.num_partitions
        self._gpu = gpu.with_llc_capacity(gpu.llc.capacity_bytes + extra)

    def evaluate(self, profile: ApplicationProfile) -> SimulationStats:
        return self._simulate(
            profile, self._gpu, self._gpu.num_sms, power_gate_unused=False
        )


class ImprovedBaselineSystem(EvaluatedSystem):
    """IBL: per-application best SM count, unused SMs power-gated."""

    name = "IBL"

    def best_sm_count(self, profile: ApplicationProfile) -> int:
        """Per-application best SM count (Table 3, row 'IBL')."""
        return self._best_sm_count(profile, self.gpu)

    def evaluate(self, profile: ApplicationProfile) -> SimulationStats:
        best = self.best_sm_count(profile)
        return self._simulate(profile, self.gpu, best, power_gate_unused=True)


class IBL4xLLCSystem(EvaluatedSystem):
    """IBL-4x-LLC: the idealized baseline with a quadruple-sized conventional LLC."""

    name = "IBL-4X-LLC"

    def __init__(
        self,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Fidelity = STANDARD_FIDELITY,
        scale_factor: float = 4.0,
        seed: int = 1,
    ) -> None:
        super().__init__(gpu, fidelity, seed)
        self.scale_factor = scale_factor
        self._gpu = gpu.with_llc_scale(scale_factor)

    def evaluate(self, profile: ApplicationProfile) -> SimulationStats:
        best = self._best_sm_count(profile, self._gpu)
        return self._simulate(profile, self._gpu, best, power_gate_unused=True)


class FrequencyBoostSystem(EvaluatedSystem):
    """Frequency-Boost: IBL with 10-20 % faster memory-system clocks.

    The boost factor grows with the number of power-gated SMs, mirroring the
    paper's description of reinvesting the gated cores' power budget.
    """

    name = "Frequency-Boost"

    def boost_factor(self, num_gated_sms: int) -> float:
        """Memory-system frequency multiplier for ``num_gated_sms`` gated SMs."""
        if num_gated_sms < 0:
            raise ValueError("num_gated_sms must be non-negative")
        fraction_gated = num_gated_sms / self.gpu.num_sms
        return 1.0 + min(0.20, 0.10 + 0.10 * fraction_gated)

    def evaluate(self, profile: ApplicationProfile) -> SimulationStats:
        best = self._best_sm_count(profile, self.gpu)
        gated = self.gpu.num_sms - best
        boosted = self.gpu.with_frequency_boost(self.boost_factor(gated))
        return self._simulate(profile, boosted, best, power_gate_unused=True)


class UnifiedSMMemSystem(EvaluatedSystem):
    """Unified-SM-Mem: IBL with unused register-file space folded into the L1.

    The application is assumed to leave ~60 % of the register file unused
    (typical occupancy-limited kernels), which is added to the unified
    L1/shared capacity with no latency penalty.
    """

    name = "Unified-SM-Mem"

    def __init__(
        self,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Fidelity = STANDARD_FIDELITY,
        unused_register_fraction: float = 0.6,
        seed: int = 1,
    ) -> None:
        super().__init__(gpu, fidelity, seed)
        if not 0.0 <= unused_register_fraction <= 1.0:
            raise ValueError("unused_register_fraction must be in [0, 1]")
        self.unused_register_fraction = unused_register_fraction
        extra = int(gpu.register_file_bytes_per_sm * unused_register_fraction)
        self._gpu = gpu.with_extra_l1(extra)

    def evaluate(self, profile: ApplicationProfile) -> SimulationStats:
        best = self._best_sm_count(profile, self._gpu)
        return self._simulate(profile, self._gpu, best, power_gate_unused=True)
