"""Simulation fidelity presets.

Every evaluated system runs the same trace-driven model; fidelity presets
control how long the replayed traces are and how aggressively capacities are
downscaled.  ``FAST`` keeps unit/integration tests quick, ``STANDARD`` is
used by the benchmark harness that regenerates the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.simulator import REPLAY_MODES


@dataclass(frozen=True)
class Fidelity:
    """Trace sizing knobs shared by all evaluated systems.

    Attributes:
        capacity_scale: Factor applied to cache capacities and footprints.
        trace_accesses: Measured LLC-level accesses per simulation.
        warmup_accesses: Warm-up accesses replayed before measurement.
        search_trace_accesses: Accesses used during best-SM-count searches
            (smaller, since only the argmax matters).
        search_warmup_accesses: Warm-up accesses used during searches.
        mode: How measurements are produced.  ``"replay"`` drives the
            functional trace replay; ``"analytic"`` predicts the
            measurement from first-order occupancy/roofline math over the
            application profile (no trace is generated or replayed).  The
            mode is a replay-keyed config field, so analytic measurements
            can never be served for replay-fidelity runs or vice versa.
    """

    capacity_scale: float = 1.0 / 16.0
    trace_accesses: int = 20_000
    warmup_accesses: int = 7_000
    search_trace_accesses: int = 8_000
    search_warmup_accesses: int = 3_000
    mode: str = "replay"

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_scale <= 1.0:
            raise ValueError("capacity_scale must be in (0, 1]")
        for name in (
            "trace_accesses",
            "warmup_accesses",
            "search_trace_accesses",
            "search_warmup_accesses",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.mode not in REPLAY_MODES:
            raise ValueError(
                f"mode must be one of {REPLAY_MODES}, got {self.mode!r}"
            )


STANDARD_FIDELITY = Fidelity()
"""Default fidelity used by the benchmark harness."""

FAST_FIDELITY = Fidelity(
    capacity_scale=1.0 / 32.0,
    trace_accesses=6_000,
    warmup_accesses=2_000,
    search_trace_accesses=3_000,
    search_warmup_accesses=1_000,
)
"""Reduced fidelity for unit and integration tests."""

ANALYTIC_FIDELITY = Fidelity(mode="analytic")
"""First-order analytic tier: measurements come from closed-form math.

Orders of magnitude cheaper than any replay fidelity (no trace generation,
no hierarchy replay) and deterministic, at the cost of modelling accuracy —
use it for wide design-space exploration and calibrate survivors against a
replay fidelity (the :class:`~repro.runner.spec.ExperimentSpec` fidelity
axis sweeps both sides in one plan)."""

#: Named presets accepted wherever a fidelity is expected.
FIDELITY_PRESETS = {
    "standard": STANDARD_FIDELITY,
    "fast": FAST_FIDELITY,
    "analytic": ANALYTIC_FIDELITY,
}


def get_fidelity(fidelity: "Fidelity | str") -> Fidelity:
    """Coerce a :class:`Fidelity` or preset name into a :class:`Fidelity`.

    Lets entry points (system constructors, the scenario engine, experiment
    specs) accept ``fidelity="analytic"`` and friends directly.
    """
    if isinstance(fidelity, Fidelity):
        return fidelity
    if isinstance(fidelity, str):
        try:
            return FIDELITY_PRESETS[fidelity]
        except KeyError:
            valid = ", ".join(sorted(FIDELITY_PRESETS))
            raise ValueError(
                f"unknown fidelity preset {fidelity!r}; expected one of: {valid}"
            ) from None
    raise TypeError(f"expected a Fidelity or preset name, got {type(fidelity).__name__}")
