"""Simulation fidelity presets.

Every evaluated system runs the same trace-driven model; fidelity presets
control how long the replayed traces are and how aggressively capacities are
downscaled.  ``FAST`` keeps unit/integration tests quick, ``STANDARD`` is
used by the benchmark harness that regenerates the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Fidelity:
    """Trace sizing knobs shared by all evaluated systems.

    Attributes:
        capacity_scale: Factor applied to cache capacities and footprints.
        trace_accesses: Measured LLC-level accesses per simulation.
        warmup_accesses: Warm-up accesses replayed before measurement.
        search_trace_accesses: Accesses used during best-SM-count searches
            (smaller, since only the argmax matters).
        search_warmup_accesses: Warm-up accesses used during searches.
    """

    capacity_scale: float = 1.0 / 16.0
    trace_accesses: int = 20_000
    warmup_accesses: int = 7_000
    search_trace_accesses: int = 8_000
    search_warmup_accesses: int = 3_000

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_scale <= 1.0:
            raise ValueError("capacity_scale must be in (0, 1]")
        for name in (
            "trace_accesses",
            "warmup_accesses",
            "search_trace_accesses",
            "search_warmup_accesses",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


STANDARD_FIDELITY = Fidelity()
"""Default fidelity used by the benchmark harness."""

FAST_FIDELITY = Fidelity(
    capacity_scale=1.0 / 32.0,
    trace_accesses=6_000,
    warmup_accesses=2_000,
    search_trace_accesses=3_000,
    search_warmup_accesses=1_000,
)
"""Reduced fidelity for unit and integration tests."""
