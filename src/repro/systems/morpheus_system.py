"""The Morpheus evaluated systems: Basic, Compression, Indirect-MOV and ALL (§6).

Each Morpheus variant searches offline (as the paper does) for the number of
GPU cores to leave in compute mode per application; the remaining cores go to
cache mode up to the 75 % cap, and anything beyond that is power-gated.
Compute-bound applications keep every SM in compute mode, so Morpheus does
not disturb them (Fig. 12).

The search's candidate runs execute through the process-wide runner's
two-phase pipeline, so each (compute, cache) split is replayed at most once
per fidelity/seed; repeating a search under different analytic parameters
re-scores the cached measurements at zero replay cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import MorpheusConfig
from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.simulator import SimulationConfig
from repro.sim.stats import SimulationStats
from repro.systems.baseline import DEFAULT_SM_CANDIDATES, EvaluatedSystem
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY
from repro.workloads.applications import ApplicationProfile, WorkloadClass


class MorpheusVariant(enum.Enum):
    """The four Morpheus configurations of Figure 12."""

    BASIC = "Morpheus-Basic"
    COMPRESSION = "Morpheus-Compression"
    INDIRECT_MOV = "Morpheus-Indirect-MOV"
    ALL = "Morpheus-ALL"

    def to_config(self, predictor: str = "bloom") -> MorpheusConfig:
        """Build the :class:`MorpheusConfig` for this variant."""
        return MorpheusConfig(
            enable_compression=self in (MorpheusVariant.COMPRESSION, MorpheusVariant.ALL),
            enable_indirect_mov_isa=self in (MorpheusVariant.INDIRECT_MOV, MorpheusVariant.ALL),
            predictor=predictor,
        )


@dataclass(frozen=True)
class MorpheusOperatingPoint:
    """A chosen split of SMs between compute mode, cache mode and power gating."""

    num_compute_sms: int
    num_cache_sms: int
    num_gated_sms: int


class MorpheusSystem(EvaluatedSystem):
    """One Morpheus variant as an evaluated system.

    Args:
        variant: Which optimization combination to run.
        gpu: Baseline GPU configuration.
        fidelity: Trace sizing preset.
        predictor: Hit/miss predictor flavour (``"bloom"``, ``"none"``,
            ``"perfect"``) — Figure 13 varies this on Morpheus-Basic.
        compute_sm_candidates: Candidate compute-mode SM counts searched per
            application.
    """

    def __init__(
        self,
        variant: MorpheusVariant = MorpheusVariant.ALL,
        gpu: GPUConfig = RTX3080_CONFIG,
        fidelity: Fidelity = STANDARD_FIDELITY,
        predictor: str = "bloom",
        compute_sm_candidates: Sequence[int] = DEFAULT_SM_CANDIDATES,
        seed: int = 1,
    ) -> None:
        super().__init__(gpu, fidelity, seed)
        self.variant = variant
        self.predictor = predictor
        self.morpheus_config = variant.to_config(predictor)
        self.compute_sm_candidates = tuple(compute_sm_candidates)
        self.name = variant.value
        if predictor != "bloom":
            self.name = f"{variant.value}({predictor})"
        self._operating_points: Dict[str, MorpheusOperatingPoint] = {}

    # -- operating point selection ------------------------------------------------------

    def _cache_sms_for(self, num_compute_sms: int) -> int:
        """Cache-mode SMs available when ``num_compute_sms`` SMs compute.

        At most 75 % of all SMs may be in cache mode (§4.1.3); any remaining
        SMs are power-gated.
        """
        max_cache = int(self.gpu.num_sms * self.morpheus_config.max_cache_mode_fraction)
        return max(0, min(self.gpu.num_sms - num_compute_sms, max_cache))

    def operating_point(self, profile: ApplicationProfile) -> MorpheusOperatingPoint:
        """The per-application best compute/cache split (Table 3 rows)."""
        cached = self._operating_points.get(profile.name)
        if cached is not None:
            return cached

        if profile.workload_class == WorkloadClass.COMPUTE_BOUND:
            point = MorpheusOperatingPoint(self.gpu.num_sms, 0, 0)
            self._operating_points[profile.name] = point
            return point

        from repro.runner.runner import active_runner

        candidates = [
            (compute, self._cache_sms_for(compute))
            for compute in self.compute_sm_candidates
            if compute <= self.gpu.num_sms
        ]
        configs = [
            self._point_config(compute, cache, search_fidelity=True)
            for compute, cache in candidates
        ]
        all_stats = active_runner().run_configs(profile, configs)
        best_point = MorpheusOperatingPoint(self.gpu.num_sms, 0, 0)
        best_ipc = -1.0
        for (compute, cache), stats in zip(candidates, all_stats):
            if stats.ipc > best_ipc:
                best_ipc = stats.ipc
                best_point = MorpheusOperatingPoint(
                    compute, cache, self.gpu.num_sms - compute - cache
                )
        self._operating_points[profile.name] = best_point
        return best_point

    # -- simulation ------------------------------------------------------------------------

    def _point_config(
        self,
        num_compute_sms: int,
        num_cache_sms: int,
        search_fidelity: bool = False,
    ) -> SimulationConfig:
        fidelity = self.fidelity
        return SimulationConfig(
            gpu=self.gpu,
            morpheus=self.morpheus_config if num_cache_sms > 0 else None,
            num_compute_sms=num_compute_sms,
            num_cache_sms=num_cache_sms,
            power_gate_unused=True,
            capacity_scale=fidelity.capacity_scale,
            trace_accesses=(
                fidelity.search_trace_accesses if search_fidelity else fidelity.trace_accesses
            ),
            warmup_accesses=(
                fidelity.search_warmup_accesses if search_fidelity else fidelity.warmup_accesses
            ),
            system_name=self.name,
            replay_mode=fidelity.mode,
            seed=self.seed,
        )

    def _simulate_point(
        self,
        profile: ApplicationProfile,
        num_compute_sms: int,
        num_cache_sms: int,
        search_fidelity: bool = False,
    ) -> SimulationStats:
        from repro.runner.runner import active_runner

        config = self._point_config(num_compute_sms, num_cache_sms, search_fidelity)
        return active_runner().simulate(profile, config)

    def evaluate(self, profile: ApplicationProfile) -> SimulationStats:
        point = self.operating_point(profile)
        return self._simulate_point(profile, point.num_compute_sms, point.num_cache_sms)

    def compute_sm_table_row(self, profiles: Sequence[ApplicationProfile]) -> Dict[str, int]:
        """Table 3 row: compute-mode SM count per application for this variant."""
        return {profile.name: self.operating_point(profile).num_compute_sms for profile in profiles}
