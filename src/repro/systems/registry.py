"""Registry of the nine evaluated systems and cached evaluation helpers.

Running a full Figure-12-style comparison means simulating 17 applications on
nine systems, several of which search per-application operating points.  The
registry caches :class:`~repro.sim.stats.SimulationStats` per
``(system, application, fidelity)`` within the process so figures and tables
that share underlying runs (e.g. Fig. 12 top and bottom) pay for them once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.stats import SimulationStats
from repro.systems.baseline import (
    BaselineSystem,
    EvaluatedSystem,
    FrequencyBoostSystem,
    IBL4xLLCSystem,
    ImprovedBaselineSystem,
    UnifiedSMMemSystem,
)
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY
from repro.systems.morpheus_system import MorpheusSystem, MorpheusVariant
from repro.workloads.applications import APPLICATIONS, ApplicationProfile, get_application

#: Names of the nine systems of Figure 12, in presentation order.
EVALUATED_SYSTEMS: Tuple[str, ...] = (
    "BL",
    "IBL",
    "IBL-4X-LLC",
    "Unified-SM-Mem",
    "Frequency-Boost",
    "Morpheus-Basic",
    "Morpheus-Compression",
    "Morpheus-Indirect-MOV",
    "Morpheus-ALL",
)

_SYSTEM_CACHE: Dict[Tuple[str, float, int], EvaluatedSystem] = {}
_RESULT_CACHE: Dict[Tuple[str, str, float, int], SimulationStats] = {}


def _fidelity_key(fidelity: Fidelity) -> Tuple[float, int]:
    return (fidelity.capacity_scale, fidelity.trace_accesses)


def get_system(
    name: str,
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
) -> EvaluatedSystem:
    """Construct (or fetch a cached) evaluated system by its Figure-12 name."""
    key = (name, *_fidelity_key(fidelity))
    cached = _SYSTEM_CACHE.get(key)
    if cached is not None:
        return cached

    if name == "BL":
        system: EvaluatedSystem = BaselineSystem(gpu, fidelity)
    elif name == "IBL":
        system = ImprovedBaselineSystem(gpu, fidelity)
    elif name == "IBL-4X-LLC":
        system = IBL4xLLCSystem(gpu, fidelity)
    elif name == "IBL-2X-LLC":
        system = IBL4xLLCSystem(gpu, fidelity, scale_factor=2.0)
        system.name = "IBL-2X-LLC"
    elif name == "Unified-SM-Mem":
        system = UnifiedSMMemSystem(gpu, fidelity)
    elif name == "Frequency-Boost":
        system = FrequencyBoostSystem(gpu, fidelity)
    elif name == "Morpheus-Basic":
        system = MorpheusSystem(MorpheusVariant.BASIC, gpu, fidelity)
    elif name == "Morpheus-Compression":
        system = MorpheusSystem(MorpheusVariant.COMPRESSION, gpu, fidelity)
    elif name == "Morpheus-Indirect-MOV":
        system = MorpheusSystem(MorpheusVariant.INDIRECT_MOV, gpu, fidelity)
    elif name == "Morpheus-ALL":
        system = MorpheusSystem(MorpheusVariant.ALL, gpu, fidelity)
    elif name.startswith("Morpheus-Basic(") and name.endswith(")"):
        predictor = name[len("Morpheus-Basic("):-1]
        system = MorpheusSystem(MorpheusVariant.BASIC, gpu, fidelity, predictor=predictor)
    else:
        valid = ", ".join(EVALUATED_SYSTEMS)
        raise ValueError(f"unknown system {name!r}; expected one of: {valid}")

    _SYSTEM_CACHE[key] = system
    return system


def evaluate_application(
    system_name: str,
    application: str | ApplicationProfile,
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
    use_cache: bool = True,
) -> SimulationStats:
    """Simulate one application on one named system (cached per process)."""
    profile = application if isinstance(application, ApplicationProfile) else get_application(application)
    key = (system_name, profile.name, *_fidelity_key(fidelity))
    if use_cache and key in _RESULT_CACHE:
        return _RESULT_CACHE[key]
    system = get_system(system_name, gpu, fidelity)
    stats = system.evaluate(profile)
    _RESULT_CACHE[key] = stats
    return stats


def evaluate_all_systems(
    application: str | ApplicationProfile,
    systems: Sequence[str] = EVALUATED_SYSTEMS,
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
) -> Dict[str, SimulationStats]:
    """Simulate one application across many systems."""
    return {
        name: evaluate_application(name, application, gpu, fidelity) for name in systems
    }


def clear_caches() -> None:
    """Drop all cached systems and results (used by tests)."""
    _SYSTEM_CACHE.clear()
    _RESULT_CACHE.clear()
