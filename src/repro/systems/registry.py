"""Registry of the nine evaluated systems and runner-backed evaluation helpers.

Running a full Figure-12-style comparison means simulating 17 applications on
nine systems, several of which search per-application operating points.  All
of that work flows through the process-wide
:class:`~repro.runner.runner.ExperimentRunner`, whose two-tier
content-addressed on-disk cache replaces the fragile per-process memo dicts
this module used to keep: every leaf simulation (including the runs behind a
best-SM-count search) stores its replay measurement under a replay key and
its scored stats under a score key, shared between processes and between
figures that overlap (e.g. Fig. 12 top and bottom, Table 3).  Re-running a
search under different analytic parameters (MLP, peak IPC, energy constants)
re-scores the cached measurements without replaying a single trace.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.gpu.config import GPUConfig, RTX3080_CONFIG
from repro.sim.stats import SimulationStats
from repro.systems.baseline import (
    BaselineSystem,
    EvaluatedSystem,
    FrequencyBoostSystem,
    IBL4xLLCSystem,
    ImprovedBaselineSystem,
    UnifiedSMMemSystem,
)
from repro.systems.fidelity import Fidelity, STANDARD_FIDELITY
from repro.systems.morpheus_system import MorpheusSystem, MorpheusVariant
from repro.workloads.applications import ApplicationProfile, get_application

#: Names of the nine systems of Figure 12, in presentation order.
EVALUATED_SYSTEMS: tuple[str, ...] = (
    "BL",
    "IBL",
    "IBL-4X-LLC",
    "Unified-SM-Mem",
    "Frequency-Boost",
    "Morpheus-Basic",
    "Morpheus-Compression",
    "Morpheus-Indirect-MOV",
    "Morpheus-ALL",
)

#: Systems that can run under a workload timeline (the two baselines plus
#: all four Morpheus variants) — see :mod:`repro.scenarios` and
#: :func:`run_scenario`.
SCENARIO_SYSTEMS: tuple[str, ...] = (
    "BL",
    "IBL",
    "Morpheus-Basic",
    "Morpheus-Compression",
    "Morpheus-Indirect-MOV",
    "Morpheus-ALL",
)


def get_system(
    name: str,
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
    seed: int = 1,
    predictor: str | None = None,
) -> EvaluatedSystem:
    """Construct an evaluated system by its Figure-12 name.

    Systems are cheap to construct; the expensive part — their simulations —
    is cached by the runner, so no instance memoization is needed.

    ``predictor`` overrides the hit/miss-predictor flavour of a Morpheus
    system (the declarative form of the ``"Morpheus-Basic(<predictor>)"``
    name syntax, used by the :class:`~repro.runner.spec.ExperimentSpec`
    predictor axis).  Non-Morpheus systems have no predictor to override.
    """
    if predictor is not None:
        variant = {v.value: v for v in MorpheusVariant}.get(name)
        if variant is None:
            raise ValueError(
                f"system {name!r} has no hit/miss predictor to override"
            )
        return MorpheusSystem(variant, gpu, fidelity, predictor=predictor, seed=seed)
    if name == "BL":
        system: EvaluatedSystem = BaselineSystem(gpu, fidelity, seed=seed)
    elif name == "IBL":
        system = ImprovedBaselineSystem(gpu, fidelity, seed=seed)
    elif name == "IBL-4X-LLC":
        system = IBL4xLLCSystem(gpu, fidelity, seed=seed)
    elif name == "IBL-2X-LLC":
        system = IBL4xLLCSystem(gpu, fidelity, scale_factor=2.0, seed=seed)
        system.name = "IBL-2X-LLC"
    elif name == "Unified-SM-Mem":
        system = UnifiedSMMemSystem(gpu, fidelity, seed=seed)
    elif name == "Frequency-Boost":
        system = FrequencyBoostSystem(gpu, fidelity, seed=seed)
    elif name == "Morpheus-Basic":
        system = MorpheusSystem(MorpheusVariant.BASIC, gpu, fidelity, seed=seed)
    elif name == "Morpheus-Compression":
        system = MorpheusSystem(MorpheusVariant.COMPRESSION, gpu, fidelity, seed=seed)
    elif name == "Morpheus-Indirect-MOV":
        system = MorpheusSystem(MorpheusVariant.INDIRECT_MOV, gpu, fidelity, seed=seed)
    elif name == "Morpheus-ALL":
        system = MorpheusSystem(MorpheusVariant.ALL, gpu, fidelity, seed=seed)
    elif name.startswith("Morpheus-Basic(") and name.endswith(")"):
        predictor = name[len("Morpheus-Basic("):-1]
        system = MorpheusSystem(
            MorpheusVariant.BASIC, gpu, fidelity, predictor=predictor, seed=seed
        )
    else:
        valid = ", ".join(EVALUATED_SYSTEMS)
        raise ValueError(f"unknown system {name!r}; expected one of: {valid}")
    return system


def evaluate_application(
    system_name: str,
    application: str | ApplicationProfile,
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
    use_cache: bool = True,
    seed: int = 1,
    predictor: str | None = None,
) -> SimulationStats:
    """Simulate one application on one named system (runner-cached).

    With ``use_cache=False`` the underlying leaf simulations are recomputed
    (and the cache refreshed) instead of being served from it.  ``predictor``
    overrides a Morpheus system's hit/miss predictor (see :func:`get_system`).
    """
    from repro.runner.runner import active_runner

    profile = application if isinstance(application, ApplicationProfile) else get_application(application)
    system = get_system(system_name, gpu, fidelity, seed=seed, predictor=predictor)
    if use_cache:
        return system.evaluate(profile)
    with active_runner().cache_bypassed():
        return system.evaluate(profile)


def evaluate_all_systems(
    application: str | ApplicationProfile,
    systems: Sequence[str] = EVALUATED_SYSTEMS,
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
) -> Dict[str, SimulationStats]:
    """Simulate one application across many systems (a one-row experiment plan)."""
    from repro.runner.runner import active_runner
    from repro.runner.spec import ExperimentSpec

    profile = application if isinstance(application, ApplicationProfile) else get_application(application)
    spec = ExperimentSpec(
        systems=tuple(systems),
        applications=(profile.name,),
        fidelity=fidelity,
        gpu=gpu,
    )
    result = active_runner().run_plan(spec)
    return result.by_application(profile.name)


def run_scenario(
    system_name: str,
    scenario,
    gpu: GPUConfig = RTX3080_CONFIG,
    fidelity: Fidelity = STANDARD_FIDELITY,
    seed: int = 1,
    policy=None,
    predictor: str = "bloom",
    arbitration: str | None = None,
    contention=None,
):
    """Run one system through a workload timeline (see :mod:`repro.scenarios`).

    ``scenario`` is a :class:`~repro.scenarios.spec.ScenarioSpec` or the name
    of a library scenario (e.g. ``"bursty"``, or the multi-tenant
    ``"corun_overlap"``/``"mixed_tenancy"`` shapes whose phases keep several
    applications concurrently resident).  Baselines ignore ``policy``;
    Morpheus systems default to the dynamic capacity manager.
    ``arbitration`` (``"proportional"`` or ``"sensitivity"``) picks how the
    default policy splits pooled extended-LLC capacity across a co-run
    phase's residents — pass an explicit ``policy`` instead to control
    every knob.  ``contention`` overrides the co-run shared-bandwidth
    solver knobs (a :class:`~repro.scenarios.contention.ContentionModel`;
    ``None`` uses the defaults).  Returns a
    :class:`~repro.scenarios.engine.ScenarioRunResult`.
    """
    # Imported lazily: the scenario engine executes through the runner,
    # which calls back into this module for named-system cells.
    from repro.scenarios.engine import ScenarioEngine
    from repro.scenarios.library import get_scenario
    from repro.scenarios.policy import DynamicCapacityManager

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if arbitration is not None:
        if policy is not None:
            raise ValueError(
                "pass either arbitration (configures the default dynamic "
                "manager) or an explicit policy, not both"
            )
        policy = DynamicCapacityManager(arbitration=arbitration)
    engine = ScenarioEngine(
        gpu=gpu, fidelity=fidelity, seed=seed, predictor=predictor,
        contention=contention,
    )
    return engine.run(scenario, system_name, policy)


def clear_caches() -> None:
    """Drop the runner's in-process result layer (used by tests).

    The on-disk cache is content-addressed and never stale, so only the
    in-memory layer is cleared.
    """
    from repro.runner.runner import active_runner
    from repro.workloads.generator import SHARED_TRACE_CACHE

    active_runner().clear_memory_cache()
    SHARED_TRACE_CACHE.clear()
