"""Observability layer: span tracing, metrics, logging, and run reports.

Off by default; enable with ``REPRO_TELEMETRY=1`` (sink directory from
``REPRO_TELEMETRY_DIR``, default ``.repro_telemetry``) or scope a block::

    from repro.telemetry import Telemetry

    with Telemetry(directory="trace", enabled=True):
        runner.run_plan(spec)

Then ``python -m repro.telemetry report trace`` summarizes where the
wall-clock went.  Telemetry is observational only — it never changes a
cache key or an emitted stat.
"""

from .core import (
    DEFAULT_TELEMETRY_DIR,
    NULL_SPAN,
    TELEMETRY_DIR_ENV,
    TELEMETRY_ENV,
    TELEMETRY_SCHEMA_VERSION,
    Span,
    Telemetry,
    set_telemetry,
    telemetry,
)
from .log import LOG_LEVEL_ENV, configure, get_logger

__all__ = [
    "DEFAULT_TELEMETRY_DIR",
    "LOG_LEVEL_ENV",
    "NULL_SPAN",
    "Span",
    "TELEMETRY_DIR_ENV",
    "TELEMETRY_ENV",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "configure",
    "get_logger",
    "set_telemetry",
    "telemetry",
]
