"""CLI: ``python -m repro.telemetry {report,validate} <trace-dir>``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .report import render, summarize
from .schema import validate_directory


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect telemetry trace directories.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report_parser = subparsers.add_parser(
        "report", help="summarize a trace directory (stages, cache, queue)"
    )
    report_parser.add_argument("directory", type=Path, help="trace directory")
    report_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    validate_parser = subparsers.add_parser(
        "validate", help="check every sink file against the event schema"
    )
    validate_parser.add_argument("directory", type=Path, help="trace directory")

    args = parser.parse_args(argv)

    if not args.directory.is_dir():
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 2

    if args.command == "report":
        summary = summarize(args.directory)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render(summary))
        return 0

    files, errors = validate_directory(args.directory)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"{files} file(s) checked, {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"{files} file(s) checked, all valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
