"""Span tracing and metrics: the process-safe core of the telemetry layer.

One :class:`Telemetry` instance owns a per-process event buffer and metrics
registry, flushed to a JSON-lines sink file under the trace directory
(``events-<pid>-<nonce>.jsonl``).  Every process participating in a run —
the coordinator, pool workers, service worker daemons — writes its **own**
file, so no cross-process synchronization is ever needed; the report CLI
(:mod:`repro.telemetry.report`) merges the files and stitches cross-process
job lifecycles by ``job_id``.

Three instrument families:

* **Spans** — nested wall-clock timing via the :meth:`Telemetry.span`
  context manager.  Each span records its start timestamp (``time.time``,
  comparable across processes), its duration (``time.perf_counter``,
  monotonic), its thread, and its parent span on the same thread.
* **Counters / gauges** — monotonic totals and last-value measurements,
  accumulated in-process and emitted as cumulative snapshots on flush (the
  report keeps only each file's last snapshot, so repeated flushes never
  double-count).
* **Duration histograms** — raw observation lists (bounded; overflow is
  counted, never silently dropped) so the report can compute exact
  percentiles across processes.

**Telemetry is off by default and observational only.**  When disabled
(no ``REPRO_TELEMETRY=1``, no active :class:`Telemetry`), ``span`` returns
a shared no-op context manager and the metric methods return immediately —
the instrumented hot paths additionally guard on :attr:`Telemetry.enabled`
so the disabled cost is one attribute read.  Nothing in this module ever
feeds a cache key: enabling tracing cannot change a ``replay_key``, a
``score_key``, a scenario ``run_key`` or any emitted stat
(``tests/telemetry/test_inertness.py`` asserts it bit-for-bit).

Fork safety: a forked child (worker pools, spawned service daemons) resets
the active instance's buffer, registry and sink file, so inherited parent
events are never re-emitted and inherited counter values never
double-count.
"""

from __future__ import annotations

import atexit
import json
import os
import socket
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Environment variable enabling telemetry (``1`` = on; anything else off).
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Environment variable selecting the trace directory the JSONL sinks are
#: written to (default :data:`DEFAULT_TELEMETRY_DIR`).
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"

#: Default trace directory (relative to the current working directory).
DEFAULT_TELEMETRY_DIR = ".repro_telemetry"

#: Version stamped into every sink file's ``meta`` line.  Bump when the
#: event layout changes so the report/validator can reject stale traces.
TELEMETRY_SCHEMA_VERSION = 1

#: Buffered events per sink before an automatic flush.
FLUSH_EVERY = 256

#: Hard cap on raw values one histogram keeps (overflow increments
#: ``dropped`` instead of growing without bound).
MAX_HISTOGRAM_VALUES = 65536


class _NullSpan:
    """The shared no-op span returned while telemetry is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """One in-flight span; ends (and records itself) on context exit."""

    __slots__ = ("_telemetry", "name", "attrs", "ts", "_start", "span_id", "parent_id")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict[str, Any]) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.ts = 0.0
        self._start = 0.0
        self.span_id = uuid.uuid4().hex[:12]
        self.parent_id: Optional[str] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach (or override) attributes mid-span; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._telemetry._span_stack()
        if stack:
            self.parent_id = stack[-1]
        stack.append(self.span_id)
        self.ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        duration = time.perf_counter() - self._start
        stack = self._telemetry._span_stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._telemetry._emit(
            {
                "type": "span",
                "name": self.name,
                "ts": self.ts,
                "dur": duration,
                "pid": os.getpid(),
                "thread": threading.get_ident(),
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "attrs": self.attrs,
            }
        )


class _Histogram:
    """Raw-value histogram (bounded; overflow counted, never lost silently)."""

    __slots__ = ("count", "total", "min", "max", "values", "dropped")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.values: List[float] = []
        self.dropped = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self.values) < MAX_HISTOGRAM_VALUES:
            self.values.append(value)
        else:
            self.dropped += 1

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "values": self.values,
            "dropped": self.dropped,
        }


class Telemetry:
    """One process's tracer + metrics registry + JSONL sink.

    Args:
        directory: Trace directory the sink file is written to.  Default:
            ``$REPRO_TELEMETRY_DIR`` or ``.repro_telemetry``.
        enabled: Force tracing on/off.  Default: ``$REPRO_TELEMETRY == "1"``.

    Use as a context manager to scope tracing to a block::

        with Telemetry(directory="trace", enabled=True):
            runner.run_plan(spec)      # instrumented code publishes here

    Entering installs the instance as the process-wide active telemetry
    *and* exports ``REPRO_TELEMETRY``/``REPRO_TELEMETRY_DIR`` so worker
    processes spawned inside the block inherit the configuration; exiting
    flushes, restores the previous instance and environment.
    """

    def __init__(
        self,
        directory: Optional[str | os.PathLike] = None,
        enabled: Optional[bool] = None,
    ) -> None:
        if enabled is None:
            enabled = os.environ.get(TELEMETRY_ENV, "") == "1"
        if directory is None:
            directory = os.environ.get(TELEMETRY_DIR_ENV, "").strip() or (
                DEFAULT_TELEMETRY_DIR
            )
        self.enabled = bool(enabled)
        self.directory = Path(directory)
        self._lock = threading.RLock()
        self._local = threading.local()
        self._events: List[Dict[str, Any]] = []
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._seq = 0
        self._pid = os.getpid()
        self._path: Optional[Path] = None
        self._wrote_meta = False
        self._env_previous: Optional[Dict[str, Optional[str]]] = None
        self._previous: Optional["Telemetry"] = None

    # -- span / event / metric API -----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A context manager timing one named stage (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record one discrete event (job lifecycle edges, phase markers)."""
        if not self.enabled:
            return
        self._emit(
            {
                "type": "event",
                "name": name,
                "ts": time.time(),
                "pid": os.getpid(),
                "attrs": attrs,
            }
        )

    def count(self, name: str, value: float = 1) -> None:
        """Increment the monotonic counter ``name`` by ``value``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(value)

    # -- sink --------------------------------------------------------------------------

    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(record)
            if len(self._events) >= FLUSH_EVERY:
                self._flush_locked()

    def _sink_path(self) -> Path:
        if self._path is None:
            self._path = self.directory / (
                f"events-{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
            )
        return self._path

    def flush(self) -> None:
        """Write buffered events plus a cumulative metrics snapshot."""
        if not self.enabled:
            return
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        lines: List[Dict[str, Any]] = []
        if not self._wrote_meta:
            lines.append(
                {
                    "type": "meta",
                    "schema": TELEMETRY_SCHEMA_VERSION,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "python": sys.version.split()[0],
                    "ts": time.time(),
                }
            )
        lines.extend(self._events)
        if self._counters or self._gauges or self._histograms:
            self._seq += 1
            lines.append(
                {
                    "type": "metrics",
                    "pid": os.getpid(),
                    "seq": self._seq,
                    "ts": time.time(),
                    "counters": dict(self._counters),
                    "gauges": dict(self._gauges),
                    "histograms": {
                        name: histogram.to_jsonable()
                        for name, histogram in self._histograms.items()
                    },
                }
            )
        if not lines:
            return
        path = self._sink_path()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("a", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(json.dumps(line) + "\n")
        except OSError:
            # Telemetry must never take a run down: an unwritable sink
            # (read-only filesystem, deleted directory) drops the batch.
            return
        finally:
            self._events.clear()
            self._wrote_meta = True

    def _reset_after_fork(self) -> None:
        """Drop inherited parent state in a forked child (see module doc)."""
        self._lock = threading.RLock()
        self._local = threading.local()
        self._events = []
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._seq = 0
        self._pid = os.getpid()
        self._path = None
        self._wrote_meta = False

    # -- scoping -----------------------------------------------------------------------

    def __enter__(self) -> "Telemetry":
        self._previous = set_telemetry(self)
        self._env_previous = {
            key: os.environ.get(key) for key in (TELEMETRY_ENV, TELEMETRY_DIR_ENV)
        }
        if self.enabled:
            os.environ[TELEMETRY_ENV] = "1"
            os.environ[TELEMETRY_DIR_ENV] = str(self.directory)
        else:
            os.environ[TELEMETRY_ENV] = "0"
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.flush()
        if self._env_previous is not None:
            for key, value in self._env_previous.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            self._env_previous = None
        set_telemetry(self._previous)
        self._previous = None


# -- the process-wide instance ---------------------------------------------------------

_ACTIVE: Optional[Telemetry] = None
_ACTIVE_LOCK = threading.Lock()


def telemetry() -> Telemetry:
    """The process-wide telemetry (created from the environment on first use)."""
    tel = _ACTIVE
    if tel is None:
        with _ACTIVE_LOCK:
            tel = _ACTIVE
            if tel is None:
                tel = Telemetry()
                _install(tel)
    return tel


def set_telemetry(instance: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install ``instance`` as the process-wide telemetry; the previous one."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _install(instance)
    return previous


def _install(instance: Optional[Telemetry]) -> None:
    global _ACTIVE
    _ACTIVE = instance


def _flush_active_at_exit() -> None:
    tel = _ACTIVE
    if tel is not None:
        tel.flush()


def _reset_active_after_fork() -> None:
    tel = _ACTIVE
    if tel is not None:
        tel._reset_after_fork()


atexit.register(_flush_active_at_exit)
if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on Linux
    os.register_at_fork(after_in_child=_reset_active_after_fork)
