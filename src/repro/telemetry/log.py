"""One logging configuration for the whole package.

Runner, service and scenario modules get their loggers from
:func:`get_logger` instead of calling :mod:`logging` directly, so every
component shares one handler, one format and one level knob:

* ``REPRO_LOG_LEVEL`` — ``DEBUG`` / ``INFO`` / ``WARNING`` / ``ERROR``
  (default ``WARNING``, so normal runs stay silent).

The handler writes to stderr with the process id in the format, because
service mode runs several daemons at once and interleaved lines are
useless without knowing who said what.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment variable selecting the shared log level.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Root of the package logger hierarchy; every component logger is a child.
ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(levelname)s [pid %(process)d] %(name)s: %(message)s"

_configured = False


def _level_from_env() -> int:
    name = os.environ.get(LOG_LEVEL_ENV, "").strip().upper()
    if not name:
        return logging.WARNING
    level = logging.getLevelName(name)
    if isinstance(level, int):
        return level
    return logging.WARNING


def configure(level: Optional[int] = None, *, force: bool = False) -> logging.Logger:
    """Configure the shared ``repro`` logger (idempotent unless ``force``).

    Args:
        level: Explicit level; default reads ``REPRO_LOG_LEVEL``.
        force: Re-apply level/handler even if already configured (tests,
            or picking up an environment change mid-process).
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER)
    if _configured and not force:
        if level is not None:
            root.setLevel(level)
        return root
    if level is None:
        level = _level_from_env()
    root.setLevel(level)
    if not any(getattr(h, "_repro_handler", False) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler._repro_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    # The package logger is self-contained: don't also bubble records up
    # to the (possibly application-configured) root logger.
    root.propagate = False
    _configured = True
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the shared ``repro`` hierarchy (configuring it lazily).

    ``name`` may be a module ``__name__`` (``repro.runner.service``) or a
    bare suffix (``runner.service``); both land under :data:`ROOT_LOGGER`.
    """
    configure()
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(ROOT_LOGGER + "." + name)
