"""Aggregate a trace directory into a per-run summary.

:func:`summarize` merges every process's sink file into one dictionary:

* ``stages`` — span durations aggregated by name (count / total / mean /
  max seconds), the per-stage wall-clock breakdown.
* ``counters`` / ``gauges`` — the metrics registries merged across
  processes (counters summed, gauges last-write-wins by snapshot time).
* ``histograms`` — merged raw-value histograms with p50/p95/p99.
* ``cache`` — per-tier hit/miss/store/byte counters folded into hit rates.
* ``queue`` — service-mode job lifecycles stitched across processes by
  ``job_id`` (submit → claim = queue wait, claim → complete = execution),
  with wait-latency percentiles.  Wall-clock timestamps are comparable
  across processes because every sink records ``time.time``.
* ``slowest`` — the slowest replay spans, the leaves a search should
  look at first.

:func:`render` turns that dictionary into the human-readable text the
``python -m repro.telemetry report`` CLI prints; ``--json`` emits the
dictionary itself.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .schema import iter_records

#: Span name prefix treated as "a leaf replay" for the slowest-leaves table.
REPLAY_SPAN = "runner.replay"

#: How many slowest replay spans the summary keeps.
SLOWEST_LIMIT = 10


def percentile(values: List[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` (nearest-rank; 0 if empty).

    True nearest-rank: the smallest value with at least ``fraction`` of the
    sample at or below it, i.e. ``ordered[ceil(fraction * n) - 1]``.  So the
    p50 of ``1..100`` is 50, not 51 (the old ``round(fraction * (n - 1))``
    formula drifted one rank high on even-length samples).
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def _load(directory: Path) -> Tuple[
    List[Dict[str, Any]],
    List[Dict[str, Any]],
    List[Dict[str, Any]],
]:
    """(spans, events, last-metrics-snapshot-per-file) across all sinks."""
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    snapshots: List[Dict[str, Any]] = []
    for path in sorted(directory.glob("events-*.jsonl")):
        last_snapshot: Optional[Dict[str, Any]] = None
        try:
            for _, record in iter_records(path):
                record_type = record.get("type")
                if record_type == "span":
                    spans.append(record)
                elif record_type == "event":
                    events.append(record)
                elif record_type == "metrics":
                    # Snapshots are cumulative: only the newest per file counts.
                    if last_snapshot is None or record.get("seq", 0) >= last_snapshot.get(
                        "seq", 0
                    ):
                        last_snapshot = record
        except (OSError, json.JSONDecodeError):
            continue
        if last_snapshot is not None:
            snapshots.append(last_snapshot)
    return spans, events, snapshots


def _merge_metrics(
    snapshots: List[Dict[str, Any]],
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, Dict[str, Any]]]:
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    gauge_ts: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        snapshot_ts = snapshot.get("ts", 0.0)
        for name, value in snapshot.get("gauges", {}).items():
            if name not in gauge_ts or snapshot_ts >= gauge_ts[name]:
                gauges[name] = value
                gauge_ts[name] = snapshot_ts
        for name, histogram in snapshot.get("histograms", {}).items():
            merged = histograms.setdefault(
                name,
                {"count": 0, "sum": 0.0, "min": None, "max": None, "values": [],
                 "dropped": 0},
            )
            merged["count"] += histogram.get("count", 0)
            merged["sum"] += histogram.get("sum", 0.0)
            if histogram.get("count", 0):
                low, high = histogram.get("min", 0.0), histogram.get("max", 0.0)
                merged["min"] = low if merged["min"] is None else min(merged["min"], low)
                merged["max"] = high if merged["max"] is None else max(merged["max"], high)
            merged["values"].extend(histogram.get("values", []))
            merged["dropped"] += histogram.get("dropped", 0)
    for merged in histograms.values():
        values = merged.pop("values")
        merged["min"] = merged["min"] or 0.0
        merged["max"] = merged["max"] or 0.0
        merged["mean"] = merged["sum"] / merged["count"] if merged["count"] else 0.0
        merged["p50"] = percentile(values, 0.50)
        merged["p95"] = percentile(values, 0.95)
        merged["p99"] = percentile(values, 0.99)
    return counters, gauges, histograms


def _stage_breakdown(spans: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    stages: Dict[str, Dict[str, float]] = {}
    for span in spans:
        stage = stages.setdefault(
            span["name"], {"count": 0, "total": 0.0, "max": 0.0}
        )
        stage["count"] += 1
        stage["total"] += span["dur"]
        stage["max"] = max(stage["max"], span["dur"])
    for stage in stages.values():
        stage["mean"] = stage["total"] / stage["count"] if stage["count"] else 0.0
    return stages


def _cache_summary(counters: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    tiers: Dict[str, Dict[str, float]] = {}
    for name, value in counters.items():
        if not name.startswith("cache."):
            continue
        parts = name.split(".")
        if len(parts) != 3:
            continue
        _, tier, field = parts
        tiers.setdefault(tier, {})[field] = value
    for stats in tiers.values():
        lookups = stats.get("hits", 0) + stats.get("misses", 0)
        stats["hit_rate"] = stats.get("hits", 0) / lookups if lookups else 0.0
    return tiers


def _scenario_summary(
    counters: Dict[str, float], histograms: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Scenario-engine dedup effectiveness and per-signature solve times.

    ``scenario.dedup.hits`` counts phases served by an already-solved
    signature; ``scenario.dedup.misses`` counts the distinct signatures
    actually solved.  ``scenario.signature_solve_seconds`` is the per
    distinct co-run signature contention-solve wall time.
    """
    hits = counters.get("scenario.dedup.hits", 0)
    misses = counters.get("scenario.dedup.misses", 0)
    solve = histograms.get("scenario.signature_solve_seconds")
    if not hits and not misses and solve is None:
        return {}
    phases = hits + misses
    return {
        "dedup_hits": hits,
        "dedup_misses": misses,
        "dedup_hit_rate": hits / phases if phases else 0.0,
        "signature_solve_seconds": solve,
    }


def _queue_summary(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    jobs: Dict[str, Dict[str, float]] = {}
    lifecycle = {
        "job.submit": "submit",
        "job.claim": "claim",
        "job.complete": "complete",
    }
    expiries = 0
    for event in events:
        name = event.get("name", "")
        if name == "job.lease_expired":
            expiries += 1
        edge = lifecycle.get(name)
        if edge is None:
            continue
        job_id = event.get("attrs", {}).get("job_id")
        if not job_id:
            continue
        # Keep the earliest submit/claim and the latest complete, so a
        # requeued job measures first-wait and final completion.
        record = jobs.setdefault(job_id, {})
        ts = event.get("ts", 0.0)
        if edge == "complete":
            record[edge] = max(record.get(edge, ts), ts)
        else:
            record[edge] = min(record.get(edge, ts), ts)
    waits = [
        record["claim"] - record["submit"]
        for record in jobs.values()
        if "claim" in record and "submit" in record
    ]
    executions = [
        record["complete"] - record["claim"]
        for record in jobs.values()
        if "complete" in record and "claim" in record
    ]
    return {
        "jobs": len(jobs),
        "completed": sum(1 for record in jobs.values() if "complete" in record),
        "lease_expiries": expiries,
        "wait_seconds": {
            "count": len(waits),
            "mean": sum(waits) / len(waits) if waits else 0.0,
            "p50": percentile(waits, 0.50),
            "p95": percentile(waits, 0.95),
            "p99": percentile(waits, 0.99),
            "max": max(waits) if waits else 0.0,
        },
        "execute_seconds": {
            "count": len(executions),
            "mean": sum(executions) / len(executions) if executions else 0.0,
            "p50": percentile(executions, 0.50),
            "p95": percentile(executions, 0.95),
            "p99": percentile(executions, 0.99),
            "max": max(executions) if executions else 0.0,
        },
    }


def _slowest(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    replays = [span for span in spans if span["name"] == REPLAY_SPAN]
    replays.sort(key=lambda span: span["dur"], reverse=True)
    return [
        {
            "dur": span["dur"],
            "pid": span["pid"],
            "attrs": span.get("attrs", {}),
        }
        for span in replays[:SLOWEST_LIMIT]
    ]


def summarize(directory: Path) -> Dict[str, Any]:
    """The merged per-run summary of every sink file under ``directory``."""
    spans, events, snapshots = _load(directory)
    counters, gauges, histograms = _merge_metrics(snapshots)
    wall: Dict[str, float] = {}
    if spans or events:
        timestamps = [record["ts"] for record in spans + events]
        ends = [span["ts"] + span["dur"] for span in spans] or timestamps
        wall = {"start": min(timestamps), "end": max(ends)}
        wall["seconds"] = wall["end"] - wall["start"]
    return {
        "directory": str(directory),
        "processes": len({record["pid"] for record in spans + events + snapshots}),
        "spans": len(spans),
        "events": len(events),
        "wall": wall,
        "stages": _stage_breakdown(spans),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "cache": _cache_summary(counters),
        "scenario": _scenario_summary(counters, histograms),
        "queue": _queue_summary(events),
        "slowest": _slowest(spans),
    }


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s"
    return f"{value * 1000.0:7.2f}ms"


def render(summary: Dict[str, Any]) -> str:
    """The human-readable report for one :func:`summarize` result."""
    lines: List[str] = []
    wall = summary.get("wall") or {}
    lines.append(f"trace: {summary['directory']}")
    lines.append(
        f"processes: {summary['processes']}  spans: {summary['spans']}  "
        f"events: {summary['events']}"
        + (f"  wall: {wall['seconds']:.3f}s" if wall else "")
    )

    stages = summary["stages"]
    if stages:
        lines.append("")
        lines.append("time by stage")
        lines.append(f"  {'stage':<28} {'count':>6} {'total':>10} {'mean':>10} {'max':>10}")
        for name in sorted(stages, key=lambda n: -stages[n]["total"]):
            stage = stages[name]
            lines.append(
                f"  {name:<28} {stage['count']:>6d} {_fmt_seconds(stage['total'])} "
                f"{_fmt_seconds(stage['mean'])} {_fmt_seconds(stage['max'])}"
            )

    cache = summary["cache"]
    if cache:
        lines.append("")
        lines.append("cache effectiveness")
        lines.append(
            f"  {'tier':<14} {'hits':>7} {'misses':>7} {'stores':>7} "
            f"{'hit rate':>9} {'read':>10} {'written':>10}"
        )
        for tier in sorted(cache):
            stats = cache[tier]
            lines.append(
                f"  {tier:<14} {int(stats.get('hits', 0)):>7d} "
                f"{int(stats.get('misses', 0)):>7d} "
                f"{int(stats.get('stores', 0)):>7d} "
                f"{stats['hit_rate'] * 100.0:>8.1f}% "
                f"{int(stats.get('bytes_read', 0)):>10d} "
                f"{int(stats.get('bytes_written', 0)):>10d}"
            )

    scenario = summary.get("scenario") or {}
    if scenario:
        lines.append("")
        lines.append("scenario engine")
        lines.append(
            f"  phase dedup   hits {int(scenario['dedup_hits'])}  "
            f"signatures {int(scenario['dedup_misses'])}  "
            f"hit rate {scenario['dedup_hit_rate'] * 100.0:.1f}%"
        )
        solve = scenario.get("signature_solve_seconds")
        if solve:
            lines.append(
                f"  signature solve ({solve['count']})  "
                f"p50 {_fmt_seconds(solve['p50'])}  "
                f"p95 {_fmt_seconds(solve['p95'])}  "
                f"p99 {_fmt_seconds(solve['p99'])}  "
                f"max {_fmt_seconds(solve['max'])}"
            )

    queue = summary["queue"]
    if queue["jobs"]:
        wait = queue["wait_seconds"]
        execute = queue["execute_seconds"]
        lines.append("")
        lines.append("service queue")
        lines.append(
            f"  jobs: {queue['jobs']}  completed: {queue['completed']}  "
            f"lease expiries: {queue['lease_expiries']}"
        )
        lines.append(
            f"  queue wait    p50 {_fmt_seconds(wait['p50'])}  "
            f"p95 {_fmt_seconds(wait['p95'])}  p99 {_fmt_seconds(wait['p99'])}  "
            f"max {_fmt_seconds(wait['max'])}"
        )
        lines.append(
            f"  execution     p50 {_fmt_seconds(execute['p50'])}  "
            f"p95 {_fmt_seconds(execute['p95'])}  p99 {_fmt_seconds(execute['p99'])}  "
            f"max {_fmt_seconds(execute['max'])}"
        )

    histograms = summary["histograms"]
    if histograms:
        lines.append("")
        lines.append("histograms")
        lines.append(
            f"  {'name':<28} {'count':>6} {'mean':>10} {'p50':>10} {'p95':>10} {'max':>10}"
        )
        for name in sorted(histograms):
            histogram = histograms[name]
            lines.append(
                f"  {name:<28} {histogram['count']:>6d} {histogram['mean']:>10.4g} "
                f"{histogram['p50']:>10.4g} {histogram['p95']:>10.4g} "
                f"{histogram['max']:>10.4g}"
            )

    slowest = summary["slowest"]
    if slowest:
        lines.append("")
        lines.append("slowest replays")
        for entry in slowest:
            attrs = entry["attrs"]
            label = attrs.get("app") or attrs.get("replay_key", "")[:12] or "?"
            lines.append(
                f"  {_fmt_seconds(entry['dur'])}  {label}  (pid {entry['pid']})"
            )

    lines.append("")
    return "\n".join(lines)
