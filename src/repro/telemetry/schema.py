"""Event schema for telemetry sink files, plus a validator.

A trace directory holds one ``events-<pid>-<nonce>.jsonl`` file per
participating process.  Four record types, discriminated by ``type``:

``meta``
    First line of every file: ``schema`` (int, must equal
    :data:`~repro.telemetry.core.TELEMETRY_SCHEMA_VERSION`), ``pid``,
    ``host``, ``python``, ``ts``.

``span``
    A completed timed stage: ``name``, ``ts`` (wall-clock start,
    ``time.time``), ``dur`` (seconds, ``perf_counter`` delta), ``pid``,
    ``thread``, ``span_id``, ``parent_id`` (may be null), ``attrs``.

``event``
    A discrete marker (job lifecycle edges, scenario phases): ``name``,
    ``ts``, ``pid``, ``attrs``.

``metrics``
    A cumulative snapshot of the process's registry: ``pid``, ``seq``
    (monotonic per file; the report keeps only the highest), ``ts``,
    ``counters`` (name → number), ``gauges`` (name → number),
    ``histograms`` (name → ``{count, sum, min, max, values, dropped}``).

The validator is deliberately structural (types and required fields, not
a catalog of known names) so new instruments never require a schema bump.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

from .core import TELEMETRY_SCHEMA_VERSION

#: record type → {field name: allowed types} (None in the tuple = nullable).
_REQUIRED_FIELDS: Dict[str, Dict[str, Tuple[type, ...]]] = {
    "meta": {
        "schema": (int,),
        "pid": (int,),
        "host": (str,),
        "ts": (int, float),
    },
    "span": {
        "name": (str,),
        "ts": (int, float),
        "dur": (int, float),
        "pid": (int,),
        "thread": (int,),
        "span_id": (str,),
        "attrs": (dict,),
    },
    "event": {
        "name": (str,),
        "ts": (int, float),
        "pid": (int,),
        "attrs": (dict,),
    },
    "metrics": {
        "pid": (int,),
        "seq": (int,),
        "ts": (int, float),
        "counters": (dict,),
        "gauges": (dict,),
        "histograms": (dict,),
    },
}

_HISTOGRAM_FIELDS: Dict[str, Tuple[type, ...]] = {
    "count": (int,),
    "sum": (int, float),
    "min": (int, float),
    "max": (int, float),
    "values": (list,),
    "dropped": (int,),
}


def iter_records(path: Path) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(line_number, record)`` for each JSON line in ``path``."""
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            yield line_number, json.loads(line)


def validate_record(record: Any) -> List[str]:
    """Structural errors in one decoded record (empty list = valid)."""
    if not isinstance(record, dict):
        return ["record is not an object"]
    record_type = record.get("type")
    if record_type not in _REQUIRED_FIELDS:
        return [f"unknown record type: {record_type!r}"]
    errors: List[str] = []
    for field, allowed in _REQUIRED_FIELDS[record_type].items():
        if field not in record:
            errors.append(f"{record_type}: missing field {field!r}")
        elif not isinstance(record[field], allowed) or isinstance(
            record[field], bool
        ):
            errors.append(
                f"{record_type}: field {field!r} has type "
                f"{type(record[field]).__name__}"
            )
    if record_type == "meta" and isinstance(record.get("schema"), int):
        if record["schema"] != TELEMETRY_SCHEMA_VERSION:
            errors.append(
                f"meta: schema {record['schema']} != "
                f"supported {TELEMETRY_SCHEMA_VERSION}"
            )
    if record_type == "metrics" and isinstance(record.get("histograms"), dict):
        for name, histogram in record["histograms"].items():
            if not isinstance(histogram, dict):
                errors.append(f"metrics: histogram {name!r} is not an object")
                continue
            for field, allowed in _HISTOGRAM_FIELDS.items():
                if field not in histogram:
                    errors.append(
                        f"metrics: histogram {name!r} missing field {field!r}"
                    )
                elif not isinstance(histogram[field], allowed) or isinstance(
                    histogram[field], bool
                ):
                    errors.append(
                        f"metrics: histogram {name!r} field {field!r} has "
                        f"type {type(histogram[field]).__name__}"
                    )
    return errors


def validate_file(path: Path) -> List[str]:
    """All errors in one sink file, prefixed ``<name>:<line>:``."""
    errors: List[str] = []
    saw_meta = False
    try:
        for line_number, record in iter_records(path):
            if line_number == 1:
                saw_meta = isinstance(record, dict) and record.get("type") == "meta"
            for error in validate_record(record):
                errors.append(f"{path.name}:{line_number}: {error}")
    except json.JSONDecodeError as exc:
        errors.append(f"{path.name}: invalid JSON ({exc})")
        return errors
    if not saw_meta:
        errors.append(f"{path.name}: first record is not a meta line")
    return errors


def validate_directory(directory: Path) -> Tuple[int, List[str]]:
    """Validate every ``events-*.jsonl`` under ``directory``.

    Returns ``(files_checked, errors)``; zero files is itself an error.
    """
    files = sorted(directory.glob("events-*.jsonl"))
    errors: List[str] = []
    for path in files:
        errors.extend(validate_file(path))
    if not files:
        errors.append(f"{directory}: no events-*.jsonl files found")
    return len(files), errors
