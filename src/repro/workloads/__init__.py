"""Workload models: the paper's 17 applications and synthetic trace generators."""

from repro.workloads.applications import (
    APPLICATIONS,
    COMPUTE_BOUND_APPS,
    MEMORY_BOUND_APPS,
    ApplicationProfile,
    WorkloadClass,
    get_application,
)
from repro.workloads.generator import SHARED_TRACE_CACHE, TraceCache, TraceGenerator
from repro.workloads.synthetic import (
    hot_cold_trace,
    strided_trace,
    uniform_random_trace,
    zipfian_trace,
)
from repro.workloads.trace import MemoryTrace

__all__ = [
    "APPLICATIONS",
    "ApplicationProfile",
    "COMPUTE_BOUND_APPS",
    "MEMORY_BOUND_APPS",
    "MemoryTrace",
    "SHARED_TRACE_CACHE",
    "TraceCache",
    "TraceGenerator",
    "WorkloadClass",
    "get_application",
    "hot_cold_trace",
    "strided_trace",
    "uniform_random_trace",
    "zipfian_trace",
]
