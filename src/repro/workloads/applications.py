"""The 17 evaluated applications (Table 2) as parametric workload models.

The paper evaluates 14 memory-bound and 3 compute-bound applications from
Rodinia, Parboil, Pannotia and ISPASS.  We cannot run the CUDA binaries, so
each application is modelled by an :class:`ApplicationProfile` that captures
the properties the evaluation depends on:

* how memory-intensive the instruction stream is (``memory_fraction``),
* how well the per-SM L1 filters it (``l1_hit_rate``),
* the footprint seen by the LLC (a shared component plus a per-SM component
  that grows with the number of compute SMs — the per-SM component is what
  makes kmeans/histo/mri-gri/spmv/lbm *lose* performance beyond a certain SM
  count in Figure 1),
* the locality structure of that footprint (hot-set fraction/probability and
  a streaming fraction with no temporal reuse — the streaming fraction is the
  traffic no LLC capacity can capture, which bounds how much a larger LLC can
  help in Figure 2),
* the write/atomic mix, and
* how compressible its cache blocks are (drives the BDI gain in
  Morpheus-Compression).

Parameter values are calibrated against the paper's figures:

* the **saturation point** of each application's SM-scaling curve (Figure 1)
  is set through ``compute_efficiency`` and ``memory_fraction`` (they place
  the crossover between the compute roof and the DRAM bandwidth roof), and
* the **larger-LLC sensitivity** (Figure 2) is set through the footprint and
  the streaming fraction (capacity-insensitive traffic).

The five applications whose performance *drops* beyond a certain SM count
(kmeans, histo, mri-gri, spmv, lbm) get small shared footprints plus per-SM
footprints sized so the aggregate working set overflows the 5 MiB LLC near
the SM count where the paper's IBL configuration peaks (Table 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

MIB = 1024 * 1024
KIB = 1024


class WorkloadClass(enum.Enum):
    """Memory-bound vs compute-bound classification (Table 2)."""

    MEMORY_BOUND = "memory-bound"
    COMPUTE_BOUND = "compute-bound"


@dataclass(frozen=True)
class ApplicationProfile:
    """Parametric model of one evaluated application.

    Attributes:
        name: Short name used throughout the paper (e.g. ``"kmeans"``).
        suite: Benchmark suite the application comes from.
        workload_class: Memory- or compute-bound.
        memory_fraction: Fraction of executed instructions that access memory.
        l1_hit_rate: Hit rate of the per-SM L1 at the baseline 128 KiB size.
        compute_efficiency: Fraction of peak per-SM issue rate achieved when
            the application is not memory-bound (captures divergence and
            dependency stalls).
        shared_footprint_mib: LLC-level footprint shared by all SMs (MiB).
        per_sm_footprint_kib: Additional LLC-level footprint contributed by
            each active compute SM (KiB); drives cache thrashing as the SM
            count grows.
        hot_fraction: Fraction of the footprint that is "hot".
        hot_probability: Probability that a reuse access targets the hot
            region (equal to ``hot_fraction`` for a uniform footprint).
        streaming_fraction: Fraction of accesses that stream through memory
            with no temporal reuse (insensitive to LLC capacity).
        write_fraction: Fraction of LLC accesses that are writes.
        atomic_fraction: Fraction of LLC accesses that are atomics.
        compressible_high: Fraction of blocks compressible 4x under BDI.
        compressible_low: Fraction of blocks compressible 2x under BDI.
        instructions: Nominal dynamic instruction count (used to convert IPC
            into execution time; capped at 2 billion as in the paper).
    """

    name: str
    suite: str
    workload_class: WorkloadClass
    memory_fraction: float
    l1_hit_rate: float
    compute_efficiency: float
    shared_footprint_mib: float
    per_sm_footprint_kib: float
    hot_fraction: float
    hot_probability: float
    streaming_fraction: float
    write_fraction: float = 0.2
    atomic_fraction: float = 0.0
    compressible_high: float = 0.3
    compressible_low: float = 0.3
    instructions: int = 2_000_000_000

    def __post_init__(self) -> None:
        for field_name in (
            "memory_fraction",
            "l1_hit_rate",
            "compute_efficiency",
            "hot_fraction",
            "hot_probability",
            "streaming_fraction",
            "write_fraction",
            "atomic_fraction",
            "compressible_high",
            "compressible_low",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.shared_footprint_mib <= 0:
            raise ValueError("shared_footprint_mib must be positive")
        if self.per_sm_footprint_kib < 0:
            raise ValueError("per_sm_footprint_kib must be non-negative")
        if self.compressible_high + self.compressible_low > 1.0 + 1e-9:
            raise ValueError("compressible fractions must not exceed 1 in total")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")

    # -- derived quantities ----------------------------------------------------

    @property
    def is_memory_bound(self) -> bool:
        """True for the 14 memory-bound applications."""
        return self.workload_class == WorkloadClass.MEMORY_BOUND

    @property
    def l1_apki(self) -> float:
        """L1 accesses per kilo-instruction."""
        return self.memory_fraction * 1000.0

    def llc_apki(self, l1_hit_rate: float | None = None) -> float:
        """LLC accesses per kilo-instruction given an (optionally adjusted) L1 hit rate."""
        hit = self.l1_hit_rate if l1_hit_rate is None else l1_hit_rate
        return self.l1_apki * (1.0 - hit)

    def footprint_bytes(self, num_compute_sms: int) -> int:
        """LLC-level footprint when ``num_compute_sms`` SMs run the application."""
        if num_compute_sms <= 0:
            raise ValueError("num_compute_sms must be positive")
        total = self.shared_footprint_mib * MIB + self.per_sm_footprint_kib * KIB * num_compute_sms
        return int(total)

    def l1_hit_rate_for_capacity(self, l1_bytes: int, baseline_bytes: int = 128 * KIB) -> float:
        """L1 hit rate when the L1 capacity changes (Unified-SM-Mem baseline).

        Uses a shallow power-law miss-rate model (miss ~ capacity^-0.12): GPU
        L1 misses are dominated by streaming and inter-SM shared data, so the
        extra per-SM capacity only recovers a modest fraction of them.
        """
        if l1_bytes <= 0 or baseline_bytes <= 0:
            raise ValueError("capacities must be positive")
        ratio = (baseline_bytes / l1_bytes) ** 0.12
        miss = (1.0 - self.l1_hit_rate) * ratio
        return max(0.0, min(1.0, 1.0 - miss))


def _app(**kwargs) -> ApplicationProfile:
    return ApplicationProfile(**kwargs)


#: The nine memory-bound applications whose performance saturates with more
#: SMs (Figure 1): large shared footprints, no per-SM growth.
_SATURATING: List[ApplicationProfile] = [
    _app(
        name="p-bfs", suite="Parboil", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.38, l1_hit_rate=0.12, compute_efficiency=0.27,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.65,
        write_fraction=0.18, atomic_fraction=0.02,
        compressible_high=0.35, compressible_low=0.30,
    ),
    _app(
        name="cfd", suite="Rodinia", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.26, l1_hit_rate=0.30, compute_efficiency=0.24,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.51,
        write_fraction=0.25, compressible_high=0.25, compressible_low=0.35,
    ),
    _app(
        name="dwt2d", suite="Rodinia", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.26, l1_hit_rate=0.35, compute_efficiency=0.23,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.47,
        write_fraction=0.30, compressible_high=0.40, compressible_low=0.30,
    ),
    _app(
        name="stencil", suite="Parboil", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.40, l1_hit_rate=0.28, compute_efficiency=0.30,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.70,
        write_fraction=0.30, compressible_high=0.45, compressible_low=0.30,
    ),
    _app(
        name="r-bfs", suite="Rodinia", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.18, l1_hit_rate=0.25, compute_efficiency=0.23,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.44,
        write_fraction=0.15, atomic_fraction=0.03,
        compressible_high=0.35, compressible_low=0.30,
    ),
    _app(
        name="bprob", suite="Rodinia", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.115, l1_hit_rate=0.40, compute_efficiency=0.30,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.44,
        write_fraction=0.30, compressible_high=0.40, compressible_low=0.35,
    ),
    _app(
        name="sgem", suite="Parboil", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.105, l1_hit_rate=0.45, compute_efficiency=0.35,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.51,
        write_fraction=0.12, compressible_high=0.30, compressible_low=0.40,
    ),
    _app(
        name="nw", suite="Rodinia", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.36, l1_hit_rate=0.20, compute_efficiency=0.24,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.60,
        write_fraction=0.32, compressible_high=0.30, compressible_low=0.30,
    ),
    _app(
        name="page-r", suite="Pannotia", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.24, l1_hit_rate=0.28, compute_efficiency=0.23,
        shared_footprint_mib=28.0, per_sm_footprint_kib=0.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.41,
        write_fraction=0.20, atomic_fraction=0.05,
        compressible_high=0.30, compressible_low=0.30,
    ),
]

#: The five memory-bound applications whose performance drops beyond a certain
#: SM count (Figure 1): small shared footprints plus per-SM footprints that
#: overflow the LLC as the SM count grows.
_THRASHING: List[ApplicationProfile] = [
    _app(
        name="kmeans", suite="Rodinia", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.42, l1_hit_rate=0.30, compute_efficiency=0.40,
        shared_footprint_mib=2.5, per_sm_footprint_kib=180.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.18,
        write_fraction=0.22, compressible_high=0.40, compressible_low=0.35,
    ),
    _app(
        name="histo", suite="Parboil", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.21, l1_hit_rate=0.32, compute_efficiency=0.30,
        shared_footprint_mib=2.0, per_sm_footprint_kib=95.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.30,
        write_fraction=0.35, atomic_fraction=0.08,
        compressible_high=0.35, compressible_low=0.30,
    ),
    _app(
        name="mri-gri", suite="Parboil", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.31, l1_hit_rate=0.34, compute_efficiency=0.35,
        shared_footprint_mib=2.0, per_sm_footprint_kib=145.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.28,
        write_fraction=0.25, atomic_fraction=0.04,
        compressible_high=0.35, compressible_low=0.35,
    ),
    _app(
        name="spmv", suite="Parboil", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.19, l1_hit_rate=0.26, compute_efficiency=0.40,
        shared_footprint_mib=2.0, per_sm_footprint_kib=115.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.35,
        write_fraction=0.12, compressible_high=0.25, compressible_low=0.35,
    ),
    _app(
        name="lbm", suite="Parboil", workload_class=WorkloadClass.MEMORY_BOUND,
        memory_fraction=0.24, l1_hit_rate=0.24, compute_efficiency=0.32,
        shared_footprint_mib=2.0, per_sm_footprint_kib=150.0,
        hot_fraction=0.30, hot_probability=0.30, streaming_fraction=0.40,
        write_fraction=0.40, compressible_high=0.30, compressible_low=0.35,
    ),
]

#: The 3 compute-bound applications: small footprints, very high L1 hit rates,
#: performance scales (nearly) linearly with the SM count.
_COMPUTE_BOUND: List[ApplicationProfile] = [
    _app(
        name="lib", suite="ISPASS", workload_class=WorkloadClass.COMPUTE_BOUND,
        memory_fraction=0.08, l1_hit_rate=0.80, compute_efficiency=0.40,
        shared_footprint_mib=2.0, per_sm_footprint_kib=16.0,
        hot_fraction=0.50, hot_probability=0.90, streaming_fraction=0.05,
        write_fraction=0.10, compressible_high=0.40, compressible_low=0.30,
    ),
    _app(
        name="hotsp", suite="Rodinia", workload_class=WorkloadClass.COMPUTE_BOUND,
        memory_fraction=0.10, l1_hit_rate=0.85, compute_efficiency=0.80,
        shared_footprint_mib=3.0, per_sm_footprint_kib=16.0,
        hot_fraction=0.50, hot_probability=0.90, streaming_fraction=0.05,
        write_fraction=0.20, compressible_high=0.45, compressible_low=0.30,
    ),
    _app(
        name="mri-q", suite="Parboil", workload_class=WorkloadClass.COMPUTE_BOUND,
        memory_fraction=0.06, l1_hit_rate=0.88, compute_efficiency=0.85,
        shared_footprint_mib=1.5, per_sm_footprint_kib=8.0,
        hot_fraction=0.60, hot_probability=0.92, streaming_fraction=0.04,
        write_fraction=0.08, compressible_high=0.40, compressible_low=0.35,
    ),
]

MEMORY_BOUND_APPS: List[str] = [profile.name for profile in (*_SATURATING, *_THRASHING)]
COMPUTE_BOUND_APPS: List[str] = [profile.name for profile in _COMPUTE_BOUND]

APPLICATIONS: Dict[str, ApplicationProfile] = {
    profile.name: profile for profile in (*_SATURATING, *_THRASHING, *_COMPUTE_BOUND)
}

#: Applications whose Figure 1 curve peaks and then declines, and the SM count
#: at which the paper's IBL configuration peaks (Table 3, row "IBL").
THRASHING_APPS: Dict[str, int] = {
    "kmeans": 24,
    "histo": 53,
    "mri-gri": 34,
    "spmv": 42,
    "lbm": 34,
}


def get_application(name: str) -> ApplicationProfile:
    """Look up an application profile by its paper name."""
    try:
        return APPLICATIONS[name]
    except KeyError:
        valid = ", ".join(sorted(APPLICATIONS))
        raise KeyError(f"unknown application {name!r}; expected one of: {valid}") from None
