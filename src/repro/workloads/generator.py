"""Trace generation from application profiles.

The :class:`TraceGenerator` turns an :class:`~repro.workloads.applications.ApplicationProfile`
into an LLC-level memory trace: the stream of requests that miss in the
per-SM L1 caches and reach the LLC partitions.  The generator composes three
components according to the profile:

* a **hot region** (``hot_fraction`` of the footprint) receiving
  ``hot_probability`` of the reuse accesses,
* a **cold region** (the rest of the footprint) receiving the remainder, and
* a **streaming component** (``streaming_fraction`` of all accesses) that
  walks fresh addresses with no temporal reuse — traffic that no LLC capacity
  can capture.

Footprints can be scaled down together with the cache capacities
(``scale``) so hit rates stay representative while traces remain short
enough for fast simulation.
"""

from __future__ import annotations

import hashlib
import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.workloads.applications import ApplicationProfile
from repro.workloads.trace import MemoryTrace, TraceEntry

BLOCK = 128


def _stable_seed(seed: int, name: str, num_compute_sms: int) -> int:
    """Derive a process-independent RNG seed.

    ``hash()`` on strings is randomized per process (PYTHONHASHSEED), which
    would make traces — and therefore every cached or parallel result —
    irreproducible across processes.  A blake2b digest is stable everywhere.
    """
    digest = hashlib.blake2b(
        f"{seed}|{name}|{num_compute_sms}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class TraceParameters:
    """Resolved parameters of one trace-generation run."""

    footprint_blocks: int
    hot_blocks: int
    num_accesses: int
    scale: float
    num_compute_sms: int


class TraceGenerator:
    """Generates LLC-level traces for an application profile.

    Args:
        profile: The application to model.
        num_compute_sms: SMs running the application (the footprint's per-SM
            component scales with it).
        scale: Downscaling factor applied to the footprint (must match the
            capacity scaling used by the simulator).
        seed: Seed for the deterministic random generator.
    """

    def __init__(
        self,
        profile: ApplicationProfile,
        num_compute_sms: int,
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        if num_compute_sms <= 0:
            raise ValueError("num_compute_sms must be positive")
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.profile = profile
        self.num_compute_sms = num_compute_sms
        self.scale = scale
        self.seed = seed
        # The streaming component never reuses addresses, so its cursor must
        # persist across generate() calls: otherwise a warm-up trace would
        # pre-load the "fresh" addresses of the measurement trace and large
        # caches would spuriously hit on streaming traffic.
        self._streaming_cursor: int | None = None

    def parameters(self, num_accesses: int) -> TraceParameters:
        """Resolve the footprint and region sizes for a trace of ``num_accesses``."""
        footprint_bytes = self.profile.footprint_bytes(self.num_compute_sms) * self.scale
        footprint_blocks = max(16, int(footprint_bytes / BLOCK))
        hot_blocks = max(1, int(footprint_blocks * self.profile.hot_fraction))
        return TraceParameters(
            footprint_blocks=footprint_blocks,
            hot_blocks=hot_blocks,
            num_accesses=num_accesses,
            scale=self.scale,
            num_compute_sms=self.num_compute_sms,
        )

    def generate(self, num_accesses: int) -> MemoryTrace:
        """Generate a trace of ``num_accesses`` LLC-level accesses."""
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        params = self.parameters(num_accesses)
        profile = self.profile
        rng = random.Random(_stable_seed(self.seed, profile.name, self.num_compute_sms))

        entries: List[TraceEntry] = []
        if self._streaming_cursor is None:
            # The streaming region sits past the reuse footprint.
            self._streaming_cursor = params.footprint_blocks
        for index in range(num_accesses):
            draw = rng.random()
            if draw < profile.streaming_fraction:
                block = self._streaming_cursor
                self._streaming_cursor += 1
            else:
                if rng.random() < profile.hot_probability:
                    block = rng.randrange(params.hot_blocks)
                else:
                    cold_blocks = max(1, params.footprint_blocks - params.hot_blocks)
                    block = params.hot_blocks + rng.randrange(cold_blocks)

            atomic = rng.random() < profile.atomic_fraction
            write = (not atomic) and rng.random() < profile.write_fraction
            sm_id = index % self.num_compute_sms
            entries.append(
                TraceEntry(
                    address=block * BLOCK,
                    is_write=write,
                    is_atomic=atomic,
                    sm_id=sm_id,
                )
            )
        return MemoryTrace(entries, name=f"{profile.name}-{self.num_compute_sms}sm")

    def iter_entries(self, num_accesses: int) -> Iterator[TraceEntry]:
        """Generate entries lazily (for very long traces)."""
        yield from self.generate(num_accesses)


#: Key of one (warm-up, measurement) trace pair in the :class:`TraceCache`.
_TraceKey = Tuple[ApplicationProfile, int, float, int, int, int]


class TraceCache:
    """LRU cache of generated (warm-up, measurement) trace pairs.

    Different evaluated systems replay the *same* trace whenever they share
    the (profile, compute-SM count, scale, seed, trace length) tuple — e.g.
    BL vs. Morpheus at the same operating point, or repeated best-SM-count
    searches across systems.  Generating traces is a visible fraction of a
    short simulation, so the cache returns the previously generated pair.

    The warm-up and measurement traces are generated back to back by one
    generator and cached together because the streaming cursor persists
    across ``generate()`` calls: the measurement trace's fresh streaming
    addresses depend on the warm-up trace having been generated first.

    Cached traces are treated as immutable; callers must not mutate them.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[_TraceKey, Tuple[MemoryTrace, MemoryTrace]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def traces(
        self,
        profile: ApplicationProfile,
        num_compute_sms: int,
        scale: float,
        seed: int,
        warmup_accesses: int,
        trace_accesses: int,
    ) -> Tuple[MemoryTrace, MemoryTrace]:
        """Return the (warm-up, measurement) pair, generating it on a miss."""
        key: _TraceKey = (
            profile, num_compute_sms, scale, seed, warmup_accesses, trace_accesses,
        )
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached

        self.misses += 1
        generator = TraceGenerator(
            profile, num_compute_sms=num_compute_sms, scale=scale, seed=seed
        )
        warmup = generator.generate(warmup_accesses)
        measurement = generator.generate(trace_accesses)
        self._entries[key] = (warmup, measurement)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return warmup, measurement

    def clear(self) -> None:
        """Drop all cached traces (counters preserved)."""
        self._entries.clear()


SHARED_TRACE_CACHE = TraceCache()
"""Process-wide trace cache shared by all simulators."""
