"""Synthetic trace builders.

These helpers produce simple, well-understood access patterns used by unit
tests, examples and the characterization microbenchmarks: uniform random
accesses, sequential/strided streams, hot/cold mixtures and Zipfian-skewed
accesses.  The application models in :mod:`repro.workloads.generator` compose
the same primitives.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.workloads.trace import MemoryTrace, TraceEntry

BLOCK = 128


def uniform_random_trace(
    num_accesses: int,
    footprint_bytes: int,
    write_fraction: float = 0.2,
    seed: int = 0,
    block_size: int = BLOCK,
    name: str = "uniform",
) -> MemoryTrace:
    """Uniformly random block accesses over a fixed footprint."""
    if num_accesses < 0:
        raise ValueError("num_accesses must be non-negative")
    if footprint_bytes <= 0:
        raise ValueError("footprint_bytes must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")
    rng = random.Random(seed)
    num_blocks = max(1, footprint_bytes // block_size)
    entries = [
        TraceEntry(
            address=rng.randrange(num_blocks) * block_size,
            is_write=rng.random() < write_fraction,
        )
        for _ in range(num_accesses)
    ]
    return MemoryTrace(entries, name=name)


def strided_trace(
    num_accesses: int,
    footprint_bytes: int,
    stride_blocks: int = 1,
    write_fraction: float = 0.0,
    seed: int = 0,
    block_size: int = BLOCK,
    name: str = "strided",
) -> MemoryTrace:
    """A streaming access pattern that walks the footprint with a fixed stride."""
    if stride_blocks <= 0:
        raise ValueError("stride_blocks must be positive")
    rng = random.Random(seed)
    num_blocks = max(1, footprint_bytes // block_size)
    entries = []
    position = 0
    for _ in range(num_accesses):
        entries.append(
            TraceEntry(
                address=(position % num_blocks) * block_size,
                is_write=rng.random() < write_fraction,
            )
        )
        position += stride_blocks
    return MemoryTrace(entries, name=name)


def hot_cold_trace(
    num_accesses: int,
    footprint_bytes: int,
    hot_fraction: float = 0.2,
    hot_access_probability: float = 0.8,
    write_fraction: float = 0.2,
    seed: int = 0,
    block_size: int = BLOCK,
    name: str = "hot-cold",
) -> MemoryTrace:
    """A classic hot/cold mixture: a small hot region absorbs most accesses."""
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0.0 <= hot_access_probability <= 1.0:
        raise ValueError("hot_access_probability must be in [0, 1]")
    rng = random.Random(seed)
    num_blocks = max(2, footprint_bytes // block_size)
    hot_blocks = max(1, int(num_blocks * hot_fraction))
    entries = []
    for _ in range(num_accesses):
        if rng.random() < hot_access_probability:
            block = rng.randrange(hot_blocks)
        else:
            block = hot_blocks + rng.randrange(max(1, num_blocks - hot_blocks))
        entries.append(
            TraceEntry(address=block * block_size, is_write=rng.random() < write_fraction)
        )
    return MemoryTrace(entries, name=name)


def zipfian_trace(
    num_accesses: int,
    footprint_bytes: int,
    alpha: float = 0.9,
    write_fraction: float = 0.2,
    seed: int = 0,
    block_size: int = BLOCK,
    name: str = "zipf",
) -> MemoryTrace:
    """Zipfian-skewed block popularity (irregular graph-like access patterns)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = random.Random(seed)
    num_blocks = max(1, footprint_bytes // block_size)
    # Build the Zipf CDF once; cap the rank count to bound setup cost.
    ranks = min(num_blocks, 4096)
    weights = [1.0 / (rank ** alpha) for rank in range(1, ranks + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    entries = []
    for _ in range(num_accesses):
        draw = rng.random()
        # Binary search over the CDF.
        lo, hi = 0, ranks - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < draw:
                lo = mid + 1
            else:
                hi = mid
        # Spread ranks over the whole footprint deterministically.
        block = (lo * 2654435761) % num_blocks
        entries.append(
            TraceEntry(address=block * block_size, is_write=rng.random() < write_fraction)
        )
    return MemoryTrace(entries, name=name)
