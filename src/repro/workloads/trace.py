"""Memory trace containers.

A :class:`MemoryTrace` is an ordered sequence of LLC-level accesses (the
requests that miss in the per-SM L1 caches and travel to the LLC partitions),
each tagged with the issuing SM and the access type.  Traces are the bridge
between the workload models and the memory-hierarchy simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.memory.request import AccessType, MemoryRequest


@dataclass(frozen=True)
class TraceEntry:
    """One LLC-level access in a trace."""

    address: int
    is_write: bool = False
    is_atomic: bool = False
    sm_id: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.sm_id < 0:
            raise ValueError("sm_id must be non-negative")

    @property
    def access_type(self) -> AccessType:
        """Access type of this entry."""
        if self.is_atomic:
            return AccessType.ATOMIC
        return AccessType.STORE if self.is_write else AccessType.LOAD

    def to_request(self, issue_cycle: int = 0, block_size: int = 128) -> MemoryRequest:
        """Convert the entry into a :class:`~repro.memory.request.MemoryRequest`."""
        return MemoryRequest(
            address=(self.address // block_size) * block_size,
            access_type=self.access_type,
            sm_id=self.sm_id,
            issue_cycle=issue_cycle,
            size_bytes=block_size,
        )


class MemoryTrace:
    """An ordered collection of :class:`TraceEntry` objects."""

    def __init__(self, entries: Sequence[TraceEntry] | None = None, name: str = "trace") -> None:
        self._entries: List[TraceEntry] = list(entries) if entries else []
        self.name = name

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    def append(self, entry: TraceEntry) -> None:
        """Append one access to the trace."""
        self._entries.append(entry)

    def extend(self, entries: Iterable[TraceEntry]) -> None:
        """Append many accesses to the trace."""
        self._entries.extend(entries)

    def addresses(self) -> List[int]:
        """Raw addresses in issue order."""
        return [entry.address for entry in self._entries]

    def unique_blocks(self, block_size: int = 128) -> int:
        """Number of distinct cache blocks touched by the trace (its footprint)."""
        return len({entry.address // block_size for entry in self._entries})

    def footprint_bytes(self, block_size: int = 128) -> int:
        """Footprint of the trace in bytes."""
        return self.unique_blocks(block_size) * block_size

    def write_fraction(self) -> float:
        """Fraction of accesses that are writes or atomics."""
        if not self._entries:
            return 0.0
        writes = sum(1 for entry in self._entries if entry.is_write or entry.is_atomic)
        return writes / len(self._entries)

    def atomic_fraction(self) -> float:
        """Fraction of accesses that are atomics."""
        if not self._entries:
            return 0.0
        return sum(1 for entry in self._entries if entry.is_atomic) / len(self._entries)

    def split_by_sm(self) -> dict:
        """Group entries by issuing SM."""
        groups: dict = {}
        for entry in self._entries:
            groups.setdefault(entry.sm_id, []).append(entry)
        return groups

    def to_requests(self, block_size: int = 128) -> List[MemoryRequest]:
        """Materialize the whole trace as memory requests."""
        return [entry.to_request(issue_cycle=i, block_size=block_size) for i, entry in enumerate(self._entries)]
